//! Networked quickstart: a federated run over real loopback sockets.
//!
//! Starts a `feddrl_net` server and four worker threads in one process,
//! wires them together with the `NetworkExecutor`, and drives five
//! rounds of *real* local training through the unchanged session loop —
//! every model broadcast and every update crosses a TCP socket. Prints
//! the accuracy trajectory plus the measured transport telemetry
//! (p50/p99 round-trip time).
//!
//! Run with: `cargo run --release --example net_quickstart`

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use feddrl_repro::prelude::*;

const N_CLIENTS: usize = 4;
const ROUNDS: usize = 5;

fn main() {
    // 1. Data and model, shared read-only with every worker thread.
    let (train, test) = SynthSpec {
        train_size: 1200,
        test_size: 300,
        ..SynthSpec::mnist_like()
    }
    .generate(11);
    let partition = PartitionMethod::ce(0.6)
        .partition(&train, N_CLIENTS, &mut Rng64::new(3))
        .expect("partition");
    let spec = ModelSpec::Mlp {
        in_dim: train.feature_dim(),
        hidden: vec![32],
        out_dim: train.num_classes(),
    };
    let cfg = FlConfig {
        rounds: ROUNDS,
        participants: N_CLIENTS,
        local: LocalTrainConfig {
            epochs: 1,
            batch_size: 16,
            lr: 0.05,
            ..Default::default()
        },
        eval_batch: 256,
        seed: 2022,
        log_every: 0,
        selection: Selection::Uniform,
        executor: ExecutorConfig::Ideal, // overridden by the net executor
        server_opt: ServerOptConfig::Plain,
    };
    let shared_train = Arc::new(train.clone());
    let shared_partition = Arc::new(partition.clone());
    let shared_spec = Arc::new(spec.clone());
    let local_cfg = cfg.local.clone();
    let seed = cfg.seed;

    // 2. The server endpoint on an ephemeral loopback port, with
    //    delta-compressed publishes on (steady-state broadcasts cross
    //    the wire as sparse residuals whenever that is cheaper).
    let server = NetServerBuilder::new()
        .delta_publish(true)
        .build()
        .expect("bind server");
    let addr = server.local_addr().to_string();
    println!("server listening on {addr}");

    // 3. Four workers, each a real `feddrl_net::client` loop doing real
    //    local training on its own shard: rebuild the model from the
    //    published weights, train, report. The RNG derivation matches the
    //    in-process session contract, so this is the same computation the
    //    simulator would run — just across sockets.
    let workers: Vec<_> = (0..N_CLIENTS)
        .map(|cid| {
            let (train, partition, spec) = (
                Arc::clone(&shared_train),
                Arc::clone(&shared_partition),
                Arc::clone(&shared_spec),
            );
            let local_cfg = local_cfg.clone();
            let worker_cfg = NetClientBuilder::new(addr.clone(), cid)
                .build()
                .expect("client config");
            thread::spawn(move || {
                run_client(&worker_cfg, move |order, global| {
                    let mut model = spec.build(0);
                    model.set_flat_params(global);
                    let mut rng = Rng64::new(seed ^ 0xC11E)
                        .derive(order.round)
                        .derive(cid as u64);
                    run_local_round(
                        model,
                        &train,
                        partition.client(cid),
                        cid,
                        &local_cfg,
                        &mut rng,
                    )
                })
            })
        })
        .collect();
    server
        .wait_for_clients(N_CLIENTS, Duration::from_secs(10))
        .expect("workers subscribed");
    println!("{N_CLIENTS} workers subscribed");

    // 4. The unchanged session loop over the networked executor.
    let executor = NetworkExecutor::barrier(server);
    let telemetry = executor.telemetry();
    let mut strategy = FedAvg;
    let history = SessionBuilder::new(&spec, &train, &test, &partition, &mut strategy)
        .config(&cfg)
        .dataset_name("mnist-like")
        .executor_instance(Box::new(executor))
        .build()
        .expect("valid federated config")
        .run()
        .expect("networked run");
    // Dropping the session shut the server down; workers exit on `Bye`.
    for w in workers {
        w.join().expect("worker thread").expect("clean worker exit");
    }

    // 5. Report: learning trajectory plus measured transport telemetry.
    println!("\nround  accuracy");
    for r in &history.records {
        println!("{:>5}  {:.4}", r.round, r.test_accuracy);
    }
    let t = telemetry.lock();
    println!(
        "\ntransport: {} dispatches, {} updates, p50 RTT = {:.3} ms, p99 RTT = {:.3} ms",
        t.dispatched,
        t.rtt_ms.len(),
        t.p50_rtt_ms(),
        t.p99_rtt_ms()
    );
    println!(
        "publishes: {} B on the wire vs {} B dense ({} delta / {} full frames, ratio {:.3})",
        t.publish.wire_bytes,
        t.publish.dense_bytes,
        t.publish.delta_frames,
        t.publish.full_frames,
        t.publish.wire_to_dense_ratio()
    );
    assert!(t.dispatched == ROUNDS * N_CLIENTS && t.failed_dispatches == 0);
}
