//! Extending the framework: writing a custom client-selection policy.
//!
//! Implements "RoundRobin" — a user-defined [`SelectionPolicy`] that walks
//! the federation deterministically so every client participates at the
//! same rate — and plugs it into a session next to the built-ins. Also
//! demonstrates the bandwidth-aware built-in avoiding deadline-cut
//! stragglers on a heterogeneous fleet.
//!
//! Run with: `cargo run --release --example custom_selection`

use feddrl_repro::prelude::*;

/// Perfect-fairness selection: clients take turns in id order, `K` per
/// round, wrapping around the federation. Ignores the provided RNG — a
/// policy may be fully deterministic.
struct RoundRobin {
    cursor: usize,
}

impl SelectionPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, _rng: &mut Rng64) -> Vec<usize> {
        let picked = (0..ctx.participants)
            .map(|i| (self.cursor + i) % ctx.n_clients)
            .collect();
        self.cursor = (self.cursor + ctx.participants) % ctx.n_clients;
        picked
    }
}

fn main() {
    let (train, test) = SynthSpec {
        train_size: 2000,
        test_size: 400,
        ..SynthSpec::mnist_like()
    }
    .generate(11);
    let partition = PartitionMethod::ce(0.6)
        .partition(&train, 12, &mut Rng64::new(3))
        .expect("partition");
    let model = ModelSpec::Mlp {
        in_dim: train.feature_dim(),
        hidden: vec![32],
        out_dim: train.num_classes(),
    };
    let fl_cfg = FlConfig {
        rounds: 12,
        participants: 4,
        local: LocalTrainConfig {
            epochs: 2,
            batch_size: 16,
            lr: 0.05,
            ..Default::default()
        },
        eval_batch: 256,
        seed: 7,
        log_every: 0,
        selection: Selection::Uniform,
        executor: ExecutorConfig::Ideal,
        server_opt: ServerOptConfig::Plain,
    };

    // --- 1. The custom policy, end to end.
    let mut strategy = FedAvg;
    let history = SessionBuilder::new(&model, &train, &test, &partition, &mut strategy)
        .config(&fl_cfg)
        .dataset_name("mnist-like")
        .selection_policy(Box::new(RoundRobin { cursor: 0 }))
        .build()
        .expect("valid federated config")
        .run()
        .expect("round-robin run");

    let mut turns = vec![0usize; partition.n_clients()];
    for r in &history.records {
        for &c in &r.selected {
            turns[c] += 1;
        }
    }
    println!(
        "round-robin over {} rounds (N = {}, K = {}): best acc {:.2}%",
        fl_cfg.rounds,
        partition.n_clients(),
        fl_cfg.participants,
        history.best().best_accuracy * 100.0
    );
    println!("  participation per client: {turns:?} (perfectly balanced)");
    assert!(
        turns.iter().max() == turns.iter().min(),
        "round-robin must balance participation exactly"
    );

    // --- 2. The bandwidth-aware built-in vs uniform on a skewed fleet
    //     with a deadline at the 60th completion percentile: the policy
    //     should stop sampling clients the deadline would cut anyway.
    let hetero = ExecutorConfig::Deadline(HeteroConfig {
        fleet: FleetConfig {
            compute_skew: 4.0,
            bandwidth_skew: 2.0,
            seed: 0xF1EE7,
            ..Default::default()
        },
        deadline_s: Some(14.0),
        late_policy: LatePolicy::Drop,
        ..Default::default()
    });
    for (label, selection) in [
        ("uniform", Selection::Uniform),
        (
            "bandwidth-aware",
            Selection::BandwidthAware { candidates: 9 },
        ),
    ] {
        let mut strategy = FedAvg;
        let h = SessionBuilder::new(&model, &train, &test, &partition, &mut strategy)
            .config(&fl_cfg)
            .dataset_name("mnist-like")
            .selection(selection)
            .executor(hetero.clone())
            .build()
            .expect("valid federated config")
            .run()
            .expect("hetero run");
        println!(
            "{label:>16}: best acc {:.2}%, stragglers cut {}, mean K' {:.2}",
            h.best().best_accuracy * 100.0,
            h.total_stragglers(),
            h.mean_participation()
        );
    }
}
