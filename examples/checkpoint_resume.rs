//! Checkpointing a trained FedDRL agent and resuming aggregation with it.
//!
//! Production FL deployments pre-train the DRL policy (e.g. with the
//! two-stage procedure), persist it, and ship it to the aggregation
//! server. This example trains an agent on one federation, saves it to
//! JSON, restores it, and verifies the restored policy makes identical
//! decisions — then keeps training it on a *new* federation (warm start).
//!
//! Run with: `cargo run --release --example checkpoint_resume`

use feddrl_repro::prelude::*;

fn main() {
    let (train, test) = SynthSpec {
        train_size: 1200,
        test_size: 300,
        ..SynthSpec::mnist_like()
    }
    .generate(4);
    let partition = PartitionMethod::ce(0.6)
        .partition(&train, 8, &mut Rng64::new(5))
        .expect("partition");
    let model = ModelSpec::Mlp {
        in_dim: train.feature_dim(),
        hidden: vec![32],
        out_dim: train.num_classes(),
    };
    let fl_cfg = FlConfig {
        rounds: 10,
        participants: 8,
        local: LocalTrainConfig {
            epochs: 2,
            batch_size: 16,
            lr: 0.05,
            ..Default::default()
        },
        eval_batch: 256,
        seed: 6,
        log_every: 0,
        selection: Selection::Uniform,
        executor: ExecutorConfig::Ideal,
        server_opt: ServerOptConfig::Plain,
    };

    // 1. Pre-train an agent with the two-stage procedure.
    let mut feddrl_cfg = FedDrlConfig::default();
    feddrl_cfg.ddpg.hidden = 64;
    feddrl_cfg.ddpg.warmup = 8;
    let ts = TwoStageConfig {
        workers: 2,
        online_rounds: 8,
        offline_updates: 20,
        seed: 7,
    };
    let (mut agent, report) =
        two_stage_train(&model, &train, &test, &partition, &fl_cfg, &feddrl_cfg, &ts);
    println!(
        "two-stage: {} worker experiences merged, {} offline updates",
        report.merged_experiences, report.offline_updates
    );

    // 2. Persist to disk (deploy checkpoint: buffer excluded).
    let dir = std::env::temp_dir().join("feddrl_example_ckpt");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("agent.json");
    AgentCheckpoint::capture(&agent, false)
        .save(&path)
        .expect("save checkpoint");
    println!("saved checkpoint to {}", path.display());

    // 3. Restore and verify bit-identical decisions.
    let mut restored = AgentCheckpoint::load(&path).expect("load").restore();
    let probe_state = vec![0.1f32; 3 * fl_cfg.participants];
    assert_eq!(
        agent.act(&probe_state, false),
        restored.act(&probe_state, false),
        "restored agent must act identically"
    );
    println!("restored agent acts identically on a probe state");

    // 4. Warm-start aggregation on the measured run, driven one round at
    //    a time via `Session::step` so the agent could be re-checkpointed
    //    between rounds (here: after round 5).
    let mut strategy = FedDrl::from_agent(restored, &feddrl_cfg);
    let mut session = SessionBuilder::new(&model, &train, &test, &partition, &mut strategy)
        .config(&fl_cfg)
        .dataset_name("mnist-like")
        .build()
        .expect("valid federated config");
    while let Some(record) = session.step().expect("round") {
        if record.round == 5 {
            println!("  (round 5 checkpoint hook would persist the agent here)");
        }
    }
    let history = session.into_history();
    println!(
        "warm-started FedDRL: best accuracy {:.2}% (round {})",
        history.best().best_accuracy * 100.0,
        history.best().best_round
    );
    std::fs::remove_dir_all(&dir).ok();
}
