//! The §2.2 Flickr-Mammal scenario: users' photos cluster by geographic
//! region (Oceania shares kangaroos/koalas, Africa shares
//! zebras/antelopes, …) and global label popularity is extremely
//! head-heavy (cats ≈ 23× skunks).
//!
//! Demonstrates the Clustered-Non-Equal (CN) partition — cluster skew plus
//! quantity skew — at two δ levels and shows how the skew level affects
//! each method (the paper's Figure 8 phenomenon).
//!
//! Run with: `cargo run --release --example flickr_mammal`

use feddrl_repro::prelude::*;

fn main() {
    // "Mammal photos": 20 species, power-law popularity tuned to the
    // paper's 23x head/tail observation.
    let spec = SynthSpec {
        name: "flickr-mammal-like".into(),
        num_classes: 20,
        feature_dim: 40,
        train_size: 6000,
        test_size: 1000,
        noise_std: 1.5,
        modes_per_class: 1,
        proto_scale: 1.0,
        popularity: LabelPopularity::PowerLaw { alpha: 1.1 },
    };
    let (train, test) = spec.generate(5);
    let counts = train.label_counts();
    println!(
        "label popularity head/tail: {:.1}x (paper: cats ~23x skunks)",
        *counts.iter().max().unwrap() as f64 / *counts.iter().min().unwrap() as f64
    );

    let model = ModelSpec::Mlp {
        in_dim: train.feature_dim(),
        hidden: vec![64],
        out_dim: train.num_classes(),
    };
    let fl_cfg = FlConfig {
        rounds: 35,
        participants: 10,
        local: LocalTrainConfig {
            epochs: 5,
            batch_size: 10,
            lr: 0.01,
            ..Default::default()
        },
        eval_batch: 256,
        seed: 17,
        log_every: 0,
        selection: Selection::Uniform,
        executor: ExecutorConfig::Ideal,
        server_opt: ServerOptConfig::Plain,
    };

    for delta in [0.2f64, 0.6] {
        // 4 "regions" of users; the main region holds δ·N users.
        let partition = PartitionMethod::ClusteredNonEqual {
            delta,
            num_groups: 4,
            labels_per_client: 3,
            alpha: 1.2,
        }
        .partition(&train, 40, &mut Rng64::new(23))
        .expect("partition");
        let stats = PartitionStats::compute(&partition, &train);
        println!(
            "\ndelta = {delta}: cluster groups = {}, quantity ratio = {:.1}",
            stats.label_sharing_components, stats.quantity_ratio
        );

        let mut fedavg_strategy = FedAvg;
        let fedavg = SessionBuilder::new(&model, &train, &test, &partition, &mut fedavg_strategy)
            .config(&fl_cfg)
            .dataset_name("flickr-mammal-like")
            .build()
            .expect("valid federated config")
            .run()
            .expect("FedAvg run");
        let feddrl = try_run_feddrl(
            &model,
            &train,
            &test,
            &partition,
            &fl_cfg,
            &FedDrlRunConfig::default(),
            "flickr-mammal-like",
        )
        .expect("FedDRL run");
        println!(
            "  FedAvg best {:.2}% | FedDRL best {:.2}%",
            fedavg.best().best_accuracy * 100.0,
            feddrl.history.best().best_accuracy * 100.0
        );
    }
}
