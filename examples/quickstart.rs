//! Quickstart: FedDRL vs FedAvg on a cluster-skewed federation.
//!
//! Builds a 10-client federation over a synthetic MNIST-like dataset with
//! the paper's Clustered-Equal (CE) skew at δ = 0.6, trains both methods
//! for a few dozen rounds and prints the accuracy trajectories.
//!
//! Run with: `cargo run --release --example quickstart`

use feddrl_repro::prelude::*;

fn main() {
    // 1. Data: synthetic MNIST stand-in, 10 classes.
    let (train, test) = SynthSpec::mnist_like().generate(42);
    println!(
        "dataset: {} train / {} test samples, {} classes",
        train.len(),
        test.len(),
        train.num_classes()
    );

    // 2. Non-IID partition: the paper's cluster-skew CE with a main group
    //    holding 60% of the clients.
    let partition = PartitionMethod::ce(0.6)
        .partition(&train, 10, &mut Rng64::new(7))
        .expect("partition");
    let stats = PartitionStats::compute(&partition, &train);
    println!(
        "partition CE(0.6): {} clients, cluster-skew = {}, sizes = {:?}",
        partition.n_clients(),
        stats.has_cluster_skew(),
        stats.sizes
    );

    // 3. Model + federated configuration (paper defaults scaled down).
    let model = ModelSpec::Mlp {
        in_dim: train.feature_dim(),
        hidden: vec![64],
        out_dim: train.num_classes(),
    };
    let fl_cfg = FlConfig {
        rounds: 40,
        participants: 10,
        local: LocalTrainConfig {
            epochs: 5,
            batch_size: 10,
            lr: 0.01,
            ..Default::default()
        },
        eval_batch: 256,
        seed: 2022,
        log_every: 10,
        selection: Selection::Uniform,
        executor: ExecutorConfig::Ideal,
        server_opt: ServerOptConfig::Plain,
    };

    // 4. Train FedAvg and FedDRL on identical data and seeds. Runs are
    //    assembled with the session builder: invalid configs surface as
    //    typed `FlError`s here instead of panics mid-run.
    let mut fedavg_strategy = FedAvg;
    let fedavg = SessionBuilder::new(&model, &train, &test, &partition, &mut fedavg_strategy)
        .config(&fl_cfg)
        .dataset_name("mnist-like")
        .build()
        .expect("valid federated config")
        .run()
        .expect("FedAvg run");
    let feddrl = try_run_feddrl(
        &model,
        &train,
        &test,
        &partition,
        &fl_cfg,
        &FedDrlRunConfig::default(),
        "mnist-like",
    )
    .expect("FedDRL run");

    // 5. Report.
    println!("\nround  FedAvg  FedDRL");
    for r in (0..fl_cfg.rounds).step_by(5) {
        println!(
            "{r:>5}  {:.4}  {:.4}",
            fedavg.records[r].test_accuracy, feddrl.history.records[r].test_accuracy
        );
    }
    let a = fedavg.best();
    let d = feddrl.history.best();
    println!(
        "\nbest accuracy: FedAvg {:.2}% (round {}) vs FedDRL {:.2}% (round {})",
        a.best_accuracy * 100.0,
        a.best_round,
        d.best_accuracy * 100.0,
        d.best_round
    );
    println!(
        "mean FedDRL reward over the last 10 rounds: {:.3}",
        feddrl.rewards.iter().rev().take(10).sum::<f32>() / 10.0
    );
}
