//! Extending the framework: writing a custom aggregation strategy.
//!
//! Implements "LossAware" — a simple hand-crafted heuristic that weights
//! clients by how much the global model struggles on their data
//! (α_k ∝ softmax(l_before)) — and races it against FedAvg and FedDRL on
//! a cluster-skewed federation. This is the extension point downstream
//! users plug their own research ideas into.
//!
//! Run with: `cargo run --release --example custom_strategy`

use feddrl_repro::prelude::*;

/// Heuristic: clients the global model serves poorly get more weight.
/// (This is the intuition FedDRL *learns*; hard-coding it shows both the
/// extension API and why a learned policy can beat a fixed rule.)
struct LossAware {
    /// Temperature of the softmax over losses.
    temperature: f32,
}

impl Strategy for LossAware {
    fn name(&self) -> &'static str {
        "LossAware"
    }

    fn impact_factors(&mut self, _round: usize, summaries: &[ClientSummary]) -> Vec<f32> {
        let scaled: Vec<f32> = summaries
            .iter()
            .map(|s| s.loss_before / self.temperature)
            .collect();
        softmax(&scaled)
    }
}

fn main() {
    let (train, test) = SynthSpec::fashion_like().generate(12);
    let partition = PartitionMethod::cn(0.6)
        .partition(&train, 10, &mut Rng64::new(3))
        .expect("partition");
    let model = ModelSpec::Mlp {
        in_dim: train.feature_dim(),
        hidden: vec![64],
        out_dim: train.num_classes(),
    };
    let fl_cfg = FlConfig {
        rounds: 40,
        participants: 10,
        local: LocalTrainConfig {
            epochs: 5,
            batch_size: 10,
            lr: 0.01,
            ..Default::default()
        },
        eval_batch: 256,
        seed: 31,
        log_every: 0,
        selection: Selection::Uniform,
        executor: ExecutorConfig::Ideal,
        server_opt: ServerOptConfig::Plain,
    };

    let run = |strategy: &mut dyn Strategy| {
        SessionBuilder::new(&model, &train, &test, &partition, strategy)
            .config(&fl_cfg)
            .dataset_name("fashion-like")
            .build()
            .expect("valid federated config")
            .run()
            .expect("federated run")
    };
    let fedavg = run(&mut FedAvg);
    let custom = run(&mut LossAware { temperature: 0.5 });
    let feddrl = try_run_feddrl(
        &model,
        &train,
        &test,
        &partition,
        &fl_cfg,
        &FedDrlRunConfig::default(),
        "fashion-like",
    )
    .expect("FedDRL run");

    println!(
        "fashion-like, CN(0.6), 10 clients, {} rounds:",
        fl_cfg.rounds
    );
    for h in [&fedavg, &custom, &feddrl.history] {
        println!(
            "  {:<10} best {:.2}% (round {})",
            h.method,
            h.best().best_accuracy * 100.0,
            h.best().best_round
        );
    }
    println!("\nimpact factors chosen by LossAware in the last round:");
    println!("  {:?}", custom.records.last().unwrap().impact_factors);
    println!("impact factors chosen by FedDRL in the last round:");
    println!(
        "  {:?}",
        feddrl.history.records.last().unwrap().impact_factors
    );
}
