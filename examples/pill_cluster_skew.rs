//! The paper's Figure 1 motivating scenario: pill-image classification
//! across 100 patients whose data clusters by disease.
//!
//! Diabetic patients photograph diabetes medications, hypertensive
//! patients photograph hypertension medications, and a third group covers
//! everything else. Common medications dominate (power-law popularity).
//! We compare all three federated methods plus the SingleSet ceiling on
//! this cluster-skewed federation.
//!
//! Run with: `cargo run --release --example pill_cluster_skew`

use feddrl_repro::prelude::*;

fn main() {
    // Pill dataset: 30 medications, strongly popularity-skewed.
    let (train, test) = SynthSpec::pill_like().generate(1);
    let counts = train.label_counts();
    println!(
        "pill popularity: most common {} samples, least common {} samples ({}x skew)",
        counts.iter().max().unwrap(),
        counts.iter().min().unwrap(),
        counts.iter().max().unwrap() / counts.iter().min().unwrap().max(&1)
    );

    // 100 patients in 3 disease groups; diabetes (main) holds half.
    let partition = PartitionMethod::ClusteredEqual {
        delta: 0.5,
        num_groups: 3,
        labels_per_client: 3,
    }
    .partition(&train, 100, &mut Rng64::new(9))
    .expect("partition");
    let groups = partition.groups().expect("cluster groups");
    for (g, name) in ["diabetes", "hypertension", "others"].iter().enumerate() {
        let n = groups.iter().filter(|&&x| x == g).count();
        println!("group {name}: {n} patients");
    }

    let model = ModelSpec::Mlp {
        in_dim: train.feature_dim(),
        hidden: vec![64],
        out_dim: train.num_classes(),
    };
    let fl_cfg = FlConfig {
        rounds: 40,
        participants: 10,
        local: LocalTrainConfig {
            epochs: 5,
            batch_size: 10,
            lr: 0.01,
            ..Default::default()
        },
        eval_batch: 256,
        seed: 3,
        log_every: 0,
        selection: Selection::Uniform,
        executor: ExecutorConfig::Ideal,
        server_opt: ServerOptConfig::Plain,
    };

    let single = run_singleset(
        &model,
        &train,
        &test,
        &SingleSetConfig {
            epochs: 30,
            ..Default::default()
        },
    );
    let run = |strategy: &mut dyn Strategy| {
        SessionBuilder::new(&model, &train, &test, &partition, strategy)
            .config(&fl_cfg)
            .dataset_name("pill-like")
            .build()
            .expect("valid federated config")
            .run()
            .expect("federated run")
    };
    let fedavg = run(&mut FedAvg);
    let fedprox = run(&mut FedProx::default());
    let feddrl = try_run_feddrl(
        &model,
        &train,
        &test,
        &partition,
        &fl_cfg,
        &FedDrlRunConfig::default(),
        "pill-like",
    )
    .expect("FedDRL run");

    println!("\nbest top-1 accuracy on the pill federation:");
    for h in [&single, &fedavg, &fedprox, &feddrl.history] {
        println!(
            "  {:<10} {:.2}% (round {})",
            h.method,
            h.best().best_accuracy * 100.0,
            h.best().best_round
        );
    }
}
