//! End-to-end integration tests: full federated runs across every crate.

use feddrl_repro::prelude::*;

fn small_env(
    partition_method: PartitionMethod,
    n_clients: usize,
    seed: u64,
) -> (ModelSpec, Dataset, Dataset, Partition) {
    let (train, test) = SynthSpec {
        train_size: 1500,
        test_size: 400,
        ..SynthSpec::mnist_like()
    }
    .generate(seed);
    let partition = partition_method
        .partition(&train, n_clients, &mut Rng64::new(seed ^ 0xF))
        .expect("partition");
    let model = ModelSpec::Mlp {
        in_dim: train.feature_dim(),
        hidden: vec![32],
        out_dim: train.num_classes(),
    };
    (model, train, test, partition)
}

fn fl_cfg(rounds: usize, participants: usize, seed: u64) -> FlConfig {
    FlConfig {
        rounds,
        participants,
        local: LocalTrainConfig {
            epochs: 2,
            batch_size: 16,
            lr: 0.05,
            ..Default::default()
        },
        eval_batch: 256,
        seed,
        log_every: 0,
        selection: Selection::Uniform,
        executor: ExecutorConfig::Ideal,
        server_opt: ServerOptConfig::Plain,
    }
}

#[test]
fn all_strategies_learn_on_iid() {
    let (model, train, test, partition) = small_env(PartitionMethod::Iid, 8, 1);
    let cfg = fl_cfg(10, 8, 11);
    let fedavg = run_federated(&model, &train, &test, &partition, &mut FedAvg, &cfg);
    let fedprox = run_federated(
        &model,
        &train,
        &test,
        &partition,
        &mut FedProx::default(),
        &cfg,
    );
    let mut drl_cfg = FedDrlRunConfig::default();
    drl_cfg.feddrl.ddpg.hidden = 64;
    let feddrl = run_feddrl(&model, &train, &test, &partition, &cfg, &drl_cfg);
    for h in [&fedavg, &fedprox, &feddrl.history] {
        assert!(
            h.best().best_accuracy > 0.75,
            "{} only reached {:.3} on IID data",
            h.method,
            h.best().best_accuracy
        );
    }
}

#[test]
fn feddrl_competitive_on_cluster_skew() {
    // On CE cluster skew with a dominant main group, FedDRL must stay
    // within noise of FedAvg or beat it (paper Table 3 shows gains;
    // at this scale we assert non-inferiority with a small margin).
    let (model, train, test, partition) = small_env(PartitionMethod::ce(0.6), 10, 2);
    let cfg = fl_cfg(25, 10, 22);
    let fedavg = run_federated(&model, &train, &test, &partition, &mut FedAvg, &cfg);
    let mut drl_cfg = FedDrlRunConfig::default();
    drl_cfg.feddrl.ddpg.hidden = 64;
    let feddrl = run_feddrl(&model, &train, &test, &partition, &cfg, &drl_cfg);
    let a = fedavg.best().best_accuracy;
    let d = feddrl.history.best().best_accuracy;
    assert!(
        d > a - 0.05,
        "FedDRL ({d:.3}) collapsed vs FedAvg ({a:.3}) on cluster skew"
    );
}

#[test]
fn full_runs_are_deterministic_across_invocations() {
    let (model, train, test, partition) = small_env(PartitionMethod::cn(0.6), 8, 3);
    let cfg = fl_cfg(6, 8, 33);
    let run = || {
        let mut drl_cfg = FedDrlRunConfig::default();
        drl_cfg.feddrl.ddpg.hidden = 32;
        run_feddrl(&model, &train, &test, &partition, &cfg, &drl_cfg)
    };
    let h1 = run();
    let h2 = run();
    assert_eq!(h1.history.accuracies(), h2.history.accuracies());
    assert_eq!(h1.rewards, h2.rewards);
}

#[test]
fn every_partition_method_supports_full_runs() {
    for (i, method) in [
        PartitionMethod::Iid,
        PartitionMethod::pa(),
        PartitionMethod::ce(0.6),
        PartitionMethod::cn(0.6),
        PartitionMethod::shards_equal(),
        PartitionMethod::shards_non_equal(),
    ]
    .into_iter()
    .enumerate()
    {
        let code = method.code().to_string();
        let (model, train, test, partition) = small_env(method, 10, 40 + i as u64);
        let cfg = fl_cfg(3, 5, 50 + i as u64);
        let h = run_federated(&model, &train, &test, &partition, &mut FedAvg, &cfg);
        assert_eq!(h.records.len(), 3, "partition {code} broke the round loop");
        assert_eq!(h.partition, code);
    }
}

#[test]
fn histories_roundtrip_through_json() {
    let (model, train, test, partition) = small_env(PartitionMethod::pa(), 6, 4);
    let cfg = fl_cfg(3, 6, 44);
    let h = run_federated(&model, &train, &test, &partition, &mut FedAvg, &cfg);
    let dir = std::env::temp_dir().join("feddrl_e2e_history");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("h.json");
    h.save_json(&path).unwrap();
    let back = RunHistory::load_json(&path).unwrap();
    assert_eq!(back.accuracies(), h.accuracies());
    assert_eq!(back.records[0].impact_factors, h.records[0].impact_factors);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn singleset_beats_federated_methods() {
    // The centralized ceiling must dominate (paper's framing of SingleSet).
    let (model, train, test, partition) = small_env(PartitionMethod::ce(0.6), 10, 5);
    let single = run_singleset(
        &model,
        &train,
        &test,
        &SingleSetConfig {
            epochs: 20,
            seed: 5,
            ..Default::default()
        },
    );
    let cfg = fl_cfg(10, 10, 55);
    let fedavg = run_federated(&model, &train, &test, &partition, &mut FedAvg, &cfg);
    assert!(
        single.best().best_accuracy >= fedavg.best().best_accuracy - 0.02,
        "SingleSet ({:.3}) should not lose to FedAvg ({:.3})",
        single.best().best_accuracy,
        fedavg.best().best_accuracy
    );
}

#[test]
fn partial_participation_with_cluster_skew() {
    let (model, train, test, partition) = small_env(PartitionMethod::ce(0.6), 12, 6);
    let cfg = fl_cfg(6, 4, 66); // K = 4 of N = 12
    let mut drl_cfg = FedDrlRunConfig::default();
    drl_cfg.feddrl.ddpg.hidden = 32;
    let run = run_feddrl(&model, &train, &test, &partition, &cfg, &drl_cfg);
    for r in &run.history.records {
        assert_eq!(r.selected.len(), 4);
        assert_eq!(r.impact_factors.len(), 4);
    }
}
