//! Property-based tests of the partition invariants across all methods,
//! client counts and seeds.

use feddrl_repro::prelude::*;
use proptest::prelude::*;
// The glob imports above both export a `Strategy` trait (ours vs
// proptest's); re-import proptest's unambiguously for method resolution.
use proptest::strategy::Strategy as _;

fn toy_dataset(seed: u64) -> Dataset {
    SynthSpec {
        train_size: 1000,
        test_size: 100,
        ..SynthSpec::mnist_like()
    }
    .generate(seed)
    .0
}

fn arb_method() -> impl proptest::strategy::Strategy<Value = PartitionMethod> {
    prop_oneof![
        Just(PartitionMethod::Iid),
        (1usize..=3, 0.5f64..2.0).prop_map(|(lpc, alpha)| PartitionMethod::Pareto {
            labels_per_client: lpc,
            alpha,
        }),
        (0.1f64..0.9, 2usize..=4).prop_map(|(delta, groups)| PartitionMethod::ClusteredEqual {
            delta,
            num_groups: groups,
            labels_per_client: 2,
        }),
        (0.1f64..0.9, 2usize..=4, 0.5f64..2.0).prop_map(|(delta, groups, alpha)| {
            PartitionMethod::ClusteredNonEqual {
                delta,
                num_groups: groups,
                labels_per_client: 2,
                alpha,
            }
        }),
        (1usize..=3).prop_map(|spc| PartitionMethod::ShardsEqual {
            shards_per_client: spc,
        }),
        Just(PartitionMethod::shards_non_equal()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any successful partition is a family of disjoint, in-bounds,
    /// non-empty index sets.
    #[test]
    fn partitions_are_disjoint_covers(
        method in arb_method(),
        n_clients in 2usize..20,
        seed in 0u64..1000,
    ) {
        let ds = toy_dataset(17);
        let mut rng = Rng64::new(seed);
        if let Ok(p) = method.partition(&ds, n_clients, &mut rng) {
            prop_assert_eq!(p.n_clients(), n_clients);
            let mut seen = vec![false; ds.len()];
            for c in 0..n_clients {
                prop_assert!(!p.client(c).is_empty());
                for &i in p.client(c) {
                    prop_assert!(i < ds.len());
                    prop_assert!(!seen[i], "index {} assigned twice", i);
                    seen[i] = true;
                }
            }
        }
    }

    /// Partitioning is a pure function of (method, dataset, seed).
    #[test]
    fn partitions_are_deterministic(
        method in arb_method(),
        n_clients in 2usize..12,
        seed in 0u64..1000,
    ) {
        let ds = toy_dataset(18);
        let a = method.partition(&ds, n_clients, &mut Rng64::new(seed));
        let b = method.partition(&ds, n_clients, &mut Rng64::new(seed));
        match (a, b) {
            (Ok(pa), Ok(pb)) => prop_assert_eq!(pa.clients(), pb.clients()),
            (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
            _ => prop_assert!(false, "determinism violated: one Ok, one Err"),
        }
    }

    /// Cluster methods always return a group per client, and group labels
    /// never exceed num_groups.
    #[test]
    fn cluster_methods_expose_groups(
        delta in 0.1f64..0.9,
        groups in 2usize..=4,
        seed in 0u64..500,
    ) {
        let ds = toy_dataset(19);
        let method = PartitionMethod::ClusteredEqual {
            delta,
            num_groups: groups,
            labels_per_client: 2,
        };
        if let Ok(p) = method.partition(&ds, 12, &mut Rng64::new(seed)) {
            let g = p.groups().expect("cluster partition must expose groups");
            prop_assert_eq!(g.len(), 12);
            prop_assert!(g.iter().all(|&x| x < groups));
        }
    }

    /// Skew statistics never contradict the structural method flags for
    /// cluster skew: a method that cannot produce cluster skew must never
    /// be detected as cluster-skewed.
    #[test]
    fn no_false_positive_cluster_skew(seed in 0u64..300) {
        let ds = toy_dataset(20);
        let mut rng = Rng64::new(seed);
        let p = PartitionMethod::Iid.partition(&ds, 10, &mut rng).unwrap();
        let stats = PartitionStats::compute(&p, &ds);
        prop_assert!(!stats.has_cluster_skew());
        prop_assert!(!stats.has_quantity_imbalance());
    }

    /// CE produces near-equal sizes for any delta (its defining property).
    #[test]
    fn ce_quantity_balance_holds(delta in 0.2f64..0.8, seed in 0u64..300) {
        let ds = toy_dataset(21);
        let mut rng = Rng64::new(seed);
        if let Ok(p) = PartitionMethod::ce(delta).partition(&ds, 10, &mut rng) {
            let stats = PartitionStats::compute(&p, &ds);
            prop_assert!(
                stats.quantity_ratio < 1.6,
                "CE quantity ratio {} too high (sizes {:?})",
                stats.quantity_ratio,
                stats.sizes
            );
        }
    }
}
