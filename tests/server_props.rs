//! Property-based hardening of the federated round loop and the
//! discrete-event heterogeneity engine.
//!
//! The refactor of `run_federated` onto the `RoundExecutor` abstraction
//! promises three invariants, checked here: (1) the ideal executor is
//! byte-identical to the pre-refactor loop (golden JSON fixture), (2) an
//! unbounded deadline with zero dropout reduces the deadline executor to
//! the ideal one, and (3) impact factors stay on the simplex under
//! arbitrary dropout/deadline patterns. The event-queue laws (nondecreasing
//! pop order, also under schedule/pop interleavings across multiple model
//! versions with FIFO tie-break; round time = max, not sum, of completions)
//! are checked on randomized inputs. The buffered asynchronous executor has
//! its own suite in `tests/async_props.rs`.

use feddrl_repro::prelude::*;
use proptest::prelude::*;
// Both glob imports export a `Strategy` trait (ours vs proptest's);
// re-import proptest's unambiguously for method resolution.
use proptest::strategy::Strategy as _;

mod common;
use common::golden_json;

/// The exact configuration the golden fixture was generated with (by the
/// pre-refactor loop at the commit introducing the executor abstraction).
fn golden_setup() -> (ModelSpec, Dataset, Dataset, Partition, FlConfig) {
    let (train, test) = SynthSpec {
        train_size: 600,
        test_size: 150,
        ..SynthSpec::mnist_like()
    }
    .generate(5);
    let partition = PartitionMethod::ce(0.6)
        .partition(&train, 6, &mut Rng64::new(9))
        .unwrap();
    let spec = ModelSpec::Mlp {
        in_dim: train.feature_dim(),
        hidden: vec![16],
        out_dim: train.num_classes(),
    };
    let cfg = FlConfig {
        rounds: 3,
        participants: 5,
        local: LocalTrainConfig {
            epochs: 1,
            batch_size: 16,
            lr: 0.05,
            ..Default::default()
        },
        eval_batch: 64,
        seed: 77,
        log_every: 0,
        selection: Selection::Uniform,
        executor: ExecutorConfig::Ideal,
        server_opt: ServerOptConfig::Plain,
    };
    (spec, train, test, partition, cfg)
}

/// The ideal executor reproduces the pre-refactor round loop exactly:
/// its serialized history (timings scrubbed) is byte-identical to the
/// fixture generated before the `RoundExecutor` abstraction existed.
///
/// Regenerate (only for an *intentional* format change, never to paper
/// over a behavioral one) with:
/// `REGEN_GOLDEN=1 cargo test --test server_props golden`.
#[test]
fn ideal_history_matches_pre_refactor_golden_fixture() {
    let (spec, train, test, partition, cfg) = golden_setup();
    let history = run_federated(&spec, &train, &test, &partition, &mut FedAvg, &cfg);
    let json = golden_json(history);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/ideal_history.json"
    );
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::write(path, &json).expect("regenerate golden fixture");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("read golden fixture");
    assert_eq!(
        json, golden,
        "ideal-executor history diverged from the pre-refactor loop"
    );
}

/// Tiny federated environment for the executor properties (kept small:
/// every proptest case below runs full federated trainings).
fn tiny_env(data_seed: u64) -> (ModelSpec, Dataset, Dataset, Partition) {
    let (train, test) = SynthSpec {
        train_size: 400,
        test_size: 100,
        ..SynthSpec::mnist_like()
    }
    .generate(data_seed);
    let partition = PartitionMethod::Iid
        .partition(&train, 5, &mut Rng64::new(3))
        .unwrap();
    let spec = ModelSpec::Mlp {
        in_dim: train.feature_dim(),
        hidden: vec![8],
        out_dim: train.num_classes(),
    };
    (spec, train, test, partition)
}

fn tiny_cfg(executor: ExecutorConfig) -> FlConfig {
    FlConfig {
        rounds: 2,
        participants: 4,
        local: LocalTrainConfig {
            epochs: 1,
            batch_size: 16,
            lr: 0.05,
            ..Default::default()
        },
        eval_batch: 64,
        seed: 11,
        log_every: 0,
        selection: Selection::Uniform,
        executor,
        server_opt: ServerOptConfig::Plain,
    }
}

/// `RoundRecord::impact_factors`/`client_losses_before` align with the
/// *aggregated* set (`HeteroRoundRecord::aggregated_ids`), not with
/// `selected`: under carry-over the aggregated set omits stragglers and
/// re-injects clients sampled in earlier rounds, so the two genuinely
/// diverge — which is exactly what the field docs must (and now do) say.
#[test]
fn factor_alignment_follows_aggregated_ids_not_selected() {
    let (spec, train, test, partition) = tiny_env(4);
    let fleet = FleetConfig {
        compute_skew: 5.0,
        seed: 17,
        ..Default::default()
    };
    // A deadline at the 40th percentile cuts the slow majority, so under
    // CarryOver their updates land one-plus rounds late.
    let deadline = Fleet::generate(5, &fleet).completion_percentile_s(4_000_000, 0.4);
    let mut cfg = tiny_cfg(ExecutorConfig::Deadline(HeteroConfig {
        fleet,
        deadline_s: Some(deadline),
        late_policy: LatePolicy::CarryOver,
        ..Default::default()
    }));
    cfg.rounds = 6;
    let history = run_federated(&spec, &train, &test, &partition, &mut FedAvg, &cfg);
    let mut saw_carry = false;
    let mut saw_divergence = false;
    for r in &history.records {
        let h = r.hetero.as_ref().expect("deadline run records telemetry");
        assert_eq!(
            r.impact_factors.len(),
            h.aggregated_ids.len(),
            "round {}: impact_factors must align with aggregated_ids",
            r.round
        );
        assert_eq!(
            r.client_losses_before.len(),
            h.aggregated_ids.len(),
            "round {}: client_losses_before must align with aggregated_ids",
            r.round
        );
        saw_carry |= h.carried_in > 0;
        saw_divergence |= h.aggregated_ids != r.selected;
    }
    assert!(
        saw_carry && saw_divergence,
        "the run must actually exercise carry-over (carried {saw_carry}, diverged {saw_divergence})"
    );
}

fn arb_fleet() -> impl proptest::strategy::Strategy<Value = FleetConfig> {
    (1.0f64..6.0, 1.0f64..4.0, 0.0f64..1.0, 0u64..1000).prop_map(
        |(compute_skew, bandwidth_skew, latency_s, seed)| FleetConfig {
            compute_skew,
            bandwidth_skew,
            latency_s,
            seed,
            ..Default::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For any seeded device fleet, an unbounded deadline with zero
    /// dropout reduces the deadline executor to the ideal one: identical
    /// accuracies, selections and impact factors, with clean telemetry.
    #[test]
    fn infinite_deadline_reduces_to_ideal(fleet in arb_fleet()) {
        let (spec, train, test, partition) = tiny_env(8);
        let ideal = run_federated(
            &spec, &train, &test, &partition, &mut FedAvg,
            &tiny_cfg(ExecutorConfig::Ideal),
        );
        let hetero_cfg = ExecutorConfig::Deadline(HeteroConfig {
            fleet,
            deadline_s: None,
            late_policy: LatePolicy::Drop,
            ..Default::default()
        });
        let hetero = run_federated(
            &spec, &train, &test, &partition, &mut FedAvg, &tiny_cfg(hetero_cfg),
        );
        prop_assert_eq!(ideal.accuracies(), hetero.accuracies());
        for (ri, rh) in ideal.records.iter().zip(hetero.records.iter()) {
            prop_assert_eq!(&ri.selected, &rh.selected);
            prop_assert_eq!(&ri.impact_factors, &rh.impact_factors);
            prop_assert_eq!(&ri.client_losses_before, &rh.client_losses_before);
            prop_assert!(ri.hetero.is_none());
            let h = rh.hetero.as_ref().expect("deadline run must record telemetry");
            prop_assert_eq!(h.stragglers, 0);
            prop_assert_eq!(h.dropouts, 0);
            prop_assert_eq!(h.aggregated(), rh.selected.len());
            prop_assert_eq!(&h.aggregated_ids, &rh.selected);
            prop_assert!(h.sim_time_s > 0.0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under arbitrary dropout probabilities and deadlines, every
    /// non-empty round's impact factors stay normalized (sum ≈ 1), the
    /// telemetry is self-consistent, and participation accounting closes:
    /// dropouts + stragglers + fresh arrivals = sampled clients.
    #[test]
    fn factors_stay_normalized_under_arbitrary_dropout(
        dropout in 0.0f64..0.9,
        deadline_scale in 0.5f64..2.0,
        fleet_seed in 0u64..1000,
    ) {
        let (spec, train, test, partition) = tiny_env(9);
        let fleet = FleetConfig {
            compute_skew: 4.0,
            dropout,
            seed: fleet_seed,
            ..Default::default()
        };
        // Deadline anywhere from "cuts half the fleet" to "generous".
        let probe = Fleet::generate(5, &fleet);
        let deadline = probe.completion_percentile_s(4_000_000, 0.5) * deadline_scale;
        let cfg = tiny_cfg(ExecutorConfig::Deadline(HeteroConfig {
            fleet,
            deadline_s: Some(deadline),
            late_policy: LatePolicy::Drop,
            ..Default::default()
        }));
        let history = run_federated(&spec, &train, &test, &partition, &mut FedAvg, &cfg);
        for r in &history.records {
            let h = r.hetero.as_ref().expect("deadline run must record telemetry");
            prop_assert_eq!(h.aggregated(), r.impact_factors.len());
            prop_assert_eq!(h.carried_in, 0); // LatePolicy::Drop
            prop_assert_eq!(
                h.dropouts + h.stragglers + h.aggregated(),
                r.selected.len(),
                "round {}: participation accounting does not close", r.round
            );
            if r.impact_factors.is_empty() {
                prop_assert_eq!(r.strategy_micros, 0);
            } else {
                let sum: f32 = r.impact_factors.iter().sum();
                prop_assert!(
                    (sum - 1.0).abs() < 1e-5,
                    "round {}: factors sum to {}", r.round, sum
                );
                prop_assert!(r.impact_factors.iter().all(|&a| a >= 0.0));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Events pop in nondecreasing virtual-time order for any schedule.
    #[test]
    fn event_queue_pops_in_nondecreasing_order(
        times in proptest::collection::vec(0.0f64..1e6, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, EventKind::UploadComplete { client_id: i, version: 0 });
        }
        prop_assert_eq!(q.len(), times.len());
        let mut last = f64::NEG_INFINITY;
        let mut popped = 0;
        while let Some(e) = q.pop() {
            prop_assert!(
                e.time_s >= last,
                "popped {} after {}", e.time_s, last
            );
            last = e.time_s;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Interleaved `schedule`/`pop` across multiple in-flight model
    /// versions (the buffered executor's access pattern) preserves the
    /// total order: pop times never decrease even as new events are
    /// scheduled between pops, equal-time events pop FIFO regardless of
    /// the version they carry, and every popped event returns exactly the
    /// `(time, version)` it was scheduled with — so staleness derived at
    /// pop time (`current version − trained version`) is never negative.
    #[test]
    fn interleaved_multi_version_pops_preserve_total_order_and_fifo(
        steps in proptest::collection::vec(
            (proptest::collection::vec(0.0f64..50.0, 0..6), 0usize..8),
            1..24,
        ),
    ) {
        let mut q = EventQueue::new();
        let mut now = 0.0f64;
        let mut inserted = 0usize;
        // Per insertion id: the (time, version) it was scheduled with.
        let mut meta: Vec<(f64, usize)> = Vec::new();
        // Pop log: (time, insertion id).
        let mut popped: Vec<(f64, usize)> = Vec::new();
        let check_pop = |e: Event,
                         now: &mut f64,
                         current_version: Option<usize>,
                         meta: &[(f64, usize)],
                         popped: &mut Vec<(f64, usize)>| {
            assert!(e.time_s >= *now, "pop {} rewound past {}", e.time_s, *now);
            *now = e.time_s;
            let EventKind::UploadComplete { client_id, version } = e.kind else {
                panic!("unexpected event kind");
            };
            assert_eq!(
                meta[client_id],
                (e.time_s, version),
                "event lost its scheduled time/version"
            );
            if let Some(v) = current_version {
                assert!(v >= version, "negative staleness: popped v{version} at v{v}");
            }
            popped.push((e.time_s, client_id));
        };
        for (version, (deltas, pops)) in steps.iter().enumerate() {
            // Model version `version`: dispatch a batch of uploads that
            // complete `delta` seconds from the current virtual time...
            for &delta in deltas {
                let t = now + delta;
                q.schedule(t, EventKind::UploadComplete { client_id: inserted, version });
                meta.push((t, version));
                inserted += 1;
            }
            // ...then consume a few arrivals, advancing the clock.
            for _ in 0..*pops {
                let Some(e) = q.pop() else { break };
                check_pop(e, &mut now, Some(version), &meta, &mut popped);
            }
        }
        while let Some(e) = q.pop() {
            check_pop(e, &mut now, None, &meta, &mut popped);
        }
        prop_assert_eq!(popped.len(), inserted, "events were lost");
        // Total order with FIFO tie-break: nondecreasing times, and equal
        // times pop in insertion order.
        for w in popped.windows(2) {
            prop_assert!(
                w[1].0 > w[0].0 || (w[1].0 == w[0].0 && w[1].1 > w[0].1),
                "order violated: {:?} then {:?}", w[0], w[1]
            );
        }
    }

    /// The simulated round time of an unbounded round equals the *max*
    /// (not the sum) of the surviving clients' completion times.
    #[test]
    fn round_time_is_max_not_sum_of_completions(
        fleet in arb_fleet(),
        k in 2usize..12,
    ) {
        let cfg = HeteroConfig {
            fleet,
            deadline_s: None,
            late_policy: LatePolicy::Drop,
            ..Default::default()
        };
        let mut ex = DeadlineExecutor::new(cfg, k, 50_000, k, 17);
        let selected: Vec<usize> = (0..k).collect();
        let train = |dispatches: &[Dispatch]| -> Vec<ClientUpdate> {
            dispatches
                .iter()
                .map(|&Dispatch { client_id, .. }| ClientUpdate {
                    client_id,
                    weights: vec![0.0; 4],
                    n_samples: 10,
                    loss_before: 1.0,
                    loss_after: 0.5,
                    staleness: 0,
                    mask: None,
                })
                .collect()
        };
        let completions: Vec<f64> = (0..k)
            .map(|c| ex.fleet().profile(c).completion_time_s(ex.upload_bytes()))
            .collect();
        let out = ex.execute(0, &selected, &train);
        let h = out.hetero.expect("deadline executor always reports");
        let max = completions.iter().copied().fold(0.0f64, f64::max);
        let sum: f64 = completions.iter().sum();
        prop_assert!((h.sim_time_s - max).abs() < 1e-9,
            "round time {} != max completion {}", h.sim_time_s, max);
        prop_assert!(k == 1 || h.sim_time_s < sum,
            "round time {} looks like a sum ({})", h.sim_time_s, sum);
    }
}
