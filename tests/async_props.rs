//! Property suite for the buffered asynchronous executor
//! (`feddrl_fl::executor::BufferedExecutor`) and its staleness machinery,
//! in the mold of `tests/server_props.rs`.
//!
//! Contracts proven here:
//!
//! 1. **Golden reduction** — a full buffer (`m = K`) on a homogeneous
//!    zero-dropout fleet reduces the buffered executor to the paper's
//!    synchronous loop *byte-identically*: with the per-round telemetry
//!    stripped, its serialized history equals the committed
//!    `tests/golden/ideal_history.json` fixture.
//! 2. **Simplex invariance** — under arbitrary fleets, buffer sizes and
//!    discounts, every non-empty round's impact factors stay normalized,
//!    and with discount `None` a zero-staleness round's factors are
//!    bit-identical to the undiscounted path.
//! 3. **Staleness monotonicity** — a faster device never accumulates more
//!    average staleness than a slower one.
//! 4. **Counting law** — aggregation count × buffer size = accepted-update
//!    count, under arbitrary dropout: the buffer aggregates exactly `m`
//!    updates or nothing.
//! 5. **Wall-clock-to-accuracy** — on a skewed fleet the buffered
//!    executor reaches a shared accuracy target in less simulated
//!    wall-clock than the deadline round barrier (the `exp_async` headline,
//!    pinned as a test).
//! 6. **Carry-over aging** — the same `StalenessDiscount` machinery ages
//!    `LatePolicy::CarryOver` reinjections: a carried update's normalized
//!    impact factor shrinks relative to the undiscounted run.

use feddrl_repro::prelude::*;
use proptest::prelude::*;
// Both glob imports export a `Strategy` trait (ours vs proptest's);
// re-import proptest's unambiguously for method resolution.
use proptest::strategy::Strategy as _;

mod common;
use common::golden_json;

/// The golden fixture's environment (must match `server_props`).
fn golden_setup() -> (ModelSpec, Dataset, Dataset, Partition, FlConfig) {
    let (train, test) = SynthSpec {
        train_size: 600,
        test_size: 150,
        ..SynthSpec::mnist_like()
    }
    .generate(5);
    let partition = PartitionMethod::ce(0.6)
        .partition(&train, 6, &mut Rng64::new(9))
        .unwrap();
    let spec = ModelSpec::Mlp {
        in_dim: train.feature_dim(),
        hidden: vec![16],
        out_dim: train.num_classes(),
    };
    let cfg = FlConfig {
        rounds: 3,
        participants: 5,
        local: LocalTrainConfig {
            epochs: 1,
            batch_size: 16,
            lr: 0.05,
            ..Default::default()
        },
        eval_batch: 64,
        seed: 77,
        log_every: 0,
        selection: Selection::Uniform,
        executor: ExecutorConfig::Ideal,
        server_opt: ServerOptConfig::Plain,
    };
    (spec, train, test, partition, cfg)
}

fn run(
    spec: &ModelSpec,
    train: &Dataset,
    test: &Dataset,
    partition: &Partition,
    cfg: &FlConfig,
) -> RunHistory {
    let mut strategy = FedAvg;
    SessionBuilder::new(spec, train, test, partition, &mut strategy)
        .config(cfg)
        .build()
        .expect("valid config")
        .run()
        .expect("federated run")
}

fn stub_update(client_id: usize) -> ClientUpdate {
    ClientUpdate {
        client_id,
        weights: vec![0.0; 4],
        n_samples: 10,
        loss_before: 1.0,
        loss_after: 0.5,
        staleness: 0,
        mask: None,
    }
}

fn stub_train(dispatches: &[Dispatch]) -> Vec<ClientUpdate> {
    dispatches
        .iter()
        .map(|d| stub_update(d.client_id))
        .collect()
}

/// Contract 1: with `m = K` on a homogeneous zero-dropout fleet, every
/// sampled client's upload lands in the same buffer fill, in sampling
/// order and fresh — so the training trajectory is the synchronous one.
/// Stripping the (purely additive) telemetry must reproduce the committed
/// pre-executor golden fixture byte for byte.
#[test]
fn full_buffer_on_homogeneous_fleet_reduces_to_ideal_golden_fixture() {
    let (spec, train, test, partition, mut cfg) = golden_setup();
    cfg.executor = ExecutorConfig::Buffered(BufferedConfig {
        fleet: FleetConfig::default(), // homogeneous, zero dropout
        buffer_size: cfg.participants, // m = K
        staleness: StalenessDiscount::None,
        server_mix: None,
        ..Default::default()
    });
    let history = run(&spec, &train, &test, &partition, &cfg);

    // The telemetry itself must describe a synchronous run...
    for r in &history.records {
        let h = r
            .hetero
            .as_ref()
            .expect("buffered run must record telemetry");
        assert_eq!(h.aggregated_ids, r.selected, "sampling order not preserved");
        assert_eq!(
            h.staleness,
            vec![0; r.selected.len()],
            "nothing may be stale"
        );
        assert_eq!((h.busy, h.buffered, h.dropouts, h.stragglers), (0, 0, 0, 0));
        assert!(h.sim_time_s > 0.0, "virtual time must pass");
    }

    // ...and with it stripped, the history is byte-identical to the
    // golden fixture (timings scrubbed like every golden comparison).
    let mut scrubbed = history;
    for r in &mut scrubbed.records {
        r.hetero = None;
    }
    let json = golden_json(scrubbed);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/ideal_history.json"
    );
    let golden = std::fs::read_to_string(path).expect("read golden fixture");
    assert_eq!(
        json, golden,
        "buffered executor with m = K diverged from the synchronous loop"
    );
}

/// Contract 3: run the executor directly over a fleet with well-separated
/// device speeds, all clients redispatched as soon as they idle. Mean
/// observed staleness must be non-increasing in device speed — a faster
/// device's uploads never age more than a slower one's.
#[test]
fn staleness_is_monotonically_non_increasing_in_device_speed() {
    let cfg = BufferedConfig {
        fleet: FleetConfig {
            compute_skew: 8.0,
            seed: 0x57A1E,
            ..Default::default()
        },
        buffer_size: 2,
        ..Default::default()
    };
    const N: usize = 6;
    let mut ex = BufferedExecutor::new(cfg, N, 1_000, N, 7);
    let completion: Vec<f64> = (0..N)
        .map(|c| ex.fleet().profile(c).completion_time_s(ex.upload_bytes()))
        .collect();

    let mut total = [0usize; N];
    let mut count = [0usize; N];
    let selected: Vec<usize> = (0..N).collect();
    for round in 0..200 {
        let out = ex.execute(round, &selected, &stub_train);
        for u in &out.updates {
            total[u.client_id] += u.staleness;
            count[u.client_id] += 1;
        }
    }
    let mean: Vec<f64> = (0..N)
        .map(|c| total[c] as f64 / count[c].max(1) as f64)
        .collect();
    assert!(
        count.iter().all(|&c| c > 0),
        "every device must eventually be aggregated: {count:?}"
    );
    let mut order: Vec<usize> = (0..N).collect();
    order.sort_by(|&a, &b| completion[a].total_cmp(&completion[b]));
    for pair in order.windows(2) {
        let (fast, slow) = (pair[0], pair[1]);
        assert!(
            mean[fast] <= mean[slow] + 1e-9,
            "faster device {fast} ({:.2}s) has mean staleness {:.3} > slower \
             device {slow} ({:.2}s) with {:.3}",
            completion[fast],
            mean[fast],
            completion[slow],
            mean[slow]
        );
    }
    assert!(
        mean[order[N - 1]] > mean[order[0]],
        "an 8x-skewed fleet must actually spread staleness: {mean:?}"
    );
}

/// Contract 5 (the `exp_async` headline, pinned): on a skewed fleet, the
/// buffered executor reaches a shared accuracy target in strictly less
/// simulated wall-clock than the deadline round barrier.
#[test]
fn buffered_reaches_target_accuracy_in_less_sim_time_than_deadline() {
    let (train, test) = SynthSpec {
        train_size: 500,
        test_size: 150,
        ..SynthSpec::mnist_like()
    }
    .generate(5);
    let partition = PartitionMethod::Iid
        .partition(&train, 10, &mut Rng64::new(3))
        .unwrap();
    let spec = ModelSpec::Mlp {
        in_dim: train.feature_dim(),
        hidden: vec![12],
        out_dim: train.num_classes(),
    };
    let fleet = FleetConfig {
        compute_skew: 8.0,
        seed: 0xFA57,
        ..Default::default()
    };
    let base_cfg = FlConfig {
        rounds: 10,
        participants: 8,
        local: LocalTrainConfig {
            epochs: 1,
            batch_size: 16,
            lr: 0.05,
            ..Default::default()
        },
        eval_batch: 64,
        seed: 11,
        log_every: 0,
        selection: Selection::Uniform,
        executor: ExecutorConfig::Ideal,
        server_opt: ServerOptConfig::Plain,
    };

    // Baseline: the barrier waits out its 70th-percentile deadline every
    // round that cuts a straggler.
    let probe = DeadlineExecutor::new(
        HeteroConfig {
            fleet: fleet.clone(),
            ..Default::default()
        },
        10,
        spec.build(1).param_count(),
        base_cfg.participants,
        base_cfg.seed,
    );
    let deadline = probe
        .fleet()
        .completion_percentile_s(probe.upload_bytes(), 0.7);
    let mut deadline_cfg = base_cfg.clone();
    deadline_cfg.executor = ExecutorConfig::Deadline(HeteroConfig {
        fleet: fleet.clone(),
        deadline_s: Some(deadline),
        late_policy: LatePolicy::Drop,
        ..Default::default()
    });
    let barrier = run(&spec, &train, &test, &partition, &deadline_cfg);

    // Shared target: what the barrier demonstrably reaches.
    let target = barrier.best().best_accuracy * 0.9;
    let barrier_time = barrier
        .sim_time_to_accuracy_s(target)
        .expect("the barrier run must reach 90% of its own best");

    // Buffered: aggregate the 3 fastest of every 8 dispatches, FedBuff
    // server mixing, early-stopped at the shared target.
    let mut buffered_cfg = base_cfg.clone();
    buffered_cfg.rounds = 80;
    buffered_cfg.executor = ExecutorConfig::Buffered(BufferedConfig {
        fleet,
        buffer_size: 3,
        staleness: StalenessDiscount::None,
        server_mix: Some(0.375), // m / K
        ..Default::default()
    });
    let mut strategy = FedAvg;
    let buffered = SessionBuilder::new(&spec, &train, &test, &partition, &mut strategy)
        .config(&buffered_cfg)
        .observer(Box::new(EarlyStop {
            target_accuracy: target,
        }))
        .build()
        .expect("valid config")
        .run()
        .expect("buffered run");
    let buffered_time = buffered
        .sim_time_to_accuracy_s(target)
        .expect("buffered run never reached the shared target");

    assert!(
        buffered_time < barrier_time,
        "buffered executor was not faster to {target:.3} accuracy: \
         {buffered_time:.1}s vs barrier {barrier_time:.1}s"
    );
    assert!(
        buffered.mean_staleness() > 0.0,
        "a skewed fleet with a small buffer must see staleness"
    );
}

/// Contract 6: the carry-over satellite, session-level. Two identical
/// deadline/CarryOver runs — one undiscounted, one with polynomial aging —
/// stay structurally aligned (same seeds drive selection, dropouts and
/// straggler structure), so in every round that carries a stale update in,
/// the discounted run must give that update strictly less normalized
/// weight, redistributing it to the fresh arrivals.
#[test]
fn carry_over_aging_shrinks_stale_factors_session_level() {
    let (spec, train, test, partition, mut cfg) = golden_setup();
    cfg.rounds = 8;
    cfg.participants = 4;
    let mk_exec = |staleness| {
        ExecutorConfig::Deadline(HeteroConfig {
            fleet: FleetConfig {
                compute_skew: 5.0,
                seed: 0xCA22,
                ..Default::default()
            },
            // Placed below the fleet median so stragglers are common.
            deadline_s: Some(10.0),
            late_policy: LatePolicy::CarryOver,
            staleness,
            ..Default::default()
        })
    };
    cfg.executor = mk_exec(StalenessDiscount::None);
    let plain = run(&spec, &train, &test, &partition, &cfg);
    cfg.executor = mk_exec(StalenessDiscount::Polynomial { alpha: 1.0 });
    let aged = run(&spec, &train, &test, &partition, &cfg);

    let mut carried_rounds = 0usize;
    for (rp, ra) in plain.records.iter().zip(aged.records.iter()) {
        let (hp, ha) = (rp.hetero.as_ref().unwrap(), ra.hetero.as_ref().unwrap());
        // Same structure: the discount only redistributes weight.
        assert_eq!(hp.aggregated_ids, ha.aggregated_ids);
        assert_eq!(hp.staleness, ha.staleness);
        let stale: Vec<usize> = (0..ha.staleness.len())
            .filter(|&i| ha.staleness[i] > 0)
            .collect();
        let fresh: Vec<usize> = (0..ha.staleness.len())
            .filter(|&i| ha.staleness[i] == 0)
            .collect();
        if stale.is_empty() || fresh.is_empty() {
            continue;
        }
        carried_rounds += 1;
        // The invariant the discount guarantees: every stale-to-fresh
        // weight *ratio* strictly shrinks (with several stale updates of
        // different ages, a mildly stale one may still gain in absolute
        // normalized terms as harder-discounted peers release weight).
        for &i in &stale {
            for &j in &fresh {
                assert!(
                    ra.impact_factors[i] * rp.impact_factors[j]
                        < rp.impact_factors[i] * ra.impact_factors[j],
                    "round {}: stale update {i} (s = {}) did not lose weight \
                     relative to fresh update {j}",
                    ra.round,
                    ha.staleness[i]
                );
            }
        }
    }
    assert!(
        carried_rounds > 0,
        "scenario produced no mixed stale/fresh aggregation to compare"
    );
}

fn arb_buffered() -> impl proptest::strategy::Strategy<Value = BufferedConfig> {
    (1.0f64..8.0, 1usize..=4, 0u64..1000, 0usize..3).prop_map(
        |(compute_skew, buffer_size, seed, discount)| BufferedConfig {
            fleet: FleetConfig {
                compute_skew,
                seed,
                ..Default::default()
            },
            buffer_size,
            staleness: match discount {
                0 => StalenessDiscount::None,
                1 => StalenessDiscount::Polynomial { alpha: 1.0 },
                _ => StalenessDiscount::Hinge { cutoff: 1 },
            },
            server_mix: None,
            ..Default::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Contract 2, session-level: for arbitrary buffered configurations,
    /// every non-empty round aggregates exactly `buffer_size` updates
    /// with simplex-normalized factors aligned to the recorded staleness,
    /// and with discount `None` every zero-staleness round is untouched.
    #[test]
    fn buffered_factors_stay_on_the_simplex(cfg in arb_buffered()) {
        let (train, test) = SynthSpec {
            train_size: 400,
            test_size: 100,
            ..SynthSpec::mnist_like()
        }
        .generate(8);
        let partition = PartitionMethod::Iid
            .partition(&train, 5, &mut Rng64::new(3))
            .unwrap();
        let spec = ModelSpec::Mlp {
            in_dim: train.feature_dim(),
            hidden: vec![8],
            out_dim: train.num_classes(),
        };
        let m = cfg.buffer_size;
        let fl_cfg = FlConfig {
            rounds: 4,
            participants: 4,
            local: LocalTrainConfig {
                epochs: 1,
                batch_size: 16,
                lr: 0.05,
                ..Default::default()
            },
            eval_batch: 64,
            seed: 11,
            log_every: 0,
            selection: Selection::Uniform,
            executor: ExecutorConfig::Buffered(cfg),
            server_opt: ServerOptConfig::Plain,
        };
        let history = run(&spec, &train, &test, &partition, &fl_cfg);
        for r in &history.records {
            let h = r.hetero.as_ref().expect("buffered run must record telemetry");
            prop_assert!(
                r.impact_factors.is_empty() || r.impact_factors.len() == m,
                "round {}: {} factors for buffer {m}", r.round, r.impact_factors.len()
            );
            prop_assert_eq!(h.staleness.len(), r.impact_factors.len());
            prop_assert_eq!(h.aggregated(), r.impact_factors.len());
            if r.impact_factors.is_empty() {
                prop_assert_eq!(r.strategy_micros, 0);
            } else {
                let sum: f32 = r.impact_factors.iter().sum();
                prop_assert!(
                    (sum - 1.0).abs() < 1e-5,
                    "round {}: factors sum to {}", r.round, sum
                );
                prop_assert!(r.impact_factors.iter().all(|&a| a >= 0.0));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Contract 4, executor-level: under arbitrary per-device dropout and
    /// fleet skew, every aggregation holds exactly `buffer_size` updates,
    /// so aggregations × buffer size = accepted updates, and the dispatch
    /// accounting closes (trained = accepted + in flight + still
    /// buffered).
    #[test]
    fn aggregation_count_times_buffer_equals_accepted_updates(
        dropout in 0.0f64..0.9,
        compute_skew in 1.0f64..8.0,
        buffer_size in 1usize..=5,
        seed in 0u64..1000,
    ) {
        let cfg = BufferedConfig {
            fleet: FleetConfig {
                compute_skew,
                dropout,
                seed,
                ..Default::default()
            },
            buffer_size,
            ..Default::default()
        };
        const N: usize = 8;
        const K: usize = 5;
        let mut ex = BufferedExecutor::new(cfg, N, 500, K, seed ^ 0xD0);
        let mut dispatched = 0usize;
        let mut accepted = 0usize;
        let mut aggregations = 0usize;
        for round in 0..20 {
            let selected: Vec<usize> = (0..N).filter(|c| (c + round) % 2 == 0).collect();
            let out = ex.execute(round, &selected, &stub_train);
            let h = out.hetero.expect("buffered executor always reports");
            dispatched += selected.len() - h.dropouts - h.busy;
            prop_assert!(
                out.updates.is_empty() || out.updates.len() == buffer_size,
                "round {round}: partial aggregation of {}", out.updates.len()
            );
            prop_assert_eq!(h.buffered, ex.buffered());
            if !out.updates.is_empty() {
                aggregations += 1;
            }
            accepted += out.updates.len();
        }
        prop_assert_eq!(accepted, aggregations * buffer_size);
        prop_assert_eq!(
            dispatched, accepted + ex.in_flight() + ex.buffered(),
            "dispatch accounting does not close"
        );
    }

    /// Contract 2, discount form: `StalenessDiscount::None` at zero
    /// staleness multiplies factors by exactly 1 — the discounted path is
    /// bit-identical to the undiscounted one on all-fresh rounds — and
    /// every discount keeps factors in (0, 1] with value 1 at s = 0.
    #[test]
    fn discounts_are_exactly_one_at_zero_staleness(
        alpha in 0.0f64..4.0,
        cutoff in 0usize..5,
        s in 0usize..12,
    ) {
        for d in [
            StalenessDiscount::None,
            StalenessDiscount::Polynomial { alpha },
            StalenessDiscount::Hinge { cutoff },
        ] {
            prop_assert_eq!(d.factor(0), 1.0);
            let f = d.factor(s);
            prop_assert!(f > 0.0 && f <= 1.0, "{:?} factor({}) = {}", d, s, f);
        }
        prop_assert_eq!(StalenessDiscount::None.factor(s), 1.0);
    }
}
