//! Integration contract of the session-based orchestration API.
//!
//! Three promises from the redesign, checked at the workspace boundary:
//! (1) a `SessionBuilder` with default components reproduces the committed
//! golden fixture byte-for-byte (the compat `run_federated` path is
//! checked separately in `server_props`); (2) driving a session one round
//! at a time via `step()` yields the same history as `run()`; (3)
//! degenerate configurations surface as typed `FlError`s from the builder
//! instead of panics mid-run, through every entry layer (fl and core).

use feddrl_repro::prelude::*;

mod common;
use common::golden_json as scrubbed_json;

/// The golden fixture's environment (must match `server_props`).
fn golden_setup() -> (ModelSpec, Dataset, Dataset, Partition, FlConfig) {
    let (train, test) = SynthSpec {
        train_size: 600,
        test_size: 150,
        ..SynthSpec::mnist_like()
    }
    .generate(5);
    let partition = PartitionMethod::ce(0.6)
        .partition(&train, 6, &mut Rng64::new(9))
        .unwrap();
    let spec = ModelSpec::Mlp {
        in_dim: train.feature_dim(),
        hidden: vec![16],
        out_dim: train.num_classes(),
    };
    let cfg = FlConfig {
        rounds: 3,
        participants: 5,
        local: LocalTrainConfig {
            epochs: 1,
            batch_size: 16,
            lr: 0.05,
            ..Default::default()
        },
        eval_batch: 64,
        seed: 77,
        log_every: 0,
        selection: Selection::Uniform,
        executor: ExecutorConfig::Ideal,
        server_opt: ServerOptConfig::Plain,
    };
    (spec, train, test, partition, cfg)
}

/// A default-component `SessionBuilder` is byte-identical to the
/// pre-session loop: same golden fixture as the `run_federated` path.
#[test]
fn session_builder_defaults_match_golden_fixture() {
    let (spec, train, test, partition, cfg) = golden_setup();
    let mut strategy = FedAvg;
    let history = SessionBuilder::new(&spec, &train, &test, &partition, &mut strategy)
        .config(&cfg)
        .build()
        .expect("golden config is valid")
        .run()
        .expect("golden run");
    let json = scrubbed_json(history);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/ideal_history.json"
    );
    let golden = std::fs::read_to_string(path).expect("read golden fixture");
    assert_eq!(
        json, golden,
        "SessionBuilder with default components diverged from the golden fixture"
    );
}

/// `step()`-driven sessions produce exactly the history `run()` does —
/// for the ideal executor, for a heterogeneous deadline-bounded one with
/// a non-default selection policy, and for the buffered asynchronous
/// executor (whose virtual clock and in-flight state persist *across*
/// `step()` calls — the equivalence proves that state is carried, not
/// reset per round).
#[test]
fn step_by_step_equals_run() {
    let (spec, train, test, partition, base_cfg) = golden_setup();
    let hetero = ExecutorConfig::Deadline(HeteroConfig {
        fleet: FleetConfig {
            compute_skew: 4.0,
            dropout: 0.2,
            ..Default::default()
        },
        deadline_s: Some(30.0),
        late_policy: LatePolicy::CarryOver,
        ..Default::default()
    });
    let buffered = ExecutorConfig::Buffered(BufferedConfig {
        fleet: FleetConfig {
            compute_skew: 4.0,
            dropout: 0.1,
            ..Default::default()
        },
        buffer_size: 2,
        staleness: StalenessDiscount::Polynomial { alpha: 1.0 },
        server_mix: Some(0.5),
        ..Default::default()
    });
    let variants: [(Selection, ExecutorConfig); 3] = [
        (Selection::Uniform, ExecutorConfig::Ideal),
        (Selection::BandwidthAware { candidates: 6 }, hetero),
        (Selection::Uniform, buffered),
    ];
    for (selection, executor) in variants {
        let mut cfg = base_cfg.clone();
        cfg.selection = selection;
        cfg.executor = executor;

        let mut s1 = FedAvg;
        let whole = SessionBuilder::new(&spec, &train, &test, &partition, &mut s1)
            .config(&cfg)
            .dataset_name("mnist-like")
            .build()
            .expect("valid config")
            .run()
            .expect("run");

        let mut s2 = FedAvg;
        let mut session = SessionBuilder::new(&spec, &train, &test, &partition, &mut s2)
            .config(&cfg)
            .dataset_name("mnist-like")
            .build()
            .expect("valid config");
        let mut steps = 0;
        while let Some(record) = session.step().expect("step") {
            assert_eq!(record.round, steps, "step returned the wrong round");
            steps += 1;
            assert_eq!(session.rounds_completed(), steps);
        }
        assert!(session.is_finished());
        assert!(
            session.step().expect("idempotent step").is_none(),
            "step on a finished session must be a no-op"
        );
        let stepped = session.into_history();

        assert_eq!(steps, cfg.rounds);
        assert_eq!(scrubbed_json(whole), scrubbed_json(stepped));
    }
}

/// Degenerate configs come back as typed errors from the builder — no
/// training compute is spent, nothing panics.
#[test]
fn builder_reports_typed_errors() {
    let (spec, train, test, partition, cfg) = golden_setup();

    let cases: [(FlConfig, FlError); 3] = [
        (
            FlConfig {
                participants: 0,
                ..cfg.clone()
            },
            FlError::ZeroParticipants,
        ),
        (
            FlConfig {
                participants: 7,
                ..cfg.clone()
            },
            FlError::ParticipantsExceedClients {
                participants: 7,
                n_clients: 6,
            },
        ),
        (
            FlConfig {
                rounds: 0,
                ..cfg.clone()
            },
            FlError::ZeroRounds,
        ),
    ];
    for (bad_cfg, expected) in cases {
        let mut strategy = FedAvg;
        let err = SessionBuilder::new(&spec, &train, &test, &partition, &mut strategy)
            .config(&bad_cfg)
            .build()
            .err()
            .expect("degenerate config must not build");
        assert_eq!(err, expected);
    }

    // The deadline executor's knobs are validated too.
    let mut strategy = FedAvg;
    let err = SessionBuilder::new(&spec, &train, &test, &partition, &mut strategy)
        .config(&cfg)
        .executor(ExecutorConfig::Deadline(HeteroConfig {
            deadline_s: Some(f64::NAN),
            ..Default::default()
        }))
        .build()
        .err()
        .expect("NaN deadline must not build");
    assert!(matches!(err, FlError::InvalidDeadline { .. }));
}

/// The buffered executor's knobs surface as the new typed errors — from
/// the builder, before any compute is spent.
#[test]
fn builder_rejects_degenerate_buffered_configs() {
    let (spec, train, test, partition, cfg) = golden_setup();
    let buffered = |buffer_size, staleness, server_mix| {
        ExecutorConfig::Buffered(BufferedConfig {
            fleet: FleetConfig::default(),
            buffer_size,
            staleness,
            server_mix,
            ..Default::default()
        })
    };
    type ErrCheck = fn(&FlError) -> bool;
    let cases: [(ExecutorConfig, ErrCheck); 4] = [
        (buffered(0, StalenessDiscount::None, None), |e| {
            matches!(e, FlError::ZeroBuffer)
        }),
        // golden_setup has K = 5 participants.
        (buffered(6, StalenessDiscount::None, None), |e| {
            matches!(
                e,
                FlError::BufferExceedsParticipants {
                    buffer_size: 6,
                    participants: 5
                }
            )
        }),
        (
            buffered(2, StalenessDiscount::Polynomial { alpha: f64::NAN }, None),
            |e| matches!(e, FlError::InvalidDiscount { .. }),
        ),
        (buffered(2, StalenessDiscount::None, Some(0.0)), |e| {
            matches!(e, FlError::InvalidServerMix { .. })
        }),
    ];
    for (executor, expect) in cases {
        let mut strategy = FedAvg;
        let err = SessionBuilder::new(&spec, &train, &test, &partition, &mut strategy)
            .config(&cfg)
            .executor(executor.clone())
            .build()
            .err()
            .unwrap_or_else(|| panic!("{executor:?} must not build"));
        assert!(expect(&err), "{executor:?} produced unexpected error {err}");
        // FlConfig::validate reports the same error without a builder.
        let mut direct = cfg.clone();
        direct.executor = executor;
        let direct_err = direct.validate(partition.n_clients()).err().unwrap();
        assert_eq!(direct_err, err);
    }
}

/// The core-crate entry point surfaces the same typed errors before any
/// (expensive) two-stage pre-training starts.
#[test]
fn try_run_feddrl_propagates_builder_errors() {
    let (spec, train, test, partition, mut cfg) = golden_setup();
    cfg.participants = 99;
    let err = try_run_feddrl(
        &spec,
        &train,
        &test,
        &partition,
        &cfg,
        &FedDrlRunConfig::default(),
        "mnist-like",
    )
    .err()
    .expect("K > N must not run");
    assert_eq!(
        err,
        FlError::ParticipantsExceedClients {
            participants: 99,
            n_clients: 6
        }
    );
}

/// Observers see every round in order, and any `Stop` vote ends the run
/// with the stopping round's record kept.
#[test]
fn observers_see_every_round_and_can_stop() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    struct Counter {
        rounds_seen: Arc<AtomicUsize>,
        stop_after: usize,
    }
    impl RoundObserver for Counter {
        fn on_round_end(&mut self, signals: &RoundSignals<'_>) -> RoundControl {
            let seen = self.rounds_seen.fetch_add(1, Ordering::SeqCst);
            assert_eq!(
                signals.record.round, seen,
                "observer saw rounds out of order"
            );
            // The ideal executor produces no reliability telemetry: the
            // cumulative signals must stay at their zero identities.
            assert_eq!(signals.total_dropouts, 0);
            assert_eq!(signals.total_stragglers, 0);
            assert_eq!(signals.sim_time_s, 0.0);
            assert_eq!(signals.mean_staleness, 0.0);
            assert_eq!(signals.in_flight, 0);
            if signals.record.round + 1 >= self.stop_after {
                RoundControl::Stop
            } else {
                RoundControl::Continue
            }
        }
    }

    let (spec, train, test, partition, mut cfg) = golden_setup();
    cfg.rounds = 10;
    let seen = Arc::new(AtomicUsize::new(0));
    let mut strategy = FedAvg;
    let history = SessionBuilder::new(&spec, &train, &test, &partition, &mut strategy)
        .config(&cfg)
        .observer(Box::new(Counter {
            rounds_seen: Arc::clone(&seen),
            stop_after: 2,
        }))
        .build()
        .expect("valid config")
        .run()
        .expect("run");
    assert_eq!(history.records.len(), 2, "Stop vote ignored");
    assert_eq!(seen.load(Ordering::SeqCst), 2);
}
