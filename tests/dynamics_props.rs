//! Property-based lockdown of the fleet-dynamics layer: churn, diurnal
//! availability, and adaptive structured dropout.
//!
//! The dynamics layer owes the rest of the workspace four laws. (1)
//! *Conservation*: the churn process never loses a client —
//! `initial + joins − leaves == active` at every instant, ids mint
//! monotonically, and departures never rejoin. (2) *Modulation stays a
//! probability*: every effective dropout rate a validated config can
//! produce is in `[0, 1)` and periodic with the configured cycle. (3)
//! *Byte-inertness*: absent (or zero-amplitude) dynamics reproduce the
//! pre-dynamics histories bit-for-bit, a ratio-1 mask trains bit-identically
//! to the unmasked path, and parallel dispatch stays byte-identical to
//! serial under full dynamics. (4) *Churn-aware bookkeeping closes*:
//! departed clients keep their telemetry, ranked selection never spends a
//! slot on a known-departed device while live candidates remain, and the
//! dispatch/aggregation accounting identities survive mid-flight
//! departures.

use feddrl_repro::prelude::*;
use proptest::prelude::*;

mod common;
use common::scrubbed_json;

// ---------------------------------------------------------------------------
// Churn process laws
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `initial + joins − leaves == active` at every advancement step, the
    /// fleet never empties, and the id universe grows by exactly the joins.
    #[test]
    fn churn_conservation_closes_at_every_instant(
        seed in 0u64..10_000,
        initial_n in 1usize..40,
        arrival_gap in 0.5f64..50.0,
        departure_gap in 0.5f64..50.0,
        steps in 1usize..80,
        step_s in 0.5f64..20.0,
    ) {
        let cfg = ChurnConfig {
            mean_arrival_gap_s: arrival_gap,
            mean_departure_gap_s: departure_gap,
        };
        let mut p = ChurnProcess::new(initial_n, &cfg, seed);
        for step in 1..=steps {
            let events = p.advance_to(step as f64 * step_s);
            prop_assert_eq!(
                p.initial_n() + p.joins() - p.leaves(),
                p.active_count(),
                "conservation broken at step {}", step
            );
            prop_assert!(p.active_count() >= 1, "fleet emptied");
            prop_assert_eq!(p.universe(), initial_n + p.joins());
            for e in &events {
                prop_assert!(e.time_s <= step as f64 * step_s + 1e-9);
            }
        }
        // Departed ids are sorted, unique, and all inactive; every other
        // minted id is active.
        let departed = p.departed_ids();
        prop_assert!(departed.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(departed.len(), p.leaves());
        for &c in &departed {
            prop_assert!(!p.is_active(c), "departed client {} still active", c);
        }
        let active = (0..p.universe()).filter(|&c| p.is_active(c)).count();
        prop_assert_eq!(active, p.active_count());
    }

    /// Every effective dropout rate a validated diurnal config can produce
    /// is a probability, and the modulation is periodic: the rate at
    /// `t + period` equals the rate at `t` (up to f64 rounding of the
    /// phase argument).
    #[test]
    fn effective_dropout_stays_a_probability_and_is_periodic(
        fleet_seed in 0u64..1_000,
        dropout in 0.0f64..0.5,
        dropout_skew in 1.0f64..3.0,
        amplitude in 0.0f64..0.9,
        period in 10.0f64..100_000.0,
        t in 0.0f64..50_000.0,
    ) {
        // Clamp the base rate so the peak stays below certainty — the
        // tight bound `validate_dynamics` enforces.
        let dropout = dropout
            .min(0.99 / (dropout_skew * (1.0 + amplitude)) - 1e-9)
            .max(0.0);
        let diurnal = DiurnalConfig {
            period_s: period,
            dropout_amplitude: amplitude,
            latency_amplitude: amplitude * 0.5,
        };
        let cfg = FleetConfig {
            dropout,
            reliability: ReliabilityConfig {
                dropout_skew,
                correlation: DropoutCorrelation::Independent,
            },
            diurnal: Some(diurnal),
            seed: fleet_seed,
            ..Default::default()
        };
        prop_assert!(cfg.validate().is_ok());
        let fleet = Fleet::generate(12, &cfg);
        for i in 0..12 {
            let prof = fleet.profile(i);
            for probe in [0.0, t, t + period / 3.0, t + period / 2.0] {
                let p = prof.effective_dropout(Some(&diurnal), probe);
                prop_assert!(
                    (0.0..1.0).contains(&p),
                    "client {}'s effective rate {} at t={} is not a probability",
                    i, p, probe
                );
                let lat = prof.effective_latency_s(Some(&diurnal), probe);
                prop_assert!(lat >= 0.0, "negative effective latency {}", lat);
            }
            let now = prof.effective_dropout(Some(&diurnal), t);
            let next_cycle = prof.effective_dropout(Some(&diurnal), t + period);
            prop_assert!(
                (now - next_cycle).abs() <= 1e-6 * (1.0 + now.abs()),
                "client {}: rate {} at t drifted to {} one period later",
                i, now, next_cycle
            );
        }
    }

    /// The two inertness contracts of the device-timing API: no diurnal
    /// config reproduces the static completion time bit-for-bit, and a
    /// zero-amplitude cycle is exactly the identity modulation.
    #[test]
    fn absent_and_zero_amplitude_diurnal_are_bit_inert(
        fleet_seed in 0u64..1_000,
        compute_skew in 1.0f64..8.0,
        dropout in 0.0f64..0.5,
        bytes in 1u64..10_000_000,
        t in 0.0f64..100_000.0,
        period in 10.0f64..100_000.0,
    ) {
        let static_cfg = FleetConfig {
            compute_skew,
            dropout,
            seed: fleet_seed,
            ..Default::default()
        };
        let zero_amp = DiurnalConfig {
            period_s: period,
            dropout_amplitude: 0.0,
            latency_amplitude: 0.0,
        };
        let fleet = Fleet::generate(8, &static_cfg);
        for i in 0..8 {
            let prof = fleet.profile(i);
            prop_assert_eq!(
                prof.completion_time_at(bytes, 1.0, None, t).to_bits(),
                prof.completion_time_s(bytes).to_bits(),
                "completion_time_at(.., 1.0, None, t) must be completion_time_s"
            );
            prop_assert_eq!(
                prof.effective_dropout(None, t).to_bits(),
                prof.dropout.to_bits()
            );
            prop_assert_eq!(
                prof.effective_dropout(Some(&zero_amp), t).to_bits(),
                prof.dropout.to_bits(),
                "zero-amplitude modulation must be the exact identity"
            );
            prop_assert_eq!(
                prof.completion_time_at(bytes, 1.0, Some(&zero_amp), t).to_bits(),
                prof.completion_time_s(bytes).to_bits()
            );
        }
    }

    /// Dynamic profile fields obey the same stability laws as the static
    /// ones: growth never changes an existing client's device (diurnal
    /// phase included), the lazy view agrees with eager generation, and
    /// reseeding moves the phases while enabling the cycle leaves every
    /// pre-existing field untouched.
    #[test]
    fn dynamic_profiles_are_stable_under_growth_and_reseeding(
        seed in 0u64..1_000,
        compute_skew in 1.0f64..8.0,
        dropout in 0.0f64..0.3,
    ) {
        let diurnal = Some(DiurnalConfig::default());
        let cfg = FleetConfig {
            compute_skew,
            dropout,
            diurnal,
            seed,
            ..Default::default()
        };
        let mut view = FleetView::new(6, &cfg);
        let before: Vec<DeviceProfile> = (0..6).map(|i| view.profile(i)).collect();
        view.grow(48);
        let eager = Fleet::generate(48, &cfg);
        for (i, b) in before.iter().enumerate() {
            prop_assert_eq!(
                &view.profile(i), b,
                "client {}'s device changed because the fleet grew", i
            );
            prop_assert_eq!(
                &view.profile(i), eager.profile(i),
                "lazy view and eager fleet disagree at {}", i
            );
        }
        // A diurnal fleet actually has phases to move.
        prop_assert!((0..48).any(|i| view.profile(i).phase != 0.0));
        let reseeded = Fleet::generate(6, &FleetConfig { seed: seed ^ 0x9E3779B9, ..cfg.clone() });
        prop_assert!(
            (0..6).any(|i| reseeded.profile(i).phase != before[i].phase),
            "re-seeding left every diurnal phase untouched"
        );
        // Switching the cycle on only adds the phase draw: every field the
        // static fleet had stays byte-identical.
        let static_fleet = Fleet::generate(6, &FleetConfig { diurnal: None, ..cfg });
        for (i, b) in before.iter().enumerate() {
            let s = static_fleet.profile(i);
            prop_assert_eq!(s.compute_s.to_bits(), b.compute_s.to_bits());
            prop_assert_eq!(s.bandwidth_bps.to_bits(), b.bandwidth_bps.to_bits());
            prop_assert_eq!(s.latency_s.to_bits(), b.latency_s.to_bits());
            prop_assert_eq!(s.dropout.to_bits(), b.dropout.to_bits());
            prop_assert_eq!(s.phase, 0.0, "static fleets must keep phase 0 at {}", i);
        }
    }
}

// ---------------------------------------------------------------------------
// Masked local training
// ---------------------------------------------------------------------------

proptest! {
    // Real (tiny) SGD runs: keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A ratio-1 mask trains byte-identically to the unmasked path, and a
    /// partial mask pins every masked parameter at exactly zero.
    #[test]
    fn full_mask_training_is_byte_identical(seed in 0u64..1_000, ratio in 0.3f64..0.9) {
        let (train, _) = SynthSpec {
            train_size: 48,
            test_size: 10,
            ..SynthSpec::mnist_like()
        }
        .generate(seed);
        let mut init_rng = Rng64::new(seed ^ 0xA11CE);
        let model = Sequential::new()
            .push(Dense::new(train.feature_dim(), 12, Init::HeNormal, &mut init_rng))
            .push(Activation::leaky_relu())
            .push(Dense::new(12, train.num_classes(), Init::XavierUniform, &mut init_rng));
        let indices: Vec<usize> = (0..48).collect();
        let cfg = LocalTrainConfig {
            epochs: 1,
            batch_size: 16,
            lr: 0.05,
            ..Default::default()
        };

        let plain = run_local_round(model.clone(), &train, &indices, 0, &cfg, &mut Rng64::new(seed));
        let full_mask = StructuredMask::derive(&model, 1.0, &mut Rng64::new(seed ^ 1));
        prop_assert!(full_mask.is_full());
        let masked = run_local_round_masked(
            model.clone(), &train, &indices, 0, &cfg, full_mask, &mut Rng64::new(seed),
        );
        prop_assert_eq!(
            &plain.weights, &masked.weights,
            "ratio-1 masked training diverged from the unmasked path"
        );
        prop_assert_eq!(plain.loss_before.to_bits(), masked.loss_before.to_bits());
        prop_assert_eq!(plain.loss_after.to_bits(), masked.loss_after.to_bits());
        prop_assert!(masked.mask.as_ref().is_some_and(|m| m.is_full()));
        prop_assert!((masked.mask_ratio() - 1.0).abs() < 1e-12);

        // A genuinely partial mask deletes its units: the uploaded weights
        // are exactly zero at every masked position, and nowhere else is
        // forced to zero by the projection.
        let part = StructuredMask::derive(&model, ratio, &mut Rng64::new(seed ^ 2));
        prop_assert!(!part.is_full(), "ratio {} produced a full mask", ratio);
        let sub = run_local_round_masked(
            model.clone(), &train, &indices, 0, &cfg, part.clone(), &mut Rng64::new(seed),
        );
        for (p, &w) in sub.weights.iter().enumerate() {
            if !part.keeps(p) {
                prop_assert_eq!(w, 0.0, "masked position {} escaped the sub-model", p);
            }
        }
        prop_assert!(sub.mask_ratio() < 1.0);
        prop_assert!(
            sub.weights != plain.weights,
            "sub-model training cannot equal full-model training"
        );
    }
}

// ---------------------------------------------------------------------------
// Config serialization
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every `ExecutorConfig` variant — dynamics knobs included — survives
    /// a JSON round trip unchanged, and absent dynamics leave no keys
    /// behind (the legacy wire shape).
    #[test]
    fn executor_config_roundtrips_through_json(
        variant in 0u8..3,
        dropout in 0.0f64..0.4,
        dropout_skew in 1.0f64..3.0,
        flags in 0u8..64,
        period in 60.0f64..7200.0,
        amplitude in 0.0f64..0.6,
        arrival_gap in 1.0f64..1e6,
        departure_gap in 1.0f64..1e6,
        min_ratio in 0.05f64..0.95,
        levels in 1usize..6,
        deadline in 5.0f64..500.0,
        alpha in 0.1f64..4.0,
        buffer_size in 1usize..8,
        server_mix in 0.1f64..1.0,
        seed in 0u64..1_000,
    ) {
        // Six independent coin flips packed into one draw (the vendored
        // proptest has no bool/Option strategies).
        let bit = |i: u8| flags & (1 << i) != 0;
        let (has_diurnal, has_churn, has_sd) = (bit(0), bit(1), bit(2));
        let (carry, parallel) = (bit(3), bit(4));
        let deadline = bit(5).then_some(deadline);
        let alpha = bit(0).then_some(alpha);
        let server_mix = bit(1).then_some(server_mix);
        let dropout = dropout
            .min(0.99 / (dropout_skew * (1.0 + amplitude)) - 1e-9)
            .max(0.0);
        let fleet = FleetConfig {
            dropout,
            reliability: ReliabilityConfig {
                dropout_skew,
                correlation: DropoutCorrelation::Independent,
            },
            diurnal: has_diurnal.then_some(DiurnalConfig {
                period_s: period,
                dropout_amplitude: amplitude,
                latency_amplitude: amplitude * 0.5,
            }),
            churn: has_churn.then_some(ChurnConfig {
                mean_arrival_gap_s: arrival_gap,
                mean_departure_gap_s: departure_gap,
            }),
            seed,
            ..Default::default()
        };
        let staleness = match alpha {
            Some(a) => StalenessDiscount::Polynomial { alpha: a },
            None => StalenessDiscount::None,
        };
        let cfg = match variant {
            0 => ExecutorConfig::Ideal,
            1 => ExecutorConfig::Deadline(HeteroConfig {
                fleet,
                deadline_s: deadline,
                late_policy: if carry { LatePolicy::CarryOver } else { LatePolicy::Drop },
                structured_dropout: has_sd.then_some(StructuredDropoutConfig {
                    min_ratio,
                    levels,
                }),
                staleness,
                parallel_dispatch: parallel,
            }),
            _ => ExecutorConfig::Buffered(BufferedConfig {
                fleet,
                buffer_size,
                staleness,
                server_mix,
                parallel_dispatch: parallel,
            }),
        };
        match &cfg {
            ExecutorConfig::Ideal => {}
            ExecutorConfig::Deadline(h) => prop_assert!(h.validate().is_ok()),
            ExecutorConfig::Buffered(b) => prop_assert!(b.validate(8).is_ok()),
        }
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ExecutorConfig = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &cfg, "round trip changed the config");
        // Off dynamics serialize to *nothing*: pre-dynamics consumers of
        // these configs never see the new keys.
        if variant != 0 {
            if !has_diurnal {
                prop_assert!(!json.contains("diurnal"));
            }
            if !has_churn {
                prop_assert!(!json.contains("churn"));
            }
            if variant == 1 && !has_sd {
                prop_assert!(!json.contains("structured_dropout"));
            }
        }
    }
}

/// Configs written before the dynamics layer existed (no `diurnal`,
/// `churn`, or `structured_dropout` keys) still deserialize, with every
/// dynamics knob off.
#[test]
fn legacy_executor_json_deserializes_with_dynamics_off() {
    let legacy = r#"{
        "Deadline": {
            "fleet": {
                "compute_s": 10.0, "compute_skew": 4.0,
                "bandwidth_bps": 1e6, "bandwidth_skew": 1.0,
                "latency_s": 0.05, "dropout": 0.1, "seed": 7
            },
            "deadline_s": 30.0,
            "late_policy": "CarryOver"
        }
    }"#;
    let cfg: ExecutorConfig = serde_json::from_str(legacy).expect("legacy JSON must load");
    let ExecutorConfig::Deadline(h) = cfg else {
        panic!("wrong variant");
    };
    assert!(h.fleet.diurnal.is_none());
    assert!(h.fleet.churn.is_none());
    assert!(h.structured_dropout.is_none());
    assert_eq!(h.deadline_s, Some(30.0));
}

/// Degenerate dynamics configs are rejected up front by the shared
/// validators, not discovered mid-run.
#[test]
fn validation_rejects_degenerate_dynamics() {
    let base = FleetConfig::default();
    let bad_amp = FleetConfig {
        diurnal: Some(DiurnalConfig {
            dropout_amplitude: 1.0,
            ..Default::default()
        }),
        ..base.clone()
    };
    assert!(bad_amp
        .validate()
        .unwrap_err()
        .contains("dropout_amplitude"));
    let bad_period = FleetConfig {
        diurnal: Some(DiurnalConfig {
            period_s: 0.0,
            ..Default::default()
        }),
        ..base.clone()
    };
    assert!(bad_period.validate().unwrap_err().contains("period"));
    let bad_peak = FleetConfig {
        dropout: 0.6,
        diurnal: Some(DiurnalConfig {
            dropout_amplitude: 0.9,
            ..Default::default()
        }),
        ..base.clone()
    };
    assert!(bad_peak.validate().unwrap_err().contains("below 1"));
    let bad_gap = FleetConfig {
        churn: Some(ChurnConfig {
            mean_arrival_gap_s: 0.0,
            ..Default::default()
        }),
        ..base
    };
    assert!(bad_gap
        .validate()
        .unwrap_err()
        .contains("mean_arrival_gap_s"));
    for sd in [
        StructuredDropoutConfig {
            min_ratio: 0.0,
            levels: 4,
        },
        StructuredDropoutConfig {
            min_ratio: 1.0,
            levels: 4,
        },
        StructuredDropoutConfig {
            min_ratio: 0.5,
            levels: 0,
        },
    ] {
        let cfg = HeteroConfig {
            structured_dropout: Some(sd),
            ..Default::default()
        };
        assert!(
            matches!(cfg.validate(), Err(FlError::InvalidDynamics { .. })),
            "degenerate grid {sd:?} slipped through"
        );
    }
}

// ---------------------------------------------------------------------------
// Churn-aware executor bookkeeping (stub training — no NN)
// ---------------------------------------------------------------------------

/// A weightless update (executor logic never reads the payload).
fn stub_update(client_id: usize) -> ClientUpdate {
    ClientUpdate {
        client_id,
        weights: vec![0.0; 4],
        n_samples: 10,
        loss_before: 1.0,
        loss_after: 0.5,
        staleness: 0,
        mask: None,
    }
}

fn stub_train(dispatches: &[Dispatch]) -> Vec<ClientUpdate> {
    dispatches
        .iter()
        .map(|d| stub_update(d.client_id))
        .collect()
}

/// Drive `rounds` rounds mirroring the session's churn bookkeeping (the
/// client universe grows with the executor's, selection sees departures),
/// asserting along the way that ranked selection never spends a slot on a
/// known-departed client while live candidates remain. Returns the
/// outcomes.
fn drive_churned(
    ex: &mut dyn RoundExecutor,
    policy: &mut dyn SelectionPolicy,
    initial_n: usize,
    k: usize,
    rounds: usize,
) -> Vec<RoundOutcome> {
    let master = Rng64::new(33);
    let mut n = initial_n;
    let mut known_loss: Vec<Option<f32>> = vec![None; n];
    let mut participation = vec![0usize; n];
    let mut outcomes = Vec::with_capacity(rounds);
    for round in 0..rounds {
        if let Some(universe) = ex.universe() {
            if universe > n {
                known_loss.resize(universe, None);
                participation.resize(universe, 0);
                n = universe;
            }
        }
        let mut rng = master.derive(round as u64);
        let in_flight = ex.in_flight_clients();
        let departed = ex.departed_clients();
        let selected = {
            let ctx = SelectionContext {
                round,
                n_clients: n,
                participants: k,
                known_loss: &known_loss,
                participation: &participation,
                fleet: ex.fleet(),
                upload_bytes: ex.upload_bytes(),
                deadline_s: ex.deadline_s(),
                in_flight: &in_flight,
                reliability: ex.reliability(),
                departed: &departed,
            };
            policy.select(&ctx, &mut rng)
        };
        assert_eq!(selected.len(), k);
        for &c in &selected {
            participation[c] += 1;
        }
        if n - departed.len() >= k {
            for &c in &selected {
                assert!(
                    departed.binary_search(&c).is_err(),
                    "round {round}: selected departed client {c} with live candidates available"
                );
            }
        }
        let out = ex.execute(round, &selected, &stub_train);
        for u in &out.updates {
            known_loss[u.client_id] = Some(u.loss_before);
        }
        outcomes.push(out);
    }
    outcomes
}

fn churning_fleet(seed: u64) -> FleetConfig {
    FleetConfig {
        compute_skew: 4.0,
        dropout: 0.1,
        diurnal: Some(DiurnalConfig {
            period_s: 300.0,
            dropout_amplitude: 0.4,
            latency_amplitude: 0.3,
        }),
        churn: Some(ChurnConfig {
            mean_arrival_gap_s: 25.0,
            mean_departure_gap_s: 30.0,
        }),
        seed,
        ..Default::default()
    }
}

/// The buffered executor's accounting identities survive churn: sampled
/// slots split exactly into dropouts + dispatches + busy-skips, every
/// dispatch is aggregated, lost in transit to a departure, in flight, or
/// buffered — and a departed client's telemetry persists in the table
/// instead of being reaped.
#[test]
fn buffered_churn_accounting_closes_and_telemetry_persists() {
    const N: usize = 24;
    const K: usize = 6;
    let rounds = 80;
    let cfg = BufferedConfig {
        fleet: churning_fleet(0xD15EA5E),
        buffer_size: 3,
        ..Default::default()
    };
    let mut ex = BufferedExecutor::new(cfg, N, 60_000, K, 9);
    let outcomes = drive_churned(
        &mut ex,
        &mut ReliabilityAwareSelection { candidates: 1024 },
        N,
        K,
        rounds,
    );
    let departed = RoundExecutor::departed_clients(&ex);
    assert!(!departed.is_empty(), "no departures in 80 churning rounds");
    assert!(
        RoundExecutor::universe(&ex).unwrap() > N,
        "no arrivals in 80 churning rounds"
    );
    let (mut rec_dropouts, mut rec_busy, mut rec_lost, mut rec_aggregated) = (0, 0, 0, 0usize);
    let (mut rec_joined, mut rec_departed) = (0usize, 0usize);
    for out in &outcomes {
        let h = out.hetero.as_ref().expect("buffered telemetry");
        rec_dropouts += h.dropouts;
        rec_busy += h.busy;
        rec_lost += h.stragglers;
        rec_aggregated += h.aggregated();
        rec_joined += h.joined;
        rec_departed += h.departed;
    }
    assert!(rec_joined > 0 && rec_departed > 0, "records saw no churn");
    let totals = RoundExecutor::reliability(&ex).unwrap().totals();
    assert_eq!(totals.dropouts, rec_dropouts);
    assert_eq!(totals.aggregated, rec_aggregated);
    assert_eq!(
        totals.dropouts + totals.dispatches + rec_busy,
        rounds * K,
        "sampled-slot accounting must close under churn"
    );
    assert_eq!(
        totals.dispatches,
        totals.aggregated + rec_lost + ex.in_flight() + ex.buffered(),
        "dispatch accounting must close: lost-in-transit departures are stragglers"
    );
    // Telemetry outlives the device: at least one departed client was
    // observed before leaving, and its record is still in the table.
    let stats = RoundExecutor::reliability(&ex).unwrap();
    assert!(
        departed.iter().any(|&c| {
            let s = stats.get(c);
            s.dispatches + s.dropouts > 0
        }),
        "no departed client left any telemetry behind"
    );
}

/// Deadline-executor churn bookkeeping: dispatches to departed clients
/// read as dropouts, the universe the selection loop sees only grows, and
/// the sampled-slot identity holds (no foregone stragglers under an
/// unbounded deadline).
#[test]
fn deadline_churn_accounting_closes() {
    const N: usize = 16;
    const K: usize = 5;
    let rounds = 60;
    let cfg = HeteroConfig {
        fleet: churning_fleet(0xBEEF),
        deadline_s: None,
        late_policy: LatePolicy::CarryOver,
        ..Default::default()
    };
    let mut ex = DeadlineExecutor::new(cfg, N, 60_000, K, 9);
    let outcomes = drive_churned(
        &mut ex,
        &mut ReliabilityAwareSelection { candidates: 1024 },
        N,
        K,
        rounds,
    );
    let totals = RoundExecutor::reliability(&ex).unwrap().totals();
    let rec_dropouts: usize = outcomes
        .iter()
        .map(|o| o.hetero.as_ref().unwrap().dropouts)
        .sum();
    assert_eq!(totals.dropouts, rec_dropouts);
    assert_eq!(
        totals.dropouts + totals.dispatches,
        rounds * K,
        "every sampled slot is either a dropout (incl. departed) or a dispatch"
    );
    assert!(
        RoundExecutor::universe(&ex).unwrap() > N
            && !RoundExecutor::departed_clients(&ex).is_empty(),
        "churn never fired"
    );
}

/// Adaptive structured dropout converts foregone stragglers into masked
/// sub-model dispatches: under a deadline the full fleet cannot meet,
/// every deadline-pressed device trains the largest grid ratio that fits,
/// the record counts it, and nothing is lost to the late policy.
#[test]
fn structured_dropout_rescues_deadline_pressed_devices() {
    use std::sync::Mutex;
    const N: usize = 8;
    let deadline = 12.0;
    let fleet = FleetConfig {
        compute_skew: 4.0,
        seed: 0xFA57,
        ..Default::default()
    };

    let run = |sd: Option<StructuredDropoutConfig>| {
        let cfg = HeteroConfig {
            fleet: fleet.clone(),
            deadline_s: Some(deadline),
            late_policy: LatePolicy::Drop,
            structured_dropout: sd,
            ..Default::default()
        };
        let mut ex = DeadlineExecutor::new(cfg, N, 60_000, N, 9);
        let seen = Mutex::new(Vec::new());
        let train = |dispatches: &[Dispatch]| -> Vec<ClientUpdate> {
            seen.lock().unwrap().extend_from_slice(dispatches);
            stub_train(dispatches)
        };
        let selected: Vec<usize> = (0..N).collect();
        let out = ex.execute(0, &selected, &train);
        (out, seen.into_inner().unwrap(), ex)
    };

    let (dropped, plain_dispatches, _) = run(None);
    let h = dropped.hetero.as_ref().unwrap();
    assert!(
        h.stragglers > 0,
        "Drop run lost nobody — deadline too loose"
    );
    assert!(plain_dispatches.iter().all(|d| d.keep_ratio == 1.0));

    let (rescued, dispatches, ex) = run(Some(StructuredDropoutConfig::default()));
    let h = rescued.hetero.as_ref().unwrap();
    assert!(h.masked > 0, "no device was masked");
    assert_eq!(
        h.masked,
        dispatches.iter().filter(|d| d.keep_ratio < 1.0).count(),
        "masked count must match sub-model dispatches"
    );
    assert_eq!(
        h.stragglers, 0,
        "a fitted sub-model must never miss the deadline"
    );
    assert!(
        rescued.updates.len() > dropped.updates.len(),
        "structured dropout must aggregate more than the Drop policy"
    );
    // Each masked dispatch got the *largest* grid ratio that fits.
    let sd = StructuredDropoutConfig::default();
    let grid: Vec<f64> = (0..sd.levels)
        .rev()
        .map(|i| sd.min_ratio + i as f64 * (1.0 - sd.min_ratio) / sd.levels as f64)
        .collect();
    for d in dispatches.iter().filter(|d| d.keep_ratio < 1.0) {
        let prof = ex.fleet().profile(d.client_id);
        assert!(
            prof.completion_time_at(ex.upload_bytes(), d.keep_ratio, None, 0.0) <= deadline,
            "client {} was masked to {} yet still misses",
            d.client_id,
            d.keep_ratio
        );
        let larger = grid
            .iter()
            .find(|&&r| prof.completion_time_at(ex.upload_bytes(), r, None, 0.0) <= deadline)
            .expect("some grid ratio fits");
        assert_eq!(
            d.keep_ratio, *larger,
            "client {} did not get the largest fitting ratio",
            d.client_id
        );
    }
}

// ---------------------------------------------------------------------------
// End-to-end byte-identity (real training)
// ---------------------------------------------------------------------------

/// Shared small-session environment (mirrors `session_api`'s golden setup
/// but with one more round so churn has time to fire).
fn dynamics_setup() -> (ModelSpec, Dataset, Dataset, Partition, FlConfig) {
    let (train, test) = SynthSpec {
        train_size: 360,
        test_size: 90,
        ..SynthSpec::mnist_like()
    }
    .generate(5);
    let partition = PartitionMethod::ce(0.6)
        .partition(&train, 6, &mut Rng64::new(9))
        .unwrap();
    let spec = ModelSpec::Mlp {
        in_dim: train.feature_dim(),
        hidden: vec![16],
        out_dim: train.num_classes(),
    };
    let cfg = FlConfig {
        rounds: 4,
        participants: 5,
        local: LocalTrainConfig {
            epochs: 1,
            batch_size: 16,
            lr: 0.05,
            ..Default::default()
        },
        eval_batch: 64,
        seed: 77,
        log_every: 0,
        selection: Selection::Uniform,
        executor: ExecutorConfig::Ideal,
        server_opt: ServerOptConfig::Plain,
    };
    (spec, train, test, partition, cfg)
}

fn run_history(cfg: &FlConfig) -> RunHistory {
    let (spec, train, test, partition, _) = dynamics_setup();
    let mut strategy = FedAvg;
    SessionBuilder::new(&spec, &train, &test, &partition, &mut strategy)
        .config(cfg)
        .dataset_name("mnist-like")
        .build()
        .expect("valid dynamics config")
        .run()
        .expect("dynamics run")
}

/// Fully dynamic deadline executor for the end-to-end laws: churning
/// diurnal fleet, tight deadline, adaptive structured dropout.
fn dynamic_deadline(parallel: bool) -> ExecutorConfig {
    ExecutorConfig::Deadline(HeteroConfig {
        fleet: churning_fleet(0xD1A1),
        deadline_s: Some(12.0),
        late_policy: LatePolicy::Drop,
        structured_dropout: Some(StructuredDropoutConfig::default()),
        staleness: StalenessDiscount::None,
        parallel_dispatch: parallel,
    })
}

fn dynamic_buffered(parallel: bool) -> ExecutorConfig {
    ExecutorConfig::Buffered(BufferedConfig {
        fleet: churning_fleet(0xD1A2),
        buffer_size: 2,
        staleness: StalenessDiscount::Polynomial { alpha: 1.0 },
        server_mix: Some(0.5),
        parallel_dispatch: parallel,
    })
}

/// Parallel dispatch is byte-identical to serial under full dynamics on
/// both executors — churn, diurnal modulation, and structured dropout do
/// not break the per-client RNG-stream independence the rayon path relies
/// on. Also pins that the dynamic runs actually exercise the machinery
/// (churn events and masked dispatches appear in the records).
#[test]
fn churned_dynamic_runs_are_parallel_serial_byte_identical() {
    let (_, _, _, _, base) = dynamics_setup();
    for (serial, parallel) in [
        (dynamic_deadline(false), dynamic_deadline(true)),
        (dynamic_buffered(false), dynamic_buffered(true)),
    ] {
        let mut cfg_s = base.clone();
        cfg_s.selection = Selection::ReliabilityAware { candidates: 64 };
        cfg_s.executor = serial;
        let mut cfg_p = cfg_s.clone();
        cfg_p.executor = parallel;
        let hist_s = run_history(&cfg_s);
        let churned: usize = hist_s
            .records
            .iter()
            .filter_map(|r| r.hetero.as_ref())
            .map(|h| h.joined + h.departed)
            .sum();
        assert!(churned > 0, "dynamic run saw no churn — fixture too tame");
        let hist_p = run_history(&cfg_p);
        assert_eq!(
            scrubbed_json(hist_s),
            scrubbed_json(hist_p),
            "parallel dispatch diverged from serial under churn"
        );
    }
    // The deadline fixture must actually mask somebody, or the structured-
    // dropout path was never end-to-end exercised.
    let mut cfg = base;
    cfg.selection = Selection::ReliabilityAware { candidates: 64 };
    cfg.executor = dynamic_deadline(false);
    let masked: usize = run_history(&cfg)
        .records
        .iter()
        .filter_map(|r| r.hetero.as_ref())
        .map(|h| h.masked)
        .sum();
    assert!(masked > 0, "dynamic deadline run never masked a device");
}

/// The PR-6 regression lock: turning every dynamics knob to its inert
/// setting (zero-amplitude diurnal cycle, churn gaps beyond the horizon)
/// reproduces the dynamics-free history byte-for-byte on both executors.
#[test]
fn inert_dynamics_reproduce_dynamics_free_histories() {
    let (_, _, _, _, base) = dynamics_setup();
    let static_fleet = FleetConfig {
        compute_skew: 4.0,
        dropout: 0.2,
        ..Default::default()
    };
    let inert_fleet = FleetConfig {
        diurnal: Some(DiurnalConfig {
            period_s: 3600.0,
            dropout_amplitude: 0.0,
            latency_amplitude: 0.0,
        }),
        churn: Some(ChurnConfig {
            mean_arrival_gap_s: 1e18,
            mean_departure_gap_s: 1e18,
        }),
        ..static_fleet.clone()
    };
    let deadline = |fleet: FleetConfig| {
        ExecutorConfig::Deadline(HeteroConfig {
            fleet,
            deadline_s: Some(30.0),
            late_policy: LatePolicy::CarryOver,
            ..Default::default()
        })
    };
    let buffered = |fleet: FleetConfig| {
        ExecutorConfig::Buffered(BufferedConfig {
            fleet,
            buffer_size: 2,
            ..Default::default()
        })
    };
    let pairs: [(ExecutorConfig, ExecutorConfig); 2] = [
        (
            deadline(static_fleet.clone()),
            deadline(inert_fleet.clone()),
        ),
        (buffered(static_fleet), buffered(inert_fleet)),
    ];
    for (off, inert) in pairs {
        let mut cfg_off = base.clone();
        cfg_off.executor = off;
        let mut cfg_inert = base.clone();
        cfg_inert.executor = inert;
        assert_eq!(
            scrubbed_json(run_history(&cfg_off)),
            scrubbed_json(run_history(&cfg_inert)),
            "inert dynamics changed a history byte"
        );
    }
}
