//! Integration tests of the DRL stack against the federated environment:
//! the agent must demonstrably *learn* to weight clients on a federation
//! where the optimal weighting is known.

use feddrl_repro::prelude::*;

/// A contrived environment where one client's update is pure noise: the
/// optimal policy should learn to down-weight it. We emulate the FL loop
/// at the strategy level for speed.
#[test]
fn agent_downweights_harmful_client() {
    let k = 3;
    let mut cfg = FedDrlConfig::default();
    cfg.ddpg.hidden = 48;
    cfg.ddpg.batch_size = 16;
    cfg.ddpg.warmup = 8;
    cfg.ddpg.updates_per_round = 8;
    cfg.ddpg.exploration_noise = 0.25;
    cfg.ddpg.policy_lr = 2e-3;
    cfg.ddpg.value_lr = 5e-3;
    let mut strategy = FedDrl::new(k, &cfg);

    // Environment: client 2's "data" is junk. The observed losses of the
    // next round rise with the weight the junk client received.
    let mut alpha_junk_history = Vec::new();
    let mut last_alpha = vec![1.0 / k as f32; k];
    for round in 0..300 {
        let junk_weight = last_alpha[2];
        // Losses react to the previous aggregation: the more weight the
        // junk client got, the worse everyone's loss.
        let base = 0.5 + 2.0 * junk_weight;
        let summaries: Vec<ClientSummary> = (0..k)
            .map(|i| ClientSummary {
                client_id: i,
                n_samples: 100,
                loss_before: base + 0.01 * i as f32,
                loss_after: 0.3,
            })
            .collect();
        last_alpha = strategy.impact_factors(round, &summaries);
        alpha_junk_history.push(last_alpha[2]);
    }
    let early: f32 = alpha_junk_history[..40].iter().sum::<f32>() / 40.0;
    let late: f32 = alpha_junk_history[alpha_junk_history.len() - 40..]
        .iter()
        .sum::<f32>()
        / 40.0;
    assert!(
        late < early * 0.85,
        "agent failed to learn to down-weight the junk client: early {early:.3} late {late:.3}"
    );
}

/// Two-stage training on a real (small) federation improves over an
/// untrained agent's first decisions, measured by critic availability and
/// buffer contents.
#[test]
fn two_stage_produces_trained_main_agent() {
    let (train, test) = SynthSpec {
        train_size: 800,
        test_size: 200,
        ..SynthSpec::mnist_like()
    }
    .generate(6);
    let partition = PartitionMethod::ce(0.6)
        .partition(&train, 6, &mut Rng64::new(7))
        .unwrap();
    let model = ModelSpec::Mlp {
        in_dim: train.feature_dim(),
        hidden: vec![24],
        out_dim: train.num_classes(),
    };
    let fl_cfg = FlConfig {
        rounds: 6,
        participants: 6,
        local: LocalTrainConfig {
            epochs: 1,
            batch_size: 16,
            lr: 0.05,
            ..Default::default()
        },
        eval_batch: 128,
        seed: 77,
        log_every: 0,
        selection: Selection::Uniform,
        executor: ExecutorConfig::Ideal,
        server_opt: ServerOptConfig::Plain,
    };
    let mut feddrl_cfg = FedDrlConfig::default();
    feddrl_cfg.ddpg.hidden = 32;
    feddrl_cfg.ddpg.warmup = 4;
    feddrl_cfg.ddpg.batch_size = 4;
    let ts = TwoStageConfig {
        workers: 2,
        online_rounds: 5,
        offline_updates: 8,
        seed: 99,
    };
    let (main, report) =
        two_stage_train(&model, &train, &test, &partition, &fl_cfg, &feddrl_cfg, &ts);
    assert_eq!(report.worker_experiences.len(), 2);
    assert!(report.merged_experiences >= 8);
    assert!(report.offline_updates > 0);
    // The trained main agent differs from a fresh one with the same seed.
    let mut fresh_cfg = feddrl_cfg.ddpg_for(6);
    fresh_cfg.seed = ts.seed;
    let fresh = DdpgAgent::new(fresh_cfg);
    assert_ne!(main.policy_params(), fresh.policy_params());
}

/// The replay buffer's contents survive the full strategy path: states
/// are 3K-dimensional, actions 2K-dimensional, rewards negative (losses
/// are positive).
#[test]
fn recorded_transitions_have_coherent_geometry() {
    let k = 5;
    let mut cfg = FedDrlConfig::default();
    cfg.ddpg.hidden = 32;
    cfg.online_training = false;
    let mut strategy = FedDrl::new(k, &cfg);
    for round in 0..8 {
        let summaries: Vec<ClientSummary> = (0..k)
            .map(|i| ClientSummary {
                client_id: i,
                n_samples: 50 + 10 * i,
                loss_before: 1.5 - 0.05 * round as f32,
                loss_after: 0.8,
            })
            .collect();
        let _ = strategy.impact_factors(round, &summaries);
    }
    let agent = strategy.agent();
    assert_eq!(agent.buffer.len(), 7);
    for exp in agent.buffer.iter() {
        assert_eq!(exp.state.len(), 3 * k);
        assert_eq!(exp.action.len(), 2 * k);
        assert_eq!(exp.next_state.len(), 3 * k);
        assert!(exp.reward < 0.0, "positive reward from positive losses");
        // Actions obey the head's ranges.
        for i in 0..k {
            assert!((-1.0..=1.0).contains(&exp.action[i]));
            assert!(exp.action[k + i] >= 0.0);
        }
    }
}
