//! Scale-invariant property suite: the laws that make fleet size a free
//! variable (the million-client milestone).
//!
//! Contracts proven here:
//!
//! 1. **Lazy ≡ eager** — `FleetView` derives, at every index and under
//!    arbitrary seeds/configs, exactly the profile the eager `Fleet`
//!    materializes; growing N never changes an existing client's device.
//! 2. **Sparse accounting law** — the `ReliabilityTable`'s totals close
//!    against the per-round records (the reliability accounting law,
//!    re-proved on the sparse type), and the table holds entries only for
//!    clients actually dispatched.
//! 3. **Parallel ≡ serial** — a session run with rayon-parallel client
//!    dispatch produces a byte-identical serialized history to the serial
//!    run at the same seed (timings scrubbed, like every golden
//!    comparison), for both the deadline and the buffered executor.
//! 4. **Event-queue order at scale** — at 10^5 active entries the queue
//!    pops a total order on time with FIFO tie-breaking, without growing
//!    past its presized capacity.
//! 5. **Selection at scale** — the oversampling policies keep their
//!    K-distinct/in-range/deterministic contract over a 10^5-client lazy
//!    fleet while deriving O(candidates) profiles, never O(N).
//! 6. **Memory proportionality** — a full buffered round at N = 10^5
//!    keeps telemetry entries bounded by the distinct clients dispatched
//!    and profile derivations proportional to the clients actually
//!    consulted (the `exp_scale` claim, pinned as a test).

use feddrl_repro::prelude::*;
use proptest::prelude::*;

mod common;
use common::scrubbed_json;

/// Builds an `ExecutorConfig` with the given `parallel_dispatch` flag.
type ConfigBuilder = Box<dyn Fn(bool) -> ExecutorConfig>;

fn stub_train(dispatches: &[Dispatch]) -> Vec<ClientUpdate> {
    dispatches
        .iter()
        .map(|&Dispatch { client_id, .. }| ClientUpdate {
            client_id,
            weights: vec![0.0; 4],
            n_samples: 10,
            loss_before: 1.0,
            loss_after: 0.5,
            staleness: 0,
            mask: None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Contract 1: profile-for-profile equivalence of the lazy view and
    /// the eager fleet, under arbitrary seeds and heterogeneity configs,
    /// plus agreement of the derived aggregates.
    #[test]
    fn fleet_view_matches_eager_fleet_at_every_index(
        n in 1usize..64,
        seed in 0u64..1_000,
        compute_skew in 1.0f64..8.0,
        bandwidth_skew in 1.0f64..4.0,
        dropout in 0.0f64..0.3,
        dropout_skew in 1.0f64..3.0,
        strength in 0.0f64..1.0,
        correlated in 0u8..2,
    ) {
        let cfg = FleetConfig {
            compute_skew,
            bandwidth_skew,
            dropout,
            reliability: ReliabilityConfig {
                dropout_skew,
                correlation: if correlated == 1 {
                    DropoutCorrelation::SpeedCorrelated { strength }
                } else {
                    DropoutCorrelation::Independent
                },
            },
            seed,
            ..Default::default()
        };
        prop_assert!(cfg.validate().is_ok());
        let view = FleetView::new(n, &cfg);
        let eager = Fleet::generate(n, &cfg);
        prop_assert_eq!(view.len(), eager.len());
        for i in 0..n {
            prop_assert_eq!(
                &view.profile(i), eager.profile(i),
                "lazy view diverged from the eager fleet at index {}", i
            );
        }
        // Growing the view never changes an existing client's device.
        let grown = FleetView::new(n * 4, &cfg);
        for i in 0..n {
            prop_assert_eq!(
                &grown.profile(i), eager.profile(i),
                "client {}'s device changed because the fleet grew", i
            );
        }
        // Derived aggregates agree bit-for-bit (same derivation path).
        prop_assert_eq!(view.mean_dropout(), eager.mean_dropout());
        prop_assert_eq!(
            view.completion_percentile_s(1_000_000, 0.5),
            eager.completion_percentile_s(1_000_000, 0.5)
        );
    }

    /// Contract 2: the sparse telemetry's totals close against the
    /// per-round records under arbitrary dropout and skew — dropouts and
    /// aggregations match the records exactly, sampled-slot and dispatch
    /// accounting both close, and the table stays bounded by the distinct
    /// clients ever selected.
    #[test]
    fn sparse_telemetry_totals_close_against_round_records(
        dropout in 0.0f64..0.5,
        compute_skew in 1.0f64..8.0,
        buffer_size in 1usize..=5,
        seed in 0u64..1_000,
    ) {
        let cfg = BufferedConfig {
            fleet: FleetConfig {
                compute_skew,
                dropout,
                seed,
                ..Default::default()
            },
            buffer_size,
            ..Default::default()
        };
        const N: usize = 40;
        const K: usize = 6;
        let mut ex = BufferedExecutor::new(cfg, N, 500, K, seed ^ 0xACC);
        let master = Rng64::new(seed ^ 0x5E1);
        let mut distinct = std::collections::BTreeSet::new();
        let (mut rec_dropouts, mut rec_aggregated, mut rec_staleness) = (0, 0, 0);
        let mut rec_busy = 0usize;
        let rounds = 30usize;
        for round in 0..rounds {
            let selected = master.derive(round as u64).sample_indices(N, K);
            distinct.extend(selected.iter().copied());
            let out = ex.execute(round, &selected, &stub_train);
            let h = out.hetero.expect("buffered telemetry");
            rec_dropouts += h.dropouts;
            rec_busy += h.busy;
            rec_aggregated += h.aggregated();
            rec_staleness += h.staleness.iter().sum::<usize>();
        }
        let stats = RoundExecutor::reliability(&ex).expect("buffered telemetry");
        let totals = stats.totals();
        prop_assert_eq!(totals.dropouts, rec_dropouts);
        prop_assert_eq!(totals.aggregated, rec_aggregated);
        prop_assert_eq!(totals.staleness_sum, rec_staleness);
        prop_assert_eq!(
            totals.dropouts + totals.dispatches + rec_busy,
            rounds * K,
            "sampled-slot accounting must close"
        );
        prop_assert_eq!(
            totals.dispatches,
            totals.aggregated + ex.in_flight() + ex.buffered(),
            "dispatch accounting must close"
        );
        // Sparsity: entries exist only for clients actually sampled, and
        // every entry carries at least one observation.
        prop_assert!(stats.observed() <= distinct.len());
        for (cid, s) in stats.iter() {
            prop_assert!(distinct.contains(&cid), "entry for never-sampled client {}", cid);
            prop_assert!(s.dropouts + s.dispatches > 0, "empty entry for client {}", cid);
        }
        // Unobserved clients read as the zero default without insertion.
        let before = stats.observed();
        prop_assert_eq!(stats.get(N + 7), ClientReliability::default());
        prop_assert_eq!(stats.observed(), before);
    }
}

/// Contract 3: with `parallel_dispatch` the executors fan client training
/// out over rayon; at a fixed seed the full serialized history — every
/// weight, loss, impact factor and telemetry record — must be
/// byte-identical to the serial run's. Timings are scrubbed exactly like
/// the golden-fixture comparisons (they measure wall clock, not the
/// trajectory).
#[test]
fn parallel_dispatch_history_is_byte_identical_to_serial() {
    let (train, test) = SynthSpec {
        train_size: 400,
        test_size: 100,
        ..SynthSpec::mnist_like()
    }
    .generate(5);
    let partition = PartitionMethod::Iid
        .partition(&train, 8, &mut Rng64::new(9))
        .unwrap();
    let spec = ModelSpec::Mlp {
        in_dim: train.feature_dim(),
        hidden: vec![12],
        out_dim: train.num_classes(),
    };
    let fleet = FleetConfig {
        compute_skew: 4.0,
        dropout: 0.2,
        seed: 0xF1EE7,
        ..Default::default()
    };
    let executors: Vec<(&str, ConfigBuilder)> = vec![
        (
            "deadline",
            Box::new({
                let fleet = fleet.clone();
                move |parallel_dispatch| {
                    ExecutorConfig::Deadline(HeteroConfig {
                        fleet: fleet.clone(),
                        deadline_s: Some(40.0),
                        late_policy: LatePolicy::CarryOver,
                        parallel_dispatch,
                        ..Default::default()
                    })
                }
            }),
        ),
        (
            "buffered",
            Box::new({
                let fleet = fleet.clone();
                move |parallel_dispatch| {
                    ExecutorConfig::Buffered(BufferedConfig {
                        fleet: fleet.clone(),
                        buffer_size: 3,
                        parallel_dispatch,
                        ..Default::default()
                    })
                }
            }),
        ),
    ];
    for (label, mk_exec) in executors {
        let mut histories = Vec::new();
        for parallel in [false, true] {
            let cfg = FlConfig {
                rounds: 4,
                participants: 5,
                local: LocalTrainConfig {
                    epochs: 1,
                    batch_size: 16,
                    lr: 0.05,
                    ..Default::default()
                },
                eval_batch: 64,
                seed: 23,
                log_every: 0,
                selection: Selection::Uniform,
                executor: mk_exec(parallel),
                server_opt: ServerOptConfig::Plain,
            };
            let mut strategy = FedAvg;
            let history = SessionBuilder::new(&spec, &train, &test, &partition, &mut strategy)
                .config(&cfg)
                .build()
                .expect("valid config")
                .run()
                .expect("federated run");
            histories.push(scrubbed_json(history));
        }
        assert_eq!(
            histories[0], histories[1],
            "{label}: parallel dispatch diverged from the serial trajectory"
        );
    }
}

/// Contract 4: at 10^5 active entries the queue pops exactly the stable
/// sort of its input by time — a total order with FIFO tie-breaking —
/// and never grows past the capacity it was presized with.
#[test]
fn event_queue_pop_order_is_total_with_fifo_ties_at_scale() {
    const N: usize = 100_000;
    let mut q = EventQueue::with_capacity(N);
    let cap = q.capacity();
    assert!(cap >= N);
    // Many ties: only 1000 distinct times across 10^5 entries.
    let times: Vec<f64> = (0..N).map(|i| ((i * 7919) % 1_000) as f64).collect();
    for (i, &t) in times.iter().enumerate() {
        q.schedule(
            t,
            EventKind::UploadComplete {
                client_id: i,
                version: 0,
            },
        );
    }
    assert_eq!(q.len(), N);
    assert_eq!(
        q.capacity(),
        cap,
        "presized queue reallocated while within capacity"
    );
    let mut expected: Vec<usize> = (0..N).collect();
    expected.sort_by(|&a, &b| times[a].total_cmp(&times[b])); // stable: FIFO ties
    for (k, &want) in expected.iter().enumerate() {
        let e = q.pop().expect("queue must hold N entries");
        assert_eq!(e.time_s, times[want], "pop {k} broke the time order");
        match e.kind {
            EventKind::UploadComplete { client_id, .. } => {
                assert_eq!(
                    client_id, want,
                    "pop {k} broke FIFO tie-breaking at time {}",
                    e.time_s
                );
            }
            other => panic!("unexpected event kind {other:?}"),
        }
    }
    assert!(q.pop().is_none());
}

/// Contract 5: over a 10^5-client lazy fleet every oversampling policy
/// keeps the session's selection contract — exactly K distinct in-range
/// ids, reproducible under a fixed seed — while deriving at most
/// O(candidates) device profiles per call (each candidate is consulted a
/// bounded number of times; a dense policy would derive all 10^5).
#[test]
fn selection_contracts_hold_over_a_hundred_thousand_client_lazy_fleet() {
    const N: usize = 100_000;
    const K: usize = 64;
    const D: usize = 256;
    let fleet = FleetView::new(
        N,
        &FleetConfig {
            compute_skew: 4.0,
            bandwidth_skew: 2.0,
            dropout: 0.1,
            seed: 0xB16,
            ..Default::default()
        },
    );
    let mut rng = Rng64::new(31);
    let known_loss: Vec<Option<f32>> = (0..N)
        .map(|_| rng.chance(0.5).then(|| rng.uniform(0.1, 3.0)))
        .collect();
    let stats: ReliabilityTable = (0..200)
        .map(|i| {
            (
                i * 97,
                ClientReliability {
                    dropouts: rng.below(5),
                    dispatches: rng.below(20),
                    aggregated: 0,
                    staleness_sum: 0,
                },
            )
        })
        .collect();
    let in_flight = rng.sample_indices(N, 32);
    for selection in [
        Selection::PowerOfChoice { candidates: D },
        Selection::ReliabilityAware { candidates: D },
        Selection::StalenessBalanced { candidates: D },
    ] {
        let mut policy = selection.build();
        let ctx = SelectionContext {
            round: 3,
            n_clients: N,
            participants: K,
            known_loss: &known_loss,
            participation: &[],
            fleet: Some(&fleet),
            upload_bytes: 1_000_000,
            deadline_s: Some(fleet.completion_percentile_s(1_000_000, 0.9)),
            in_flight: &in_flight,
            reliability: Some(&stats),
            departed: &[],
        };
        let before = fleet.derivations();
        let picked = policy.select(&ctx, &mut Rng64::new(7).derive(3));
        let derived = fleet.derivations() - before;
        assert!(
            derived <= 3 * D as u64,
            "{} derived {derived} profiles for a {D}-candidate pool — \
             selection cost must scale with candidates, not fleet size",
            policy.name()
        );
        assert_eq!(picked.len(), K, "{} returned a short sample", policy.name());
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), K, "{} returned duplicates", policy.name());
        assert!(
            sorted.iter().all(|&c| c < N),
            "{} selected out of range",
            policy.name()
        );
        let again = policy.select(&ctx, &mut Rng64::new(7).derive(3));
        assert_eq!(
            picked,
            again,
            "{} is nondeterministic under a fixed seed",
            policy.name()
        );
    }
}

/// Contract 6 (the `exp_scale` acceptance claim, pinned): a buffered run
/// over 10^5 clients completes full aggregation rounds while keeping its
/// per-client state proportional to the clients actually touched —
/// telemetry entries bounded by distinct dispatched clients, profile
/// derivations bounded by per-round consultations — never O(N).
#[test]
fn buffered_rounds_at_hundred_thousand_clients_stay_sparse() {
    const N: usize = 100_000;
    const K: usize = 64;
    let cfg = BufferedConfig {
        fleet: FleetConfig {
            compute_skew: 4.0,
            dropout: 0.1,
            seed: 0x5CA1E,
            ..Default::default()
        },
        buffer_size: 16,
        parallel_dispatch: true,
        ..Default::default()
    };
    let mut ex = BufferedExecutor::new(cfg, N, 1_000, K, 7);
    let master = Rng64::new(11);
    let mut distinct = std::collections::BTreeSet::new();
    let mut aggregations = 0usize;
    let rounds = 8usize;
    for round in 0..rounds {
        let selected = master.derive(round as u64).sample_indices(N, K);
        distinct.extend(selected.iter().copied());
        let out = ex.execute(round, &selected, &stub_train);
        if !out.updates.is_empty() {
            aggregations += 1;
            assert_eq!(out.updates.len(), 16, "partial aggregation");
        }
    }
    assert!(
        aggregations > 0,
        "10^5-client run never filled its aggregation buffer"
    );
    let stats = RoundExecutor::reliability(&ex).expect("buffered telemetry");
    assert!(
        stats.observed() <= distinct.len(),
        "{} resident telemetry entries for {} distinct dispatched clients",
        stats.observed(),
        distinct.len()
    );
    // Each dispatched client costs a bounded number of profile
    // derivations (completion-time lookups); nothing scans the fleet.
    let derived = RoundExecutor::fleet(&ex)
        .expect("buffered executor has a fleet")
        .derivations();
    assert!(
        derived <= (rounds * K * 4) as u64,
        "{derived} profiles derived for {} dispatch slots — the executor \
         must consult candidates only, never the whole fleet",
        rounds * K
    );
    assert!(
        derived < N as u64 / 10,
        "profile derivations ({derived}) approach fleet size ({N})"
    );
}
