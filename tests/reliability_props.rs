//! Property-based hardening of the per-device reliability model and the
//! reliability-aware selection loop.
//!
//! The reliability model owes the rest of the workspace three laws: rates
//! are *deterministic and stable under fleet growth* (client `i`'s device
//! never changes because the federation grew), *bounded* (every rate a
//! validated config can produce stays a probability below 1), and — under
//! full speed correlation — *monotone in slowness* (a slower device never
//! drops less, the arXiv:2507.10430 observation the model encodes). On
//! top sit the end-to-end promises of the two new policies, checked by
//! driving the executors directly with stub updates (no NN training):
//! `ReliabilityAware` cuts dropout-wasted dispatches, `StalenessBalanced`
//! rebalances the buffered executor's fast-client skew.

use feddrl_repro::prelude::*;
use proptest::prelude::*;

fn reliability_cfg(
    seed: u64,
    compute_skew: f64,
    dropout: f64,
    dropout_skew: f64,
    correlation: DropoutCorrelation,
) -> FleetConfig {
    FleetConfig {
        compute_skew,
        dropout,
        reliability: ReliabilityConfig {
            dropout_skew,
            correlation,
        },
        seed,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Profiles — dropout rates included — are identical across repeated
    /// generation, stable under fleet growth, and change with the seed.
    #[test]
    fn profiles_with_reliability_are_stable_under_growth_and_reseeding(
        seed in 0u64..1_000,
        compute_skew in 1.0f64..8.0,
        dropout in 0.0f64..0.3,
        dropout_skew in 1.0f64..3.0,
        strength in 0.0f64..1.0,
        correlated in 0u8..2,
    ) {
        let correlation = if correlated == 1 {
            DropoutCorrelation::SpeedCorrelated { strength }
        } else {
            DropoutCorrelation::Independent
        };
        // dropout < 0.3 and dropout_skew < 3 keep the product below 1,
        // so every generated config is valid by construction.
        let cfg = reliability_cfg(seed, compute_skew, dropout, dropout_skew, correlation);
        prop_assert!(cfg.validate().is_ok());
        let small = Fleet::generate(6, &cfg);
        let again = Fleet::generate(6, &cfg);
        let big = Fleet::generate(48, &cfg);
        for i in 0..6 {
            prop_assert_eq!(small.profile(i), again.profile(i), "regeneration drifted");
            prop_assert_eq!(
                small.profile(i), big.profile(i),
                "client {}'s device changed because the fleet grew", i
            );
        }
        let reseeded = Fleet::generate(6, &FleetConfig { seed: seed ^ 0x9E3779B9, ..cfg });
        prop_assert!(
            (0..6).any(|i| reseeded.profile(i) != small.profile(i)),
            "re-seeding left every profile untouched"
        );
    }

    /// Every validated config keeps every device's rate inside
    /// `[dropout / dropout_skew, dropout * dropout_skew] ⊂ [0, 1)`.
    #[test]
    fn per_device_rates_stay_bounded_probabilities(
        seed in 0u64..1_000,
        compute_skew in 1.0f64..8.0,
        dropout in 0.0f64..0.5,
        dropout_skew in 1.0f64..4.0,
        strength in 0.0f64..1.0,
        correlated in 0u8..2,
    ) {
        let correlation = if correlated == 1 {
            DropoutCorrelation::SpeedCorrelated { strength }
        } else {
            DropoutCorrelation::Independent
        };
        // Clamp the base rate so the spread stays below certainty — the
        // bound `validate` enforces.
        let dropout = dropout.min(0.99 / dropout_skew - 1e-9);
        let cfg = reliability_cfg(seed, compute_skew, dropout, dropout_skew, correlation);
        prop_assert!(cfg.validate().is_ok());
        let fleet = Fleet::generate(32, &cfg);
        let (lo, hi) = (dropout / dropout_skew, dropout * dropout_skew);
        for i in 0..32 {
            let d = fleet.profile(i).dropout;
            prop_assert!(
                (0.0..1.0).contains(&d),
                "client {}'s rate {} is not a probability", i, d
            );
            prop_assert!(
                d >= lo - 1e-12 && d <= hi + 1e-12,
                "client {}'s rate {} escaped [{}, {}]", i, d, lo, hi
            );
        }
    }

    /// Under full speed correlation, dropout is monotone in compute time:
    /// for any two devices, the slower one never drops less.
    #[test]
    fn full_speed_correlation_is_monotone_in_slowness(
        seed in 0u64..1_000,
        compute_skew in 1.0f64..8.0,
        dropout in 0.01f64..0.2,
        dropout_skew in 1.0f64..4.0,
    ) {
        let cfg = reliability_cfg(
            seed,
            compute_skew,
            dropout,
            dropout_skew,
            DropoutCorrelation::SpeedCorrelated { strength: 1.0 },
        );
        // dropout < 0.2 and dropout_skew < 4: the product stays below 1.
        prop_assert!(cfg.validate().is_ok());
        let fleet = Fleet::generate(24, &cfg);
        for a in 0..24 {
            for b in 0..24 {
                let (pa, pb) = (fleet.profile(a), fleet.profile(b));
                if pa.compute_s < pb.compute_s {
                    prop_assert!(
                        pa.dropout <= pb.dropout,
                        "faster device {} ({} s) drops more ({}) than slower {} ({} s, {})",
                        a, pa.compute_s, pa.dropout, b, pb.compute_s, pb.dropout
                    );
                }
            }
        }
    }

    /// Zero correlation strength is *exactly* the independent draw: the
    /// interpolation has no hidden effect at its endpoint.
    #[test]
    fn zero_strength_equals_independent(
        seed in 0u64..1_000,
        compute_skew in 1.0f64..8.0,
        dropout_skew in 1.0f64..4.0,
    ) {
        let indep = reliability_cfg(
            seed, compute_skew, 0.1, dropout_skew, DropoutCorrelation::Independent,
        );
        let zero = reliability_cfg(
            seed, compute_skew, 0.1, dropout_skew,
            DropoutCorrelation::SpeedCorrelated { strength: 0.0 },
        );
        prop_assert!(indep.validate().is_ok());
        prop_assert_eq!(Fleet::generate(16, &indep), Fleet::generate(16, &zero));
    }
}

/// A weightless update (policy/executor logic never reads the payload).
fn stub_update(client_id: usize) -> ClientUpdate {
    ClientUpdate {
        client_id,
        weights: vec![0.0; 4],
        n_samples: 10,
        loss_before: 1.0,
        loss_after: 0.5,
        staleness: 0,
        mask: None,
    }
}

fn stub_train(dispatches: &[Dispatch]) -> Vec<ClientUpdate> {
    dispatches
        .iter()
        .map(|d| stub_update(d.client_id))
        .collect()
}

/// Drive `rounds` rounds of `executor` under `policy`, mirroring the
/// session's selection bookkeeping (per-round derived RNG, known-loss and
/// participation updates, executor-fed in-flight set and telemetry), and
/// return the finished executor.
fn drive(
    ex: &mut dyn RoundExecutor,
    policy: &mut dyn SelectionPolicy,
    n: usize,
    k: usize,
    rounds: usize,
) -> Vec<RoundOutcome> {
    let master = Rng64::new(33);
    let mut known_loss: Vec<Option<f32>> = vec![None; n];
    let participation = vec![0usize; n];
    let mut outcomes = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let mut rng = master.derive(round as u64);
        let in_flight = ex.in_flight_clients();
        let selected = {
            let ctx = SelectionContext {
                round,
                n_clients: n,
                participants: k,
                known_loss: &known_loss,
                participation: &participation,
                fleet: ex.fleet(),
                upload_bytes: ex.upload_bytes(),
                deadline_s: ex.deadline_s(),
                in_flight: &in_flight,
                reliability: ex.reliability(),
                departed: &ex.departed_clients(),
            };
            policy.select(&ctx, &mut rng)
        };
        assert_eq!(selected.len(), k);
        let out = ex.execute(round, &selected, &stub_train);
        for u in &out.updates {
            known_loss[u.client_id] = Some(u.loss_before);
        }
        outcomes.push(out);
    }
    outcomes
}

/// Speed-correlated fleet every end-to-end law below runs on: 4x compute
/// skew, base dropout 0.25 spread 3x per device, slow devices flakiest.
fn correlated_fleet_cfg() -> FleetConfig {
    reliability_cfg(
        0xAB5EED,
        4.0,
        0.25,
        3.0,
        DropoutCorrelation::SpeedCorrelated { strength: 1.0 },
    )
}

/// Dropout-waste rate (failures per dispatch attempt) of a deadline run
/// under `policy` — the executor's own telemetry is the ground truth.
fn deadline_waste_rate(policy: &mut dyn SelectionPolicy, rounds: usize) -> f64 {
    const N: usize = 40;
    const K: usize = 6;
    let cfg = HeteroConfig {
        fleet: correlated_fleet_cfg(),
        deadline_s: None,
        late_policy: LatePolicy::Drop,
        ..Default::default()
    };
    let mut ex = DeadlineExecutor::new(cfg, N, 60_000, K, 9);
    drive(&mut ex, policy, N, K, rounds);
    let stats = RoundExecutor::reliability(&ex).expect("deadline telemetry");
    let dropouts: usize = stats.iter().map(|(_, s)| s.dropouts).sum();
    let dispatches: usize = stats.iter().map(|(_, s)| s.dispatches).sum();
    dropouts as f64 / (dropouts + dispatches) as f64
}

/// The ROADMAP promise behind `ReliabilityAware`: on a fleet whose flaky
/// devices are learnable from observation, expected-utility selection
/// wastes at least 2x fewer dispatches on dropouts than uniform sampling.
#[test]
fn reliability_aware_halves_dropout_waste_vs_uniform() {
    let rounds = 200;
    let uniform = deadline_waste_rate(&mut UniformSelection, rounds);
    let aware = deadline_waste_rate(&mut ReliabilityAwareSelection { candidates: 32 }, rounds);
    assert!(
        uniform > 0.15,
        "uniform waste rate {uniform:.3} implausibly low — dropout model misconfigured?"
    );
    assert!(
        aware * 2.0 <= uniform,
        "reliability-aware selection did not halve dropout waste: \
         {aware:.3} vs uniform's {uniform:.3}"
    );
}

/// The ROADMAP promise behind `StalenessBalanced`: under the buffered
/// executor on a skewed fleet, the slower half of the devices contributes
/// a larger share of the aggregated updates than under uniform sampling —
/// the fast-client skew is measurably rebalanced.
#[test]
fn staleness_balanced_rebalances_the_fast_client_skew() {
    // Dispatch slots are deliberately scarce (K = 4 of N = 40): with
    // abundant slots every device saturates and selection cannot matter;
    // with scarce ones the policy decides which devices stay busy.
    const N: usize = 40;
    const K: usize = 4;
    let rounds = 200;
    let slow_share = |policy: &mut dyn SelectionPolicy| -> f64 {
        let cfg = BufferedConfig {
            fleet: correlated_fleet_cfg(),
            buffer_size: 2,
            ..Default::default()
        };
        let mut ex = BufferedExecutor::new(cfg, N, 60_000, K, 9);
        let outcomes = drive(&mut ex, policy, N, K, rounds);
        let fleet = ex.fleet().clone();
        let mut order: Vec<usize> = (0..N).collect();
        order.sort_by(|&a, &b| {
            fleet
                .profile(a)
                .compute_s
                .total_cmp(&fleet.profile(b).compute_s)
        });
        let slow = &order[N / 2..];
        let (mut from_slow, mut total) = (0usize, 0usize);
        for out in &outcomes {
            for u in &out.updates {
                total += 1;
                from_slow += usize::from(slow.contains(&u.client_id));
            }
        }
        assert!(total > 0, "no aggregation ever fired");
        from_slow as f64 / total as f64
    };
    let uniform = slow_share(&mut UniformSelection);
    let balanced = slow_share(&mut StalenessBalancedSelection { candidates: 32 });
    assert!(
        uniform < 0.5,
        "uniform slow-share {uniform:.2} shows no fast-client skew to rebalance"
    );
    assert!(
        balanced > uniform + 0.1,
        "staleness-balanced selection did not rebalance the skew: \
         slow-share {balanced:.2} vs uniform's {uniform:.2}"
    );
}

/// The executor accounting identity behind every waste metric: sampled =
/// dropouts + dispatches + busy-skips, and telemetry totals agree with
/// the per-round records.
#[test]
fn telemetry_totals_close_against_round_records() {
    const N: usize = 24;
    const K: usize = 6;
    let cfg = BufferedConfig {
        fleet: correlated_fleet_cfg(),
        buffer_size: 3,
        ..Default::default()
    };
    let mut ex = BufferedExecutor::new(cfg, N, 60_000, K, 9);
    let rounds = 60;
    let outcomes = drive(&mut ex, &mut UniformSelection, N, K, rounds);
    let (mut rec_dropouts, mut rec_busy, mut rec_aggregated) = (0usize, 0usize, 0usize);
    for out in &outcomes {
        let h = out.hetero.as_ref().expect("buffered telemetry");
        rec_dropouts += h.dropouts;
        rec_busy += h.busy;
        rec_aggregated += h.aggregated();
    }
    let stats = RoundExecutor::reliability(&ex).unwrap();
    let dropouts: usize = stats.iter().map(|(_, s)| s.dropouts).sum();
    let dispatches: usize = stats.iter().map(|(_, s)| s.dispatches).sum();
    let aggregated: usize = stats.iter().map(|(_, s)| s.aggregated).sum();
    assert_eq!(dropouts, rec_dropouts);
    assert_eq!(aggregated, rec_aggregated);
    assert_eq!(
        dropouts + dispatches + rec_busy,
        rounds * K,
        "sampled-slot accounting must close"
    );
    // Dispatches either aggregated or are still in flight / buffered.
    assert_eq!(
        dispatches,
        aggregated + ex.in_flight() + ex.buffered(),
        "dispatch accounting must close"
    );
    // Mean staleness telemetry agrees with the recorded per-round ages.
    let stat_staleness: usize = stats.iter().map(|(_, s)| s.staleness_sum).sum();
    let rec_staleness: usize = outcomes
        .iter()
        .filter_map(|o| o.hetero.as_ref())
        .map(|h| h.staleness.iter().sum::<usize>())
        .sum();
    assert_eq!(stat_staleness, rec_staleness);
}
