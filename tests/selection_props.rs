//! Property-based hardening of the client-selection policies.
//!
//! Every policy — built-in or user-defined — owes the session the same
//! contract: exactly `K` distinct in-range client ids, deterministically
//! under a fixed seed. The bandwidth-aware policy additionally promises to
//! *reduce* deadline-cut stragglers against uniform sampling on a skewed
//! fleet, which is checked by driving the deadline executor directly
//! (stub updates, no NN training) so the comparison is cheap and exact.

use feddrl_repro::prelude::*;
use proptest::prelude::*;

/// A context owner: the borrowed `SelectionContext` views into it.
struct CtxData {
    n: usize,
    k: usize,
    known_loss: Vec<Option<f32>>,
    participation: Vec<usize>,
    fleet: Option<FleetView>,
    upload_bytes: u64,
    deadline_s: Option<f64>,
    in_flight: Vec<usize>,
    reliability: Option<ReliabilityTable>,
}

impl CtxData {
    /// Deterministically synthesize per-client state from a seed: a mix of
    /// seen/unseen losses, (optionally) a skewed fleet, a random in-flight
    /// subset no larger than `N - K` (the executor can never hold more in
    /// flight while still dispatching `K` fresh clients), and random
    /// reliability telemetry.
    fn synth(n: usize, k: usize, state_seed: u64, with_fleet: bool, bounded: bool) -> Self {
        let mut rng = Rng64::new(state_seed);
        let known_loss = (0..n)
            .map(|_| rng.chance(0.7).then(|| rng.uniform(0.05, 4.0)))
            .collect();
        let participation = (0..n).map(|_| rng.below(10)).collect();
        let fleet = with_fleet.then(|| {
            FleetView::new(
                n,
                &FleetConfig {
                    compute_skew: 4.0,
                    bandwidth_skew: 2.0,
                    seed: state_seed ^ 0xF1,
                    ..Default::default()
                },
            )
        });
        let upload_bytes = if with_fleet { 2_000_000 } else { 0 };
        let deadline_s = match (&fleet, bounded) {
            (Some(f), true) => Some(f.completion_percentile_s(upload_bytes, 0.5)),
            _ => None,
        };
        let in_flight_len = rng.below(n - k + 1);
        let in_flight = rng.sample_indices(n, in_flight_len);
        let reliability = with_fleet.then(|| {
            (0..n)
                .map(|i| {
                    let dropouts = rng.below(8);
                    let dispatches = rng.below(8);
                    (
                        i,
                        ClientReliability {
                            dropouts,
                            dispatches,
                            aggregated: dispatches,
                            staleness_sum: rng.below(4) * dispatches,
                        },
                    )
                })
                .collect::<ReliabilityTable>()
        });
        Self {
            n,
            k,
            known_loss,
            participation,
            fleet,
            upload_bytes,
            deadline_s,
            in_flight,
            reliability,
        }
    }

    fn ctx(&self, round: usize) -> SelectionContext<'_> {
        SelectionContext {
            round,
            n_clients: self.n,
            participants: self.k,
            known_loss: &self.known_loss,
            participation: &self.participation,
            fleet: self.fleet.as_ref(),
            upload_bytes: self.upload_bytes,
            deadline_s: self.deadline_s,
            in_flight: &self.in_flight,
            reliability: self.reliability.as_ref(),
            departed: &[],
        }
    }
}

fn all_policies(candidates: usize) -> Vec<Box<dyn SelectionPolicy>> {
    vec![
        Selection::Uniform.build(),
        Selection::PowerOfChoice { candidates }.build(),
        Selection::BandwidthAware { candidates }.build(),
        Selection::ReliabilityAware { candidates }.build(),
        Selection::StalenessBalanced { candidates }.build(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Contract: every built-in policy returns exactly `K` distinct ids in
    /// `[0, N)`, for arbitrary federation shapes, candidate pools, seeds,
    /// per-client state, and fleet visibility — and repeating the call
    /// with an identical RNG reproduces the identical sample.
    #[test]
    fn policies_return_k_distinct_in_range_deterministically(
        n in 1usize..40,
        k_frac in 0.0f64..1.0,
        candidates in 0usize..64,
        seed in 0u64..1_000,
        state_seed in 0u64..1_000,
        with_fleet in 0u8..2,
        bounded in 0u8..2,
    ) {
        let (with_fleet, bounded) = (with_fleet == 1, bounded == 1);
        let k = ((n as f64 * k_frac) as usize).clamp(1, n);
        let data = CtxData::synth(n, k, state_seed, with_fleet, bounded);
        for mut policy in all_policies(candidates) {
            let ctx = data.ctx(0);
            let picked = policy.select(&ctx, &mut Rng64::new(seed).derive(0));
            prop_assert_eq!(
                picked.len(), k,
                "{} returned {} of {} clients", policy.name(), picked.len(), k
            );
            let mut sorted = picked.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), k, "{} returned duplicates", policy.name());
            prop_assert!(
                sorted.iter().all(|&c| c < n),
                "{} selected out-of-range client", policy.name()
            );
            let again = policy.select(&ctx, &mut Rng64::new(seed).derive(0));
            prop_assert_eq!(
                &picked, &again,
                "{} is nondeterministic under a fixed seed", policy.name()
            );
        }
    }
}

/// Drive `rounds` deadline-executor rounds with `policy`, mirroring the
/// session's selection bookkeeping (per-round derived RNG, known-loss and
/// participation updates), and return the total deadline-cut stragglers.
fn stragglers_under(policy: &mut dyn SelectionPolicy, rounds: usize) -> usize {
    const N: usize = 24;
    const K: usize = 6;
    let cfg = HeteroConfig {
        fleet: FleetConfig {
            compute_skew: 4.0,
            bandwidth_skew: 2.0,
            seed: 0xBEEF,
            ..Default::default()
        },
        deadline_s: None, // placed below from the fleet's 50th percentile
        late_policy: LatePolicy::Drop,
        ..Default::default()
    };
    let probe = DeadlineExecutor::new(cfg.clone(), N, 60_000, K, 9);
    let deadline = probe
        .fleet()
        .completion_percentile_s(probe.upload_bytes(), 0.5);
    let mut ex = DeadlineExecutor::new(
        HeteroConfig {
            deadline_s: Some(deadline),
            ..cfg
        },
        N,
        60_000,
        K,
        9,
    );
    let stub_train = |dispatches: &[Dispatch]| -> Vec<ClientUpdate> {
        dispatches
            .iter()
            .map(|&Dispatch { client_id, .. }| ClientUpdate {
                client_id,
                weights: vec![0.0; 4],
                n_samples: 10,
                loss_before: 1.0,
                loss_after: 0.5,
                staleness: 0,
                mask: None,
            })
            .collect()
    };
    let master = Rng64::new(21);
    let mut known_loss: Vec<Option<f32>> = vec![None; N];
    let mut participation = vec![0usize; N];
    let mut stragglers = 0usize;
    for round in 0..rounds {
        let mut rng = master.derive(round as u64);
        let in_flight = RoundExecutor::in_flight_clients(&ex);
        let selected = {
            let ctx = SelectionContext {
                round,
                n_clients: N,
                participants: K,
                known_loss: &known_loss,
                participation: &participation,
                fleet: RoundExecutor::fleet(&ex),
                upload_bytes: RoundExecutor::upload_bytes(&ex),
                deadline_s: RoundExecutor::deadline_s(&ex),
                in_flight: &in_flight,
                reliability: RoundExecutor::reliability(&ex),
                departed: &RoundExecutor::departed_clients(&ex),
            };
            policy.select(&ctx, &mut rng)
        };
        assert_eq!(selected.len(), K);
        for &c in &selected {
            participation[c] += 1;
        }
        let out = ex.execute(round, &selected, &stub_train);
        stragglers += out.hetero.expect("deadline telemetry").stragglers;
        for u in &out.updates {
            known_loss[u.client_id] = Some(u.loss_before);
        }
    }
    stragglers
}

/// The ROADMAP promise behind `BandwidthAware`: on a skewed fleet with a
/// median deadline it stops sampling clients the deadline would cut,
/// measurably beating uniform selection on total stragglers.
#[test]
fn bandwidth_aware_reduces_deadline_cut_stragglers_vs_uniform() {
    let rounds = 40;
    let uniform = stragglers_under(&mut UniformSelection, rounds);
    let aware = stragglers_under(&mut BandwidthAwareSelection { candidates: 18 }, rounds);
    // A median deadline cuts ~half of uniform's samples; the aware policy
    // must do strictly — and substantially — better.
    assert!(
        uniform >= rounds,
        "uniform produced implausibly few stragglers ({uniform}) — deadline misplaced?"
    );
    assert!(
        aware * 2 < uniform,
        "bandwidth-aware selection did not measurably reduce stragglers: \
         {aware} vs uniform's {uniform}"
    );
}
