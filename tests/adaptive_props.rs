//! Property suite for the server-optimizer layer.
//!
//! Four promises, checked at the workspace boundary: (1) the default
//! `ServerOptConfig::Plain` — and a legacy config JSON with the field
//! absent — reproduces the committed golden fixture byte-for-byte, so
//! the optimizer layer is invisible until opted into; (2) adaptive
//! optimizer state (first/second moments) persists across `step()`
//! exactly as across `run()`; (3) the config round-trips through JSON,
//! with `Plain` leaving the serialized shape untouched; (4) degenerate
//! hyper-parameters surface as typed `FlError::InvalidServerOpt` from
//! both `FlConfig::validate` and the builder. The update formulas
//! themselves are pinned against straight-line reference implementations
//! here and in `crates/fl/src/server_opt.rs`'s unit tests.

use feddrl_repro::prelude::*;

mod common;
use common::{golden_json, scrubbed_json};

/// The golden fixture's environment (must match `server_props`).
fn golden_setup() -> (ModelSpec, Dataset, Dataset, Partition, FlConfig) {
    let (train, test) = SynthSpec {
        train_size: 600,
        test_size: 150,
        ..SynthSpec::mnist_like()
    }
    .generate(5);
    let partition = PartitionMethod::ce(0.6)
        .partition(&train, 6, &mut Rng64::new(9))
        .unwrap();
    let spec = ModelSpec::Mlp {
        in_dim: train.feature_dim(),
        hidden: vec![16],
        out_dim: train.num_classes(),
    };
    let cfg = FlConfig {
        rounds: 3,
        participants: 5,
        local: LocalTrainConfig {
            epochs: 1,
            batch_size: 16,
            lr: 0.05,
            ..Default::default()
        },
        eval_batch: 64,
        seed: 77,
        log_every: 0,
        selection: Selection::Uniform,
        executor: ExecutorConfig::Ideal,
        server_opt: ServerOptConfig::Plain,
    };
    (spec, train, test, partition, cfg)
}

fn golden_fixture() -> String {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/ideal_history.json"
    );
    std::fs::read_to_string(path).expect("read golden fixture")
}

/// Degenerate-config reduction: an explicit `.server_opt(Plain)` through
/// the builder reproduces the pre-optimizer golden fixture byte-for-byte.
/// `Plain` is structural (its `apply` returns the aggregate untouched),
/// so this holds exactly, not approximately.
#[test]
fn plain_reproduces_the_golden_fixture() {
    let (spec, train, test, partition, cfg) = golden_setup();
    let mut strategy = FedAvg;
    let history = SessionBuilder::new(&spec, &train, &test, &partition, &mut strategy)
        .config(&cfg)
        .server_opt(ServerOptConfig::Plain)
        .build()
        .expect("golden config is valid")
        .run()
        .expect("golden run");
    assert_eq!(
        golden_json(history),
        golden_fixture(),
        "Plain server optimizer diverged from the replacement path"
    );
}

/// A config JSON written before the field existed deserializes to
/// `Plain` and reproduces the golden fixture — old experiment configs
/// keep their meaning, bit for bit.
#[test]
fn legacy_config_json_without_the_field_reduces_to_plain() {
    let (spec, train, test, partition, cfg) = golden_setup();
    // The golden config exactly as serde serialized it before the
    // `server_opt` field existed.
    let legacy = r#"{
        "rounds": 3,
        "participants": 5,
        "local": {
            "epochs": 1,
            "batch_size": 16,
            "lr": 0.05,
            "momentum": 0.0,
            "proximal_mu": null,
            "clip_norm": null
        },
        "eval_batch": 64,
        "seed": 77,
        "log_every": 0,
        "selection": "Uniform",
        "executor": "Ideal"
    }"#;
    let parsed: FlConfig = serde_json::from_str(legacy).expect("legacy config parses");
    assert_eq!(parsed.server_opt, ServerOptConfig::Plain);
    assert_eq!(parsed, cfg, "legacy JSON must mean the golden config");
    let mut strategy = FedAvg;
    let history = SessionBuilder::new(&spec, &train, &test, &partition, &mut strategy)
        .config(&parsed)
        .build()
        .expect("valid config")
        .run()
        .expect("run");
    assert_eq!(
        golden_json(history),
        golden_fixture(),
        "a legacy config must reproduce the golden fixture byte-for-byte"
    );
}

/// `Plain` keeps the serialized config shape untouched (the field is
/// skipped), every adaptive variant round-trips losslessly, and a
/// serialized adaptive config deserializes back to itself.
#[test]
fn config_json_round_trips_and_plain_stays_invisible() {
    let (_, _, _, _, cfg) = golden_setup();
    let plain_json = serde_json::to_string_pretty(&cfg).expect("serialize");
    assert!(
        !plain_json.contains("server_opt"),
        "Plain must be skipped so legacy JSON keeps its shape:\n{plain_json}"
    );
    let back: FlConfig = serde_json::from_str(&plain_json).expect("parse");
    assert_eq!(back, cfg);

    let params = AdaptiveParams {
        lr: 0.25,
        beta1: 0.8,
        beta2: 0.95,
        tau: 1e-4,
    };
    for server_opt in [
        ServerOptConfig::FedAdam(params),
        ServerOptConfig::FedYogi(params),
        ServerOptConfig::FedAMSGrad(params),
    ] {
        let mut adaptive = cfg.clone();
        adaptive.server_opt = server_opt;
        let json = serde_json::to_string_pretty(&adaptive).expect("serialize");
        assert!(
            json.contains("server_opt"),
            "{} must be serialized",
            server_opt.name()
        );
        let back: FlConfig = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, adaptive, "{} round-trip", server_opt.name());
    }
}

/// Optimizer-state persistence: driving a FedAdam (and FedYogi) session
/// one round at a time via `step()` yields byte-for-byte the history
/// `run()` does. The second round's step depends on the first round's
/// moments, so the equivalence proves the state is carried in the
/// session, not reset per round.
#[test]
fn step_by_step_equals_run_with_adaptive_state() {
    let (spec, train, test, partition, base_cfg) = golden_setup();
    for server_opt in [
        ServerOptConfig::FedAdam(AdaptiveParams::default()),
        ServerOptConfig::FedYogi(AdaptiveParams::default()),
    ] {
        let mut cfg = base_cfg.clone();
        cfg.server_opt = server_opt;

        let mut s1 = FedAvg;
        let whole = SessionBuilder::new(&spec, &train, &test, &partition, &mut s1)
            .config(&cfg)
            .build()
            .expect("valid config")
            .run()
            .expect("run");

        let mut s2 = FedAvg;
        let mut session = SessionBuilder::new(&spec, &train, &test, &partition, &mut s2)
            .config(&cfg)
            .build()
            .expect("valid config");
        while session.step().expect("step").is_some() {}
        let stepped = session.into_history();

        assert_eq!(
            scrubbed_json(whole),
            scrubbed_json(stepped),
            "{}: step() and run() histories diverged",
            server_opt.name()
        );
    }
}

/// The adaptive optimizers actually change the trajectory (they are not
/// accidentally `Plain`), and different families diverge from each other.
#[test]
fn adaptive_histories_diverge_from_plain() {
    let (spec, train, test, partition, base_cfg) = golden_setup();
    let mut histories = Vec::new();
    for server_opt in [
        ServerOptConfig::Plain,
        ServerOptConfig::FedAdam(AdaptiveParams::default()),
    ] {
        let mut cfg = base_cfg.clone();
        cfg.server_opt = server_opt;
        let mut strategy = FedAvg;
        let history = SessionBuilder::new(&spec, &train, &test, &partition, &mut strategy)
            .config(&cfg)
            .build()
            .expect("valid config")
            .run()
            .expect("run");
        histories.push(scrubbed_json(history));
    }
    assert_ne!(
        histories[0], histories[1],
        "FedAdam must not silently reduce to the replacement path"
    );
}

/// Multi-round cross-check of all three update rules against
/// straight-line reference implementations at the public `ServerOpt`
/// boundary — bitwise, over a pseudo-random trajectory.
#[test]
fn optimizers_match_straightline_references() {
    let p = AdaptiveParams {
        lr: 0.3,
        beta1: 0.9,
        beta2: 0.97,
        tau: 1e-3,
    };
    let dim = 64;
    for cfg in [
        ServerOptConfig::FedAdam(p),
        ServerOptConfig::FedYogi(p),
        ServerOptConfig::FedAMSGrad(p),
    ] {
        let mut opt = cfg.build();
        let mut rng = Rng64::new(0xADA);
        let mut global: Vec<f32> = (0..dim).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let (mut m, mut v, mut vmax) = (vec![0.0f64; dim], vec![0.0f64; dim], vec![0.0f64; dim]);
        for round in 0..5 {
            let aggregate: Vec<f32> = global.iter().map(|&w| w + rng.uniform(-0.5, 0.5)).collect();
            let got = opt.apply(&global, aggregate.clone());
            // Straight-line reference, all math in f64.
            let mut want = vec![0.0f32; dim];
            for i in 0..dim {
                let delta = aggregate[i] as f64 - global[i] as f64;
                m[i] = p.beta1 * m[i] + (1.0 - p.beta1) * delta;
                let d2 = delta * delta;
                v[i] = match cfg {
                    ServerOptConfig::FedYogi(_) => {
                        v[i] - (1.0 - p.beta2) * d2 * (v[i] - d2).signum()
                    }
                    _ => p.beta2 * v[i] + (1.0 - p.beta2) * d2,
                };
                let denom_v = if matches!(cfg, ServerOptConfig::FedAMSGrad(_)) {
                    vmax[i] = vmax[i].max(v[i]);
                    vmax[i]
                } else {
                    v[i]
                };
                want[i] = (global[i] as f64 + p.lr * m[i] / (denom_v.sqrt() + p.tau)) as f32;
            }
            let got_bits: Vec<u32> = got.iter().map(|w| w.to_bits()).collect();
            let want_bits: Vec<u32> = want.iter().map(|w| w.to_bits()).collect();
            assert_eq!(
                got_bits,
                want_bits,
                "{} diverged from the reference at round {round}",
                cfg.name()
            );
            global = got;
        }
    }
}

/// Degenerate hyper-parameters come back as typed
/// `FlError::InvalidServerOpt` — from `FlConfig::validate` and from the
/// builder, before any training compute is spent.
#[test]
fn degenerate_params_surface_as_typed_errors() {
    let (spec, train, test, partition, base_cfg) = golden_setup();
    let bad_cases = [
        AdaptiveParams {
            lr: 0.0,
            ..AdaptiveParams::default()
        },
        AdaptiveParams {
            lr: f64::INFINITY,
            ..AdaptiveParams::default()
        },
        AdaptiveParams {
            tau: 0.0,
            ..AdaptiveParams::default()
        },
        AdaptiveParams {
            beta1: 1.0,
            ..AdaptiveParams::default()
        },
        AdaptiveParams {
            beta2: f64::NAN,
            ..AdaptiveParams::default()
        },
    ];
    for params in bad_cases {
        let mut cfg = base_cfg.clone();
        cfg.server_opt = ServerOptConfig::FedAdam(params);
        let err = cfg.validate(6).expect_err("validate must reject");
        assert!(
            matches!(err, FlError::InvalidServerOpt { .. }),
            "wrong error for {params:?}: {err:?}"
        );
        let mut strategy = FedAvg;
        let err = SessionBuilder::new(&spec, &train, &test, &partition, &mut strategy)
            .config(&cfg)
            .build()
            .err()
            .expect("builder must reject");
        assert!(
            matches!(err, FlError::InvalidServerOpt { .. }),
            "builder passed through {params:?}: {err:?}"
        );
    }
}
