//! Property-based tests of the numeric substrate: tensor algebra laws,
//! softmax/simplex invariants, and model flat-parameter roundtrips.

use feddrl_repro::prelude::*;
use proptest::prelude::*;

fn arb_vec(len: usize) -> impl proptest::strategy::Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// softmax output is always a probability simplex point, regardless of
    /// input scale.
    #[test]
    fn softmax_is_on_simplex(xs in proptest::collection::vec(-100.0f32..100.0, 1..32)) {
        let s = softmax(&xs);
        prop_assert_eq!(s.len(), xs.len());
        let sum: f32 = s.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(s.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// softmax is shift-invariant: softmax(x) == softmax(x + c).
    #[test]
    fn softmax_shift_invariant(xs in proptest::collection::vec(-5.0f32..5.0, 2..16), c in -10.0f32..10.0) {
        let a = softmax(&xs);
        let shifted: Vec<f32> = xs.iter().map(|&x| x + c).collect();
        let b = softmax(&shifted);
        for (pa, pb) in a.iter().zip(b.iter()) {
            prop_assert!((pa - pb).abs() < 1e-4);
        }
    }

    /// Matmul distributes over addition: (A+B)C == AC + BC.
    #[test]
    fn matmul_distributes(seed in 0u64..500) {
        let mut rng = Rng64::new(seed);
        let a = Tensor::randn(&[4, 5], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[4, 5], 0.0, 1.0, &mut rng);
        let c = Tensor::randn(&[5, 3], 0.0, 1.0, &mut rng);
        let lhs = a.add(&b).matmul(&c);
        let mut rhs = a.matmul(&c);
        rhs.add_assign(&b.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Transpose reverses matmul: (AB)^T == B^T A^T.
    #[test]
    fn matmul_transpose_law(seed in 0u64..500) {
        let mut rng = Rng64::new(seed);
        let a = Tensor::randn(&[3, 4], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[4, 2], 0.0, 1.0, &mut rng);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Flat-parameter export/import is the identity on models.
    #[test]
    fn flat_params_roundtrip(seed in 0u64..500) {
        let spec = ModelSpec::Mlp { in_dim: 6, hidden: vec![8, 8], out_dim: 4 };
        let model = spec.build(seed);
        let flat = model.flat_params();
        let mut other = spec.build(seed.wrapping_add(1));
        other.set_flat_params(&flat);
        prop_assert_eq!(other.flat_params(), flat);
    }

    /// Weighted aggregation with simplex weights is a convex combination:
    /// the result is bounded by the per-coordinate min/max of the inputs.
    #[test]
    fn aggregation_is_convex(
        w1 in arb_vec(16),
        w2 in arb_vec(16),
        alpha in 0.0f32..1.0,
    ) {
        let alphas = vec![alpha, 1.0 - alpha];
        let out = weighted_average(&[w1.as_slice(), w2.as_slice()], &alphas);
        for ((o, a), b) in out.iter().zip(w1.iter()).zip(w2.iter()) {
            let lo = a.min(*b) - 1e-4;
            let hi = a.max(*b) + 1e-4;
            prop_assert!((lo..=hi).contains(o), "{o} outside [{lo}, {hi}]");
        }
    }

    /// normalize_factors always lands on the simplex for positive inputs.
    #[test]
    fn normalize_factors_simplex(raw in proptest::collection::vec(0.001f32..1000.0, 1..20)) {
        let alpha = normalize_factors(&raw);
        let sum: f32 = alpha.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
    }

    /// The reward is monotone: uniformly lower losses never reduce it.
    #[test]
    fn reward_monotone_in_losses(
        losses in proptest::collection::vec(0.1f32..5.0, 2..10),
        drop in 0.01f32..0.09,
    ) {
        let better: Vec<f32> = losses.iter().map(|&l| l - drop).collect();
        let r_before = reward_from_losses(&losses, 1.0);
        let r_after = reward_from_losses(&better, 1.0);
        prop_assert!(r_after >= r_before, "uniform improvement lowered reward");
    }

    /// Impact factors sampled from any valid (mu, sigma) action are a
    /// probability distribution.
    #[test]
    fn sampled_impact_factors_valid(
        mus in proptest::collection::vec(-1.0f32..1.0, 2..8),
        seed in 0u64..300,
    ) {
        let k = mus.len();
        let mut action = mus.clone();
        action.extend(std::iter::repeat_n(0.05f32, k));
        let mut rng = Rng64::new(seed);
        let alpha = sample_impact_factors(&action, &mut rng);
        prop_assert_eq!(alpha.len(), k);
        let sum: f32 = alpha.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
    }
}
