//! Integration contract of the networked runtime (`feddrl_net`).
//!
//! Four promises, checked at the workspace boundary: (1) the frame codec
//! round-trips every message kind bit-exactly and rejects malformed
//! input with *typed* errors (property-based); (2) a client that goes
//! silent past the liveness TTL surfaces as a departure through the same
//! `RoundExecutor::departed_clients` channel the simulator's churn uses;
//! (3) — the headline law — a `NetworkExecutor` round-barrier run over
//! loopback sockets with a deterministic stub trainer reproduces the
//! `IdealExecutor`'s `RunHistory` **byte-identically** (timings
//! scrubbed), proving the transport adds no behavior; (4) the buffered
//! mode measures real staleness on late arrivals.

use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use feddrl_repro::prelude::*;
use proptest::prelude::*;
// Both glob imports export a `Strategy` trait (ours vs proptest's);
// re-import proptest's unambiguously for method resolution.
use proptest::strategy::Strategy as PropStrategy;

mod common;
use common::scrubbed_json;

// ---------------------------------------------------------------------------
// Codec laws (property-based)
// ---------------------------------------------------------------------------

/// Weights including the awkward citizens: NaN, infinities, signed zero.
fn arb_weights() -> impl PropStrategy<Value = Vec<f32>> {
    proptest::collection::vec(
        prop_oneof![
            (-1.0e6f32..1.0e6).boxed(),
            Just(f32::NAN).boxed(),
            Just(f32::INFINITY).boxed(),
            Just(f32::NEG_INFINITY).boxed(),
            Just(-0.0f32).boxed(),
        ],
        0..48,
    )
}

fn arb_message() -> impl PropStrategy<Value = Message> {
    prop_oneof![
        (0u64..1 << 40).prop_map(|client_id| Message::Hello { client_id }),
        (0u64..1 << 40, arb_weights())
            .prop_map(|(version, weights)| Message::ModelPublish { version, weights }),
        (0u64..10_000, 0.0f64..=1.0)
            .prop_map(|(round, keep_ratio)| Message::TrainRequest { round, keep_ratio }),
        (
            (0u64..1000, 0u64..1000, 0u64..1000, 0u64..64),
            (0u64..1 << 30, -10.0f32..10.0, -10.0f32..10.0),
            arb_weights(),
        )
            .prop_map(
                |((client_id, round, model_version, staleness), (n, lb, la), weights)| {
                    Message::Update(UpdateMsg {
                        client_id,
                        round,
                        model_version,
                        staleness,
                        n_samples: n,
                        loss_before: lb,
                        loss_after: la,
                        weights,
                    })
                }
            ),
        (0u64..1 << 40).prop_map(|client_id| Message::Heartbeat { client_id }),
        (0u64..1 << 40).prop_map(|client_id| Message::Bye { client_id }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode is the identity on the *encoding*: comparing
    /// re-encoded bytes makes the law hold through NaN payloads, where
    /// `PartialEq` on the message itself would be vacuously false.
    #[test]
    fn codec_round_trips_every_kind_bit_exactly(msg in arb_message()) {
        let bytes = msg.encode();
        let (decoded, consumed) = Message::decode(&bytes).expect("decode own encoding");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(decoded.encode(), bytes);
    }

    /// Every proper prefix of a frame is rejected as `Truncated` — never
    /// a panic, never a bogus success, never a misdecode.
    #[test]
    fn truncated_frames_fail_typed(msg in arb_message(), cut in 0.0f64..1.0) {
        let bytes = msg.encode();
        let keep = ((bytes.len() as f64) * cut) as usize; // < len: proper prefix
        match Message::decode(&bytes[..keep]) {
            Err(WireError::Truncated { needed, got }) => {
                prop_assert_eq!(got, keep);
                prop_assert!(needed > got);
            }
            other => panic!("prefix of {keep}/{} bytes gave {other:?}", bytes.len()),
        }
    }

    /// A header advertising more payload than `MAX_PAYLOAD` is rejected
    /// as `Oversized` before any allocation happens.
    #[test]
    fn oversized_frames_fail_typed(extra in 1u64..1 << 30) {
        let len = (MAX_PAYLOAD as u64 + extra).min(u32::MAX as u64) as u32;
        let mut frame = Vec::new();
        frame.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        frame.push(PROTOCOL_VERSION);
        frame.push(5); // Heartbeat kind
        frame.extend_from_slice(&len.to_le_bytes());
        match Message::decode(&frame) {
            Err(WireError::Oversized { len: l, max }) => {
                prop_assert_eq!(l, len as usize);
                prop_assert_eq!(max, MAX_PAYLOAD);
            }
            other => panic!("oversized header gave {other:?}"),
        }
    }

    /// Corrupting the magic or version byte fails with the matching
    /// typed error, whatever the payload.
    #[test]
    fn bad_magic_and_version_fail_typed(msg in arb_message(), twiddle in 1u8..255) {
        let mut bytes = msg.encode();
        bytes[0] ^= twiddle;
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::BadMagic { .. })
        ));
        let mut bytes = msg.encode();
        bytes[2] ^= twiddle;
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::UnsupportedVersion { .. })
        ));
    }
}

// ---------------------------------------------------------------------------
// Liveness TTL → departure
// ---------------------------------------------------------------------------

/// A client silent past the TTL departs through the executor's
/// `departed_clients` — the same channel the simulator's churn feeds —
/// while a heartbeating client stays live.
#[test]
fn ttl_expiry_surfaces_as_departure_through_the_executor() {
    let server = NetServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            ttl: Duration::from_millis(100),
        },
    )
    .expect("bind");
    let addr = server.local_addr().to_string();

    // Client 1 heartbeats properly via the real worker loop...
    let worker_cfg = ClientConfig::new(addr.clone(), 1).with_heartbeat(Duration::from_millis(25));
    let worker = thread::spawn(move || {
        run_client(&worker_cfg, |_, _| ClientUpdate {
            client_id: 1,
            weights: vec![],
            n_samples: 1,
            loss_before: 0.0,
            loss_after: 0.0,
            staleness: 0,
            mask: None,
        })
    });
    // ...client 3 says Hello once and then goes silent forever.
    let mut silent = TcpStream::connect(&addr).expect("connect");
    write_frame(&mut silent, &Message::Hello { client_id: 3 }).expect("hello");

    server
        .wait_for_clients(2, Duration::from_secs(5))
        .expect("both subscribed");
    let executor = NetworkExecutor::barrier(server);
    assert!(executor.departed_clients().is_empty(), "everyone fresh");

    thread::sleep(Duration::from_millis(300));
    let deadline = Instant::now() + Duration::from_secs(5);
    while executor.departed_clients().is_empty() && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(executor.departed_clients(), vec![3], "silence departs");
    assert!(executor.server().is_live(1), "heartbeats keep 1 live");

    drop(executor); // shutdown → Bye → worker exits
    worker.join().expect("no panic").expect("clean exit");
}

// ---------------------------------------------------------------------------
// Headline law: loopback byte-identity with the ideal executor
// ---------------------------------------------------------------------------

const NET_CLIENTS: usize = 5;

/// The deterministic stand-in for local training, computed identically
/// by the in-process ideal run and by every networked worker: a pure
/// function of (round, client id, published global weights).
fn stub_update(round: usize, client_id: usize, global: &[f32]) -> ClientUpdate {
    let scale = 0.9 - 0.05 * client_id as f32;
    let bias = 0.01 * (round as f32 + 1.0) + 0.001 * client_id as f32;
    ClientUpdate {
        client_id,
        weights: global
            .iter()
            .enumerate()
            .map(|(i, w)| w * scale + bias * ((i % 7) as f32 - 3.0))
            .collect(),
        n_samples: 10 + 3 * client_id,
        loss_before: 1.0 + 0.25 * round as f32 + 0.01 * client_id as f32,
        loss_after: 0.5 + 0.01 * client_id as f32,
        staleness: 0,
        mask: None,
    }
}

fn net_env() -> (ModelSpec, Dataset, Dataset, Partition, FlConfig) {
    let (train, test) = SynthSpec {
        train_size: 300,
        test_size: 80,
        ..SynthSpec::mnist_like()
    }
    .generate(12);
    let partition = PartitionMethod::Iid
        .partition(&train, NET_CLIENTS, &mut Rng64::new(4))
        .unwrap();
    let spec = ModelSpec::Mlp {
        in_dim: train.feature_dim(),
        hidden: vec![8],
        out_dim: train.num_classes(),
    };
    let cfg = FlConfig {
        rounds: 3,
        participants: 3,
        local: LocalTrainConfig {
            epochs: 1,
            batch_size: 16,
            lr: 0.05,
            ..Default::default()
        },
        eval_batch: 64,
        seed: 41,
        log_every: 0,
        selection: Selection::Uniform,
        executor: ExecutorConfig::Ideal,
        server_opt: ServerOptConfig::Plain,
    };
    (spec, train, test, partition, cfg)
}

/// The tentpole law: with every worker live, a `NetworkExecutor` barrier
/// run over real loopback sockets reproduces the `IdealExecutor`'s
/// history byte-for-byte — same selections, same aggregations, same
/// `f32` bits — because updates cross the wire bit-exactly and are
/// reassembled into sampling order. The transport is pure plumbing.
#[test]
fn loopback_barrier_run_is_byte_identical_to_ideal() {
    let (spec, train, test, partition, cfg) = net_env();

    // In-process reference: the ideal executor driven by the stub.
    let ideal_history = {
        let mut strategy = FedAvg;
        SessionBuilder::new(&spec, &train, &test, &partition, &mut strategy)
            .config(&cfg)
            .train_fn(Box::new(|ctx, dispatches| {
                dispatches
                    .iter()
                    .map(|d| stub_update(ctx.round, d.client_id, ctx.global))
                    .collect()
            }))
            .build()
            .expect("valid config")
            .run()
            .expect("ideal run")
    };

    // Networked run: one worker thread per client, each computing the
    // same stub from the frames it receives.
    let server = NetServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let workers: Vec<_> = (0..NET_CLIENTS)
        .map(|cid| {
            let worker_cfg = ClientConfig::new(addr.clone(), cid);
            thread::spawn(move || {
                run_client(&worker_cfg, move |order, global| {
                    stub_update(order.round as usize, cid, global)
                })
            })
        })
        .collect();
    server
        .wait_for_clients(NET_CLIENTS, Duration::from_secs(10))
        .expect("all workers subscribed");

    let net_history = {
        let executor = NetworkExecutor::barrier(server);
        let telemetry = executor.telemetry();
        let mut strategy = FedAvg;
        let history = SessionBuilder::new(&spec, &train, &test, &partition, &mut strategy)
            .config(&cfg)
            .executor_instance(Box::new(executor))
            .build()
            .expect("valid config")
            .run()
            .expect("networked run");
        let t = telemetry.lock();
        assert_eq!(
            t.dispatched,
            cfg.rounds * cfg.participants,
            "every sampled client was dispatched over the wire"
        );
        assert_eq!(t.failed_dispatches, 0);
        assert_eq!(t.timed_out, 0);
        assert!(t.staleness.iter().all(|&s| s == 0), "barrier is fresh");
        assert!(t.p50_rtt_ms() > 0.0, "RTTs were actually measured");
        history
    }; // session (and with it the server) drops here → workers get Bye

    for w in workers {
        w.join().expect("no panic").expect("clean worker exit");
    }

    assert_eq!(
        scrubbed_json(net_history),
        scrubbed_json(ideal_history),
        "loopback barrier run diverged from the ideal executor"
    );
}

// ---------------------------------------------------------------------------
// Buffered mode measures staleness
// ---------------------------------------------------------------------------

/// With a deliberately slow worker and `buffer_size = 1`, the slow
/// worker's answer aggregates one version late — and the executor
/// *measures* that staleness off the wire instead of simulating it.
#[test]
fn buffered_mode_measures_staleness_of_late_arrivals() {
    let server = NetServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let workers: Vec<_> = [(0usize, 0u64), (1usize, 400u64)]
        .into_iter()
        .map(|(cid, delay_ms)| {
            let worker_cfg = ClientConfig::new(addr.clone(), cid)
                .with_train_delay(Duration::from_millis(delay_ms));
            thread::spawn(move || {
                run_client(&worker_cfg, move |order, global| {
                    stub_update(order.round as usize, cid, global)
                })
            })
        })
        .collect();
    server
        .wait_for_clients(2, Duration::from_secs(10))
        .expect("both subscribed");

    let mut executor =
        NetworkExecutor::buffered(server, 1).with_round_timeout(Duration::from_secs(30));
    let telemetry = executor.telemetry();
    let global = vec![0.5f32; 8];
    let noop_train: &TrainFn<'_> = &|_dispatches: &[Dispatch]| Vec::new();

    // Round 0: both dispatched; the fast worker fills the buffer alone.
    executor.publish_model(0, &global);
    let out0 = executor.execute(0, &[0, 1], noop_train);
    let h0 = out0.hetero.expect("buffered rounds carry hetero records");
    assert_eq!(h0.aggregated_ids, vec![0], "fast worker wins round 0");
    assert_eq!(out0.updates[0].staleness, 0);
    assert_eq!(executor.in_flight_clients(), vec![1], "slow one in flight");

    // Round 1: select only the slow worker — still busy, so nothing new
    // is dispatched and the buffer drains its round-0 answer (trained on
    // version 0) against version counter 1 → measured staleness 1.
    executor.publish_model(1, &global);
    let out1 = executor.execute(1, &[1], noop_train);
    let h1 = out1.hetero.expect("buffered rounds carry hetero records");
    assert!(h1.busy >= 1, "in-flight client skipped as busy");
    assert_eq!(h1.staleness, vec![1], "staleness measured, not simulated");
    assert_eq!(out1.updates[0].client_id, 1);
    assert_eq!(out1.updates[0].staleness, 1);
    assert!(
        telemetry.lock().mean_staleness() > 0.0,
        "telemetry saw the late arrival"
    );

    drop(executor);
    for w in workers {
        w.join().expect("no panic").expect("clean worker exit");
    }
}
