//! Integration contract of the networked runtime (`feddrl_net`).
//!
//! Seven promises, checked at the workspace boundary: (1) the frame
//! codec round-trips every message kind — v1 and v2 — bit-exactly and
//! rejects malformed input with *typed* errors (property-based);
//! (2) pinned golden byte fixtures prove today's build still decodes
//! yesterday's v1 frames, and a v1 peer on a live server negotiates
//! down and is served v1 frames only; (3) a client that goes silent
//! past the liveness TTL surfaces as a departure through the same
//! `RoundExecutor::departed_clients` channel the simulator's churn
//! uses; (4) — the headline law — a `NetworkExecutor` round-barrier run
//! over loopback sockets with a deterministic stub trainer reproduces
//! the `IdealExecutor`'s `RunHistory` **byte-identically** (timings
//! scrubbed), proving the transport adds no behavior; (5) delta
//! publishes reconstruct the global model *exactly* through the real
//! worker loop, fall back to dense frames when the acked base is
//! evicted or the delta would not pay, and spend fewer bytes than
//! dense fan-out; (6) wire-level masked dispatch reproduces the
//! in-process structured-dropout session byte-for-byte with *real*
//! local training on both sides; (7) the buffered mode measures real
//! staleness on late arrivals.

use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use feddrl_repro::prelude::*;
use proptest::prelude::*;
// Both glob imports export a `Strategy` trait (ours vs proptest's);
// re-import proptest's unambiguously for method resolution.
use proptest::strategy::Strategy as PropStrategy;

mod common;
use common::scrubbed_json;

// ---------------------------------------------------------------------------
// Codec laws (property-based)
// ---------------------------------------------------------------------------

/// Weights including the awkward citizens: NaN, infinities, signed zero.
fn arb_weights() -> impl PropStrategy<Value = Vec<f32>> {
    proptest::collection::vec(
        prop_oneof![
            (-1.0e6f32..1.0e6).boxed(),
            Just(f32::NAN).boxed(),
            Just(f32::INFINITY).boxed(),
            Just(f32::NEG_INFINITY).boxed(),
            Just(-0.0f32).boxed(),
        ],
        0..48,
    )
}

/// Every message kind of the v2 grammar, constrained to frames the
/// decoder accepts (ascending delta indices, masked `keep_ratio` in
/// `(0, 1]`, kept count within `total_len`).
fn arb_message() -> impl PropStrategy<Value = Message> {
    prop_oneof![
        (0u64..1 << 40, 0u8..=255, 0u8..=255).prop_map(|(client_id, lo, hi)| {
            Message::Hello {
                client_id,
                min_version: lo.min(hi),
                max_version: lo.max(hi),
            }
        }),
        (0u64..1 << 40, 0u8..=255)
            .prop_map(|(client_id, version)| Message::HelloAck { client_id, version }),
        (0u64..1 << 40, arb_weights())
            .prop_map(|(version, weights)| Message::ModelPublish { version, weights }),
        // Strictly ascending indices via positive-step prefix sums.
        (
            proptest::collection::vec((1u32..16, -1.0e3f32..1.0e3), 0..24),
            0u64..64,
        )
            .prop_map(|(steps, slack)| {
                let mut next = 0u32;
                let (indices, values): (Vec<u32>, Vec<f32>) = steps
                    .into_iter()
                    .map(|(step, v)| {
                        next += step;
                        (next - 1, v)
                    })
                    .unzip();
                let total_len = u64::from(indices.last().copied().unwrap_or(0)) + 1 + slack;
                Message::ModelPublishDelta(DeltaMsg {
                    version: slack + 1,
                    base_version: slack,
                    total_len,
                    indices,
                    values,
                })
            }),
        (0u64..1 << 40, 0u64..1 << 40)
            .prop_map(|(client_id, version)| Message::PublishAck { client_id, version }),
        (0u64..10_000, 0.0f64..=1.0)
            .prop_map(|(round, keep_ratio)| Message::TrainRequest { round, keep_ratio }),
        (
            (0u64..1000, 0u64..1000, 0u64..1000, 0u64..64),
            (0u64..1 << 30, -10.0f32..10.0, -10.0f32..10.0),
            arb_weights(),
        )
            .prop_map(
                |((client_id, round, model_version, staleness), (n, lb, la), weights)| {
                    Message::Update(UpdateMsg {
                        client_id,
                        round,
                        model_version,
                        staleness,
                        n_samples: n,
                        loss_before: lb,
                        loss_after: la,
                        weights,
                    })
                }
            ),
        (
            (0u64..1000, 0u64..1000, 0u64..1000, 0u64..64),
            (0u64..1 << 30, -10.0f32..10.0, -10.0f32..10.0),
            (0.001f64..=1.0, 0u64..64),
            arb_weights(),
        )
            .prop_map(
                |(
                    (client_id, round, model_version, staleness),
                    (n, lb, la),
                    (keep_ratio, slack),
                    kept_weights,
                )| {
                    let total_len = kept_weights.len() as u64 + slack;
                    Message::MaskedUpdate(MaskedUpdateMsg {
                        client_id,
                        round,
                        model_version,
                        staleness,
                        n_samples: n,
                        loss_before: lb,
                        loss_after: la,
                        keep_ratio,
                        total_len,
                        kept_weights,
                    })
                }
            ),
        (0u64..1 << 40).prop_map(|client_id| Message::Heartbeat { client_id }),
        (0u64..1 << 40).prop_map(|client_id| Message::Bye { client_id }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode is the identity on the *encoding*: comparing
    /// re-encoded bytes makes the law hold through NaN payloads, where
    /// `PartialEq` on the message itself would be vacuously false.
    #[test]
    fn codec_round_trips_every_kind_bit_exactly(msg in arb_message()) {
        let bytes = msg.encode();
        let (decoded, consumed) = Message::decode(&bytes).expect("decode own encoding");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(decoded.encode(), bytes);
    }

    /// Messages that exist at protocol version 1 also round-trip under
    /// the v1 grammar — the down-negotiated encoding stays decodable by
    /// this build forever.
    #[test]
    fn v1_expressible_messages_round_trip_at_v1(msg in arb_message()) {
        if msg.min_wire_version() <= 1 {
            let bytes = msg.encode_v(1);
            let (decoded, consumed) = Message::decode(&bytes).expect("decode v1 encoding");
            prop_assert_eq!(consumed, bytes.len());
            prop_assert_eq!(decoded.encode_v(1), bytes);
        }
    }

    /// Every proper prefix of a frame is rejected as `Truncated` — never
    /// a panic, never a bogus success, never a misdecode.
    #[test]
    fn truncated_frames_fail_typed(msg in arb_message(), cut in 0.0f64..1.0) {
        let bytes = msg.encode();
        let keep = ((bytes.len() as f64) * cut) as usize; // < len: proper prefix
        match Message::decode(&bytes[..keep]) {
            Err(WireError::Truncated { needed, got }) => {
                prop_assert_eq!(got, keep);
                prop_assert!(needed > got);
            }
            other => panic!("prefix of {keep}/{} bytes gave {other:?}", bytes.len()),
        }
    }

    /// A header advertising more payload than `MAX_PAYLOAD` is rejected
    /// as `Oversized` before any allocation happens.
    #[test]
    fn oversized_frames_fail_typed(extra in 1u64..1 << 30) {
        let len = (MAX_PAYLOAD as u64 + extra).min(u32::MAX as u64) as u32;
        let mut frame = Vec::new();
        frame.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        frame.push(PROTOCOL_VERSION);
        frame.push(5); // Heartbeat kind
        frame.extend_from_slice(&len.to_le_bytes());
        match Message::decode(&frame) {
            Err(WireError::Oversized { len: l, max }) => {
                prop_assert_eq!(l, len as usize);
                prop_assert_eq!(max, MAX_PAYLOAD);
            }
            other => panic!("oversized header gave {other:?}"),
        }
    }

    /// Corrupting the magic fails `BadMagic`; a version byte outside the
    /// supported `[PROTOCOL_VERSION_MIN, PROTOCOL_VERSION_MAX]` range
    /// fails `UnsupportedVersion` — whatever the payload.
    #[test]
    fn bad_magic_and_version_fail_typed(
        msg in arb_message(),
        twiddle in 1u8..255,
        bad_version in prop_oneof![
            Just(PROTOCOL_VERSION_MIN - 1),
            (PROTOCOL_VERSION_MAX + 1)..=255u8,
        ],
    ) {
        let mut bytes = msg.encode();
        bytes[0] ^= twiddle;
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::BadMagic { .. })
        ));
        let mut bytes = msg.encode();
        bytes[2] = bad_version;
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::UnsupportedVersion { .. })
        ));
    }
}

// ---------------------------------------------------------------------------
// Cross-version compatibility: golden v1 frames and a live v1 peer
// ---------------------------------------------------------------------------

/// Byte-for-byte fixtures of protocol-version-1 frames as the pre-v2
/// build wrote them. They must decode — and re-encode identically under
/// `encode_v(1)` — for as long as `PROTOCOL_VERSION_MIN` is 1.
#[test]
fn golden_v1_frames_decode_and_reencode_identically() {
    // Hello: bare client id 7; the version range is implicit [1, 1].
    let hello: &[u8] = &[
        0x7E, 0xFD, 0x01, 0x01, 0x08, 0x00, 0x00, 0x00, // header, len 8
        0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // client_id = 7
    ];
    // TrainRequest: round 2, keep_ratio 1.0.
    let train: &[u8] = &[
        0x7E, 0xFD, 0x01, 0x03, 0x10, 0x00, 0x00, 0x00, // header, len 16
        0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // round = 2
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF0, 0x3F, // f64 1.0
    ];
    // ModelPublish: version 1, weights [1.0, -2.5].
    let publish: &[u8] = &[
        0x7E, 0xFD, 0x01, 0x02, 0x18, 0x00, 0x00, 0x00, // header, len 24
        0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // version = 1
        0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // count = 2
        0x00, 0x00, 0x80, 0x3F, // f32 1.0
        0x00, 0x00, 0x20, 0xC0, // f32 -2.5
    ];
    let cases: [(&[u8], Message); 3] = [
        (
            hello,
            Message::Hello {
                client_id: 7,
                min_version: 1,
                max_version: 1,
            },
        ),
        (
            train,
            Message::TrainRequest {
                round: 2,
                keep_ratio: 1.0,
            },
        ),
        (
            publish,
            Message::ModelPublish {
                version: 1,
                weights: vec![1.0, -2.5],
            },
        ),
    ];
    for (bytes, expect) in cases {
        let (msg, used) = Message::decode(bytes).expect("golden v1 frame decodes");
        assert_eq!(used, bytes.len());
        assert_eq!(msg, expect, "golden v1 frame decoded to the wrong message");
        assert_eq!(
            expect.encode_v(1),
            bytes,
            "v1 re-encoding drifted from the golden bytes"
        );
    }
}

/// A pinned v2 `HelloAck` — the first frame of the new grammar a v2
/// client ever sees — so its layout can never drift silently either.
#[test]
fn golden_v2_hello_ack_decodes() {
    let ack: &[u8] = &[
        0x7E, 0xFD, 0x02, 0x07, 0x09, 0x00, 0x00, 0x00, // header, len 9
        0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // client_id = 3
        0x02, // negotiated version = 2
    ];
    let (msg, used) = Message::decode(ack).expect("golden v2 HelloAck decodes");
    assert_eq!(used, ack.len());
    assert_eq!(
        msg,
        Message::HelloAck {
            client_id: 3,
            version: 2,
        }
    );
}

/// Read one raw frame off a socket, returning the wire version byte it
/// was stamped with alongside the decoded message.
fn read_raw_frame(sock: &mut TcpStream) -> (u8, Message) {
    use std::io::Read as _;
    let mut header = [0u8; HEADER_LEN];
    sock.read_exact(&mut header).expect("frame header");
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
    let mut frame = header.to_vec();
    frame.resize(HEADER_LEN + len, 0);
    sock.read_exact(&mut frame[HEADER_LEN..])
        .expect("frame payload");
    let (msg, used) = Message::decode(&frame).expect("decode raw frame");
    assert_eq!(used, frame.len());
    (header[2], msg)
}

/// A v1-only peer on a v2 server with delta publishing *enabled*: the
/// server negotiates down, never sends a `HelloAck` (v1 predates it),
/// and serves dense v1 `ModelPublish` frames only — deltas require v2.
/// A peer advertising a disjoint version range is counted and dropped.
#[test]
fn v1_peer_negotiates_down_and_only_ever_sees_v1_frames() {
    use std::io::Write as _;
    let server = NetServerBuilder::new()
        .delta_publish(true)
        .build()
        .expect("bind");
    let addr = server.local_addr().to_string();

    let mut v1_peer = TcpStream::connect(&addr).expect("connect");
    let hello = Message::Hello {
        client_id: 9,
        min_version: 1,
        max_version: 1,
    };
    v1_peer.write_all(&hello.encode_v(1)).expect("v1 hello");
    server
        .wait_for_clients(1, Duration::from_secs(5))
        .expect("v1 peer subscribed");

    // Two publishes: no ack channel exists at v1, so both must arrive
    // dense, stamped v1 — never a delta, never a HelloAck in between.
    server.publish(3, &[0.5, -1.0]);
    server.publish(4, &[0.75, -1.0]);
    for expect_version in [3u64, 4] {
        let (wire_version, msg) = read_raw_frame(&mut v1_peer);
        assert_eq!(wire_version, 1, "frames to a v1 peer are stamped v1");
        match msg {
            Message::ModelPublish { version, .. } => assert_eq!(version, expect_version),
            other => panic!("v1 peer received {other:?}"),
        }
    }
    let stats = server.publish_stats();
    assert_eq!(stats.delta_frames, 0, "deltas require a v2 peer");
    assert_eq!(stats.full_frames, 2);
    assert_eq!(server.negotiation_failures(), 0);

    // A peer from the future, speaking only versions we do not: the
    // handshake fails typed on our side of the math too...
    assert!(matches!(
        negotiate(PROTOCOL_VERSION_MAX + 1, 255),
        Err(WireError::NegotiationFailed { .. })
    ));
    // ...and the server counts the failure and hangs up on the socket.
    let mut alien = TcpStream::connect(&addr).expect("connect");
    let alien_hello = Message::Hello {
        client_id: 10,
        min_version: PROTOCOL_VERSION_MAX + 1,
        max_version: 255,
    };
    alien.write_all(&alien_hello.encode()).expect("alien hello");
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.negotiation_failures() == 0 && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.negotiation_failures(), 1, "disjoint range counted");
    assert!(!server.is_live(10), "failed negotiation never subscribes");
}

// ---------------------------------------------------------------------------
// Liveness TTL → departure
// ---------------------------------------------------------------------------

/// A client silent past the TTL departs through the executor's
/// `departed_clients` — the same channel the simulator's churn feeds —
/// while a heartbeating client stays live.
#[test]
fn ttl_expiry_surfaces_as_departure_through_the_executor() {
    let server = NetServerBuilder::new()
        .ttl(Duration::from_millis(100))
        .build()
        .expect("bind");
    let addr = server.local_addr().to_string();

    // Client 1 heartbeats properly via the real worker loop...
    let worker_cfg = NetClientBuilder::new(addr.clone(), 1)
        .heartbeat(Duration::from_millis(25))
        .build()
        .expect("client config");
    let worker = thread::spawn(move || {
        run_client(&worker_cfg, |_, _| ClientUpdate {
            client_id: 1,
            weights: vec![],
            n_samples: 1,
            loss_before: 0.0,
            loss_after: 0.0,
            staleness: 0,
            mask: None,
        })
    });
    // ...client 3 says Hello once and then goes silent forever.
    let mut silent = TcpStream::connect(&addr).expect("connect");
    write_frame(
        &mut silent,
        &Message::Hello {
            client_id: 3,
            min_version: PROTOCOL_VERSION_MIN,
            max_version: PROTOCOL_VERSION_MAX,
        },
    )
    .expect("hello");

    server
        .wait_for_clients(2, Duration::from_secs(5))
        .expect("both subscribed");
    let executor = NetworkExecutor::barrier(server);
    assert!(executor.departed_clients().is_empty(), "everyone fresh");

    thread::sleep(Duration::from_millis(300));
    let deadline = Instant::now() + Duration::from_secs(5);
    while executor.departed_clients().is_empty() && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(executor.departed_clients(), vec![3], "silence departs");
    assert!(executor.server().is_live(1), "heartbeats keep 1 live");

    drop(executor); // shutdown → Bye → worker exits
    worker.join().expect("no panic").expect("clean exit");
}

// ---------------------------------------------------------------------------
// Headline law: loopback byte-identity with the ideal executor
// ---------------------------------------------------------------------------

const NET_CLIENTS: usize = 5;

/// The deterministic stand-in for local training, computed identically
/// by the in-process ideal run and by every networked worker: a pure
/// function of (round, client id, published global weights).
fn stub_update(round: usize, client_id: usize, global: &[f32]) -> ClientUpdate {
    let scale = 0.9 - 0.05 * client_id as f32;
    let bias = 0.01 * (round as f32 + 1.0) + 0.001 * client_id as f32;
    ClientUpdate {
        client_id,
        weights: global
            .iter()
            .enumerate()
            .map(|(i, w)| w * scale + bias * ((i % 7) as f32 - 3.0))
            .collect(),
        n_samples: 10 + 3 * client_id,
        loss_before: 1.0 + 0.25 * round as f32 + 0.01 * client_id as f32,
        loss_after: 0.5 + 0.01 * client_id as f32,
        staleness: 0,
        mask: None,
    }
}

fn net_env() -> (ModelSpec, Dataset, Dataset, Partition, FlConfig) {
    let (train, test) = SynthSpec {
        train_size: 300,
        test_size: 80,
        ..SynthSpec::mnist_like()
    }
    .generate(12);
    let partition = PartitionMethod::Iid
        .partition(&train, NET_CLIENTS, &mut Rng64::new(4))
        .unwrap();
    let spec = ModelSpec::Mlp {
        in_dim: train.feature_dim(),
        hidden: vec![8],
        out_dim: train.num_classes(),
    };
    let cfg = FlConfig {
        rounds: 3,
        participants: 3,
        local: LocalTrainConfig {
            epochs: 1,
            batch_size: 16,
            lr: 0.05,
            ..Default::default()
        },
        eval_batch: 64,
        seed: 41,
        log_every: 0,
        selection: Selection::Uniform,
        executor: ExecutorConfig::Ideal,
        server_opt: ServerOptConfig::Plain,
    };
    (spec, train, test, partition, cfg)
}

/// The tentpole law: with every worker live, a `NetworkExecutor` barrier
/// run over real loopback sockets reproduces the `IdealExecutor`'s
/// history byte-for-byte — same selections, same aggregations, same
/// `f32` bits — because updates cross the wire bit-exactly and are
/// reassembled into sampling order. The transport is pure plumbing.
#[test]
fn loopback_barrier_run_is_byte_identical_to_ideal() {
    let (spec, train, test, partition, cfg) = net_env();

    // In-process reference: the ideal executor driven by the stub.
    let ideal_history = {
        let mut strategy = FedAvg;
        SessionBuilder::new(&spec, &train, &test, &partition, &mut strategy)
            .config(&cfg)
            .train_fn(Box::new(|ctx, dispatches| {
                dispatches
                    .iter()
                    .map(|d| stub_update(ctx.round, d.client_id, ctx.global))
                    .collect()
            }))
            .build()
            .expect("valid config")
            .run()
            .expect("ideal run")
    };

    // Networked run: one worker thread per client, each computing the
    // same stub from the frames it receives.
    let server = NetServerBuilder::new().build().expect("bind");
    let addr = server.local_addr().to_string();
    let workers: Vec<_> = (0..NET_CLIENTS)
        .map(|cid| {
            let worker_cfg = NetClientBuilder::new(addr.clone(), cid)
                .build()
                .expect("client config");
            thread::spawn(move || {
                run_client(&worker_cfg, move |order, global| {
                    stub_update(order.round as usize, cid, global)
                })
            })
        })
        .collect();
    server
        .wait_for_clients(NET_CLIENTS, Duration::from_secs(10))
        .expect("all workers subscribed");

    let net_history = {
        let executor = NetworkExecutor::barrier(server);
        let telemetry = executor.telemetry();
        let mut strategy = FedAvg;
        let history = SessionBuilder::new(&spec, &train, &test, &partition, &mut strategy)
            .config(&cfg)
            .executor_instance(Box::new(executor))
            .build()
            .expect("valid config")
            .run()
            .expect("networked run");
        let t = telemetry.lock();
        assert_eq!(
            t.dispatched,
            cfg.rounds * cfg.participants,
            "every sampled client was dispatched over the wire"
        );
        assert_eq!(t.failed_dispatches, 0);
        assert_eq!(t.timed_out, 0);
        assert!(t.staleness.iter().all(|&s| s == 0), "barrier is fresh");
        assert!(t.p50_rtt_ms() > 0.0, "RTTs were actually measured");
        history
    }; // session (and with it the server) drops here → workers get Bye

    for w in workers {
        w.join().expect("no panic").expect("clean worker exit");
    }

    assert_eq!(
        scrubbed_json(net_history),
        scrubbed_json(ideal_history),
        "loopback barrier run diverged from the ideal executor"
    );
}

// ---------------------------------------------------------------------------
// Delta-compressed publishes
// ---------------------------------------------------------------------------

/// With `delta_publish` on, steady-state publishes cross the wire as
/// sparse residuals against each worker's acked base — and the worker
/// loop reconstructs the global *bit-exactly*: its stub updates (pure
/// functions of the model it trained on) match what dense publishing
/// would have produced, while the byte counters show the saving.
#[test]
fn delta_publishes_reconstruct_exactly_through_the_worker_loop() {
    const PARAMS: usize = 96;
    let server = NetServerBuilder::new()
        .delta_publish(true)
        .build()
        .expect("bind");
    let addr = server.local_addr().to_string();
    let workers: Vec<_> = (0..2usize)
        .map(|cid| {
            let worker_cfg = NetClientBuilder::new(addr.clone(), cid)
                .build()
                .expect("client config");
            thread::spawn(move || {
                run_client(&worker_cfg, move |order, global| {
                    stub_update(order.round as usize, cid, global)
                })
            })
        })
        .collect();
    server
        .wait_for_clients(2, Duration::from_secs(10))
        .expect("both subscribed");

    let mut executor = NetworkExecutor::barrier(server);
    let telemetry = executor.telemetry();
    let noop_train: &TrainFn<'_> = &|_dispatches: &[Dispatch]| Vec::new();
    let mut global = vec![0.25f32; PARAMS];
    for round in 0..4usize {
        // One coordinate moves per round: the residual against the
        // previous publish is a single (index, value) pair.
        global[(round * 7) % PARAMS] = round as f32 + 1.5;
        executor.publish_model(round, &global);
        let out = executor.execute(round, &[0, 1], noop_train);
        assert_eq!(out.updates.len(), 2, "barrier collects both workers");
        for u in &out.updates {
            assert_eq!(
                u.weights,
                stub_update(round, u.client_id, &global).weights,
                "worker {} trained on a mis-reconstructed model",
                u.client_id
            );
        }
    }
    let stats = telemetry.lock().publish;
    // Round 0 is dense for everyone (nothing acked yet); rounds 1-3 ride
    // as one-coordinate deltas to both workers.
    assert_eq!(stats.full_frames, 2, "only the cold start is dense");
    assert_eq!(stats.delta_frames, 6, "steady state is all deltas");
    assert!(
        stats.wire_bytes < stats.dense_bytes,
        "deltas must beat dense fan-out: {} vs {}",
        stats.wire_bytes,
        stats.dense_bytes
    );
    assert!(stats.wire_to_dense_ratio() < 0.5);

    drop(executor);
    for w in workers {
        w.join().expect("no panic").expect("clean worker exit");
    }
}

/// The two dense-fallback triggers, observed on a raw v2 socket: a base
/// evicted from the snapshot ring (ring capacity 1 — pushing the new
/// version evicts the acked one), and a residual so dense the delta
/// frame would cost more than the dense frame it replaces.
#[test]
fn delta_publish_falls_back_to_dense_when_base_evicted_or_delta_too_big() {
    use std::io::Write as _;
    for (ring, change_all, expect_delta) in [
        (8usize, false, true), // base retained, sparse residual → delta
        (1, false, false),     // base evicted by the push → dense
        (8, true, false),      // every coordinate moved → delta loses
    ] {
        let server = NetServerBuilder::new()
            .delta_publish(true)
            .snapshot_ring(ring)
            .build()
            .expect("bind");
        let addr = server.local_addr().to_string();
        let mut sock = TcpStream::connect(&addr).expect("connect");
        write_frame(
            &mut sock,
            &Message::Hello {
                client_id: 9,
                min_version: PROTOCOL_VERSION_MIN,
                max_version: PROTOCOL_VERSION_MAX,
            },
        )
        .expect("hello");
        let (_, ack) = read_raw_frame(&mut sock);
        assert_eq!(
            ack,
            Message::HelloAck {
                client_id: 9,
                version: PROTOCOL_VERSION_MAX,
            },
            "v2 handshake pins the negotiated version"
        );
        // The ack is written before the peer enters the publish fan-out
        // table; registration (which `wait_for_clients` observes) comes
        // after it, so this is the publish-safe synchronization point.
        server
            .wait_for_clients(1, Duration::from_secs(5))
            .expect("peer registered");

        let w0 = vec![0.5f32; 64];
        server.publish(0, &w0);
        let (_, first) = read_raw_frame(&mut sock);
        assert!(
            matches!(first, Message::ModelPublish { version: 0, .. }),
            "cold publish is dense, got {first:?}"
        );
        sock.write_all(
            &Message::PublishAck {
                client_id: 9,
                version: 0,
            }
            .encode(),
        )
        .expect("ack");
        // Hello was message 1; wait until the ack (message 2) is in the
        // registry before publishing against it.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.messages_from(9) != Some(2) && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(server.messages_from(9), Some(2), "ack registered");

        let mut w1 = w0.clone();
        if change_all {
            for w in &mut w1 {
                *w += 1.0;
            }
        } else {
            w1[17] = -3.25;
        }
        server.publish(1, &w1);
        let (_, second) = read_raw_frame(&mut sock);
        if expect_delta {
            match second {
                Message::ModelPublishDelta(d) => {
                    assert_eq!(d.version, 1);
                    assert_eq!(d.base_version, 0);
                    assert_eq!(d.total_len, 64);
                    assert_eq!(d.indices, vec![17]);
                    assert_eq!(d.values, vec![-3.25]);
                }
                other => panic!("expected a delta, got {other:?}"),
            }
        } else {
            assert!(
                matches!(second, Message::ModelPublish { version: 1, .. }),
                "ring={ring} change_all={change_all}: expected dense fallback, got {second:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Wire-level masked dispatch ≡ in-process structured dropout
// ---------------------------------------------------------------------------

/// The keep-ratio rule both sides must share: full model when it fits
/// the deadline, else the largest grid ratio that does, else full again
/// (a predicted dropout trains in full, as `DeadlineExecutor` does).
fn expected_ratio(
    fleet: &FleetView,
    grid: &StructuredDropoutConfig,
    upload_bytes: u64,
    deadline_s: f64,
    client_id: usize,
) -> f64 {
    let profile = fleet.profile(client_id);
    let time_for = |r: f64| profile.completion_time_at(upload_bytes, r, None, 0.0);
    if time_for(1.0) <= deadline_s {
        return 1.0;
    }
    grid.largest_fitting(deadline_s, time_for).unwrap_or(1.0)
}

/// The in-process reference for the wire-masking law: an ideal (no
/// drops, no deadline misses) executor that dispatches the *same*
/// per-client keep ratios `WireMasking` derives, feeding the session's
/// own PR-7 structured-dropout training path.
struct MaskedIdealExecutor {
    fleet: FleetView,
    grid: StructuredDropoutConfig,
    upload_bytes: u64,
    deadline_s: f64,
}

impl RoundExecutor for MaskedIdealExecutor {
    fn execute(&mut self, _round: usize, selected: &[usize], train: &TrainFn<'_>) -> RoundOutcome {
        let dispatches: Vec<Dispatch> = selected
            .iter()
            .map(|&c| Dispatch {
                client_id: c,
                keep_ratio: expected_ratio(
                    &self.fleet,
                    &self.grid,
                    self.upload_bytes,
                    self.deadline_s,
                    c,
                ),
            })
            .collect();
        RoundOutcome {
            updates: train(&dispatches),
            hetero: None,
        }
    }
}

/// The second tentpole law: wire-level sub-model dispatch reproduces
/// the in-process structured-dropout session **byte-for-byte** with
/// real local training on both sides. Deadline-pressed workers receive
/// `keep_ratio < 1`, derive the mask locally from the shared seed (it
/// never crosses the wire), train the sub-model, and answer with a
/// compact `MaskedUpdate` the server scatters back into place — and
/// none of that machinery shifts a single bit of the run history.
#[test]
fn wire_masked_run_is_byte_identical_to_in_process_structured_dropout() {
    let (spec, train, test, partition, mut cfg) = net_env();
    // Every client dispatched every round: the masked/full split is then
    // exactly the fleet's deadline split, not selection luck.
    cfg.participants = NET_CLIENTS;

    let grid = StructuredDropoutConfig::default();
    let upload_bytes = (spec.build(0).param_count() * 4) as u64;
    let fleet_cfg = FleetConfig {
        compute_skew: 4.0,
        ..FleetConfig::default()
    };
    let fleet = || FleetView::new(NET_CLIENTS, &fleet_cfg);
    // Median completion time as the round deadline: the slower half of
    // the fleet must sub-model (or prove it can't and train in full).
    let deadline_s = fleet().completion_percentile_s(upload_bytes, 0.5);
    let ratios: Vec<f64> = (0..NET_CLIENTS)
        .map(|c| expected_ratio(&fleet(), &grid, upload_bytes, deadline_s, c))
        .collect();
    assert!(
        ratios.iter().any(|&r| r < 1.0),
        "test is vacuous: no client sub-models under {ratios:?}"
    );
    assert!(
        ratios.iter().any(|&r| r >= 1.0),
        "test is degenerate: every client sub-models under {ratios:?}"
    );

    // In-process reference: the session's own structured-dropout path.
    let ideal_history = {
        let mut strategy = FedAvg;
        SessionBuilder::new(&spec, &train, &test, &partition, &mut strategy)
            .config(&cfg)
            .executor_instance(Box::new(MaskedIdealExecutor {
                fleet: fleet(),
                grid,
                upload_bytes,
                deadline_s,
            }))
            .build()
            .expect("valid config")
            .run()
            .expect("in-process masked run")
    };

    // Networked run: workers perform *real* local training, replicating
    // the session's train path — same model build, same RNG streams,
    // same shared mask derivation.
    let server = NetServerBuilder::new().build().expect("bind");
    let addr = server.local_addr().to_string();
    let seed = cfg.seed;
    let train_arc = Arc::new(train.clone());
    let workers: Vec<_> = (0..NET_CLIENTS)
        .map(|cid| {
            let worker_cfg = NetClientBuilder::new(addr.clone(), cid)
                .build()
                .expect("client config");
            let spec = spec.clone();
            let train_set = Arc::clone(&train_arc);
            let partition = partition.clone();
            let local_cfg = cfg.local.clone();
            thread::spawn(move || {
                run_client(&worker_cfg, move |order, global| {
                    let mut model = spec.build(0);
                    model.set_flat_params(global);
                    let mut rng = Rng64::new(seed ^ 0xC11E)
                        .derive(order.round)
                        .derive(cid as u64);
                    let shard = partition.client(cid % NET_CLIENTS);
                    if order.keep_ratio < 1.0 {
                        let mask =
                            dispatch_mask(&model, seed, order.round, cid as u64, order.keep_ratio);
                        run_local_round_masked(
                            model, &train_set, shard, cid, &local_cfg, mask, &mut rng,
                        )
                    } else {
                        run_local_round(model, &train_set, shard, cid, &local_cfg, &mut rng)
                    }
                })
            })
        })
        .collect();
    server
        .wait_for_clients(NET_CLIENTS, Duration::from_secs(10))
        .expect("all workers subscribed");

    let (net_history, masked_over_wire) = {
        let executor = NetworkExecutor::barrier(server).with_wire_masking(WireMasking {
            model: spec.build(0),
            seed,
            grid,
            fleet: fleet(),
            upload_bytes,
            deadline_s,
        });
        let telemetry = executor.telemetry();
        let mut strategy = FedAvg;
        let history = SessionBuilder::new(&spec, &train, &test, &partition, &mut strategy)
            .config(&cfg)
            .executor_instance(Box::new(executor))
            .build()
            .expect("valid config")
            .run()
            .expect("wire-masked run");
        let t = telemetry.lock();
        assert!(t.masked_updates > 0, "no compact updates crossed the wire");
        (history, t.masked_updates)
    };

    let mut worker_masked_rounds = 0usize;
    for w in workers {
        let report = w.join().expect("no panic").expect("clean worker exit");
        assert_eq!(report.negotiated_version, PROTOCOL_VERSION_MAX);
        worker_masked_rounds += report.masked_rounds;
    }
    assert_eq!(
        worker_masked_rounds, masked_over_wire,
        "every compact reply the workers sent was reassembled and counted"
    );

    assert_eq!(
        scrubbed_json(net_history),
        scrubbed_json(ideal_history),
        "wire-masked run diverged from the in-process structured-dropout path"
    );
}

// ---------------------------------------------------------------------------
// Buffered mode measures staleness
// ---------------------------------------------------------------------------

/// With a deliberately slow worker and `buffer_size = 1`, the slow
/// worker's answer aggregates one version late — and the executor
/// *measures* that staleness off the wire instead of simulating it.
#[test]
fn buffered_mode_measures_staleness_of_late_arrivals() {
    let server = NetServerBuilder::new().build().expect("bind");
    let addr = server.local_addr().to_string();
    let workers: Vec<_> = [(0usize, 0u64), (1usize, 400u64)]
        .into_iter()
        .map(|(cid, delay_ms)| {
            let worker_cfg = NetClientBuilder::new(addr.clone(), cid)
                .train_delay(Duration::from_millis(delay_ms))
                .build()
                .expect("client config");
            thread::spawn(move || {
                run_client(&worker_cfg, move |order, global| {
                    stub_update(order.round as usize, cid, global)
                })
            })
        })
        .collect();
    server
        .wait_for_clients(2, Duration::from_secs(10))
        .expect("both subscribed");

    let mut executor =
        NetworkExecutor::buffered(server, 1).with_round_timeout(Duration::from_secs(30));
    let telemetry = executor.telemetry();
    let global = vec![0.5f32; 8];
    let noop_train: &TrainFn<'_> = &|_dispatches: &[Dispatch]| Vec::new();

    // Round 0: both dispatched; the fast worker fills the buffer alone.
    executor.publish_model(0, &global);
    let out0 = executor.execute(0, &[0, 1], noop_train);
    let h0 = out0.hetero.expect("buffered rounds carry hetero records");
    assert_eq!(h0.aggregated_ids, vec![0], "fast worker wins round 0");
    assert_eq!(out0.updates[0].staleness, 0);
    assert_eq!(executor.in_flight_clients(), vec![1], "slow one in flight");

    // Round 1: select only the slow worker — still busy, so nothing new
    // is dispatched and the buffer drains its round-0 answer (trained on
    // version 0) against version counter 1 → measured staleness 1.
    executor.publish_model(1, &global);
    let out1 = executor.execute(1, &[1], noop_train);
    let h1 = out1.hetero.expect("buffered rounds carry hetero records");
    assert!(h1.busy >= 1, "in-flight client skipped as busy");
    assert_eq!(h1.staleness, vec![1], "staleness measured, not simulated");
    assert_eq!(out1.updates[0].client_id, 1);
    assert_eq!(out1.updates[0].staleness, 1);
    assert!(
        telemetry.lock().mean_staleness() > 0.0,
        "telemetry saw the late arrival"
    );

    drop(executor);
    for w in workers {
        w.join().expect("no panic").expect("clean worker exit");
    }
}
