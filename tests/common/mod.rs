//! Helpers shared by the integration suites.
//!
//! Not every suite uses every helper, and each test binary compiles this
//! module independently, hence the `dead_code` allowance.
#![allow(dead_code)]

use feddrl_repro::prelude::*;

/// Zero the only nondeterministic fields of a run history (the
/// wall-clock stage timings) so the rest compares byte-for-byte.
pub fn scrub_timings(history: &mut RunHistory) {
    for r in &mut history.records {
        r.strategy_micros = 0;
        r.aggregate_micros = 0;
    }
}

/// Pretty JSON of a history with timings scrubbed — the form the
/// equality-law tests compare.
pub fn scrubbed_json(mut history: RunHistory) -> String {
    scrub_timings(&mut history);
    serde_json::to_string_pretty(&history).expect("serialize history")
}

/// Like [`scrubbed_json`] but with the trailing newline the on-disk
/// golden fixtures carry.
pub fn golden_json(history: RunHistory) -> String {
    scrubbed_json(history) + "\n"
}
