//! The federated server's network runtime: accept loop, per-connection
//! receive threads, model fan-out, and the update inbox.
//!
//! [`NetServer`] owns a nonblocking [`TcpListener`] polled by a dedicated
//! accept thread; every connection gets its own receive thread that
//! assembles frames and routes them by kind — `Hello`/`Heartbeat` refresh
//! the [`Registry`], `Update` lands in a
//! condvar-signalled inbox drained by [`NetServer::recv_update`], and
//! `Bye` marks permanent departure. Model broadcast
//! ([`NetServer::publish`]) encodes the frame once and fans it out to
//! every subscribed client over the vendored crossbeam scoped-thread
//! shim, one writer thread per peer.
//!
//! There is no async runtime anywhere in this crate: all concurrency is
//! plain threads plus the repo's vendored `crossbeam`/`parking_lot`
//! shims, keeping the PR-1 vendoring policy intact. Receive threads stay
//! interruptible by reading with a short socket timeout and re-checking
//! the shutdown flag between partial reads, so `shutdown` (and `Drop`)
//! always join cleanly.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::registry::Registry;
use crate::wire::{
    decode_payload, negotiate, DeltaMsg, FrameHeader, Message, UpdateMsg, WireError, HEADER_LEN,
};

/// How long the per-connection receive threads block on the socket before
/// re-checking the shutdown flag. Small enough that `shutdown` joins
/// promptly, large enough to stay off the scheduler's back.
const POLL_INTERVAL: Duration = Duration::from_millis(10);

/// Tuning knobs for a [`NetServer`]. Prefer constructing through
/// [`NetServerBuilder`](crate::builder::NetServerBuilder), which
/// validates these at `build()` time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Liveness TTL: a client silent for longer than this is swept into
    /// the departed set on the next [`NetServer::sweep_expired`].
    pub ttl: Duration,
    /// When `true`, publishes to v2-negotiated peers that have acked a
    /// cached version are delta-encoded against it (exact, sparse)
    /// whenever that is smaller than the dense frame. Off by default —
    /// the loopback byte-identity law runs with every knob off.
    pub delta_publish: bool,
    /// How many recent `(version, weights)` snapshots to keep for delta
    /// encoding. A peer whose acked base has fallen out of the ring
    /// silently falls back to a full frame.
    pub snapshot_ring: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            ttl: Duration::from_secs(5),
            delta_publish: false,
            snapshot_ring: 8,
        }
    }
}

/// Cumulative bytes-on-wire accounting for [`NetServer::publish`], the
/// evidence `exp_net` prints for the delta-encoding fan-out reduction.
/// Counters only grow; subtract two snapshots (see [`PublishStats::since`])
/// to isolate a window such as the steady-state rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PublishStats {
    /// Bytes actually written to peers by `publish` (headers included).
    pub wire_bytes: u64,
    /// Bytes the same publishes would have cost as dense full frames —
    /// the denominator of the fan-out-reduction claim.
    pub dense_bytes: u64,
    /// Publish frames that went out delta-encoded.
    pub delta_frames: u64,
    /// Publish frames that went out dense (v1 peers, no acked base, base
    /// evicted from the ring, or a delta that would not have been
    /// smaller).
    pub full_frames: u64,
}

impl PublishStats {
    /// The counter deltas since an `earlier` snapshot of the same server.
    pub fn since(&self, earlier: &PublishStats) -> PublishStats {
        PublishStats {
            wire_bytes: self.wire_bytes.saturating_sub(earlier.wire_bytes),
            dense_bytes: self.dense_bytes.saturating_sub(earlier.dense_bytes),
            delta_frames: self.delta_frames.saturating_sub(earlier.delta_frames),
            full_frames: self.full_frames.saturating_sub(earlier.full_frames),
        }
    }

    /// Bytes-on-wire as a fraction of the dense-equivalent fan-out
    /// (`1.0` when nothing was published).
    pub fn wire_to_dense_ratio(&self) -> f64 {
        if self.dense_bytes == 0 {
            1.0
        } else {
            self.wire_bytes as f64 / self.dense_bytes as f64
        }
    }
}

/// Sub-model metadata of a `MaskedUpdate` arrival: enough for the
/// executor to re-derive the [`StructuredMask`] (via the shared
/// `MASK_SALT` stream) and scatter the kept weights back into a
/// full-length vector.
///
/// [`StructuredMask`]: feddrl_nn::mask::StructuredMask
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaskedWireInfo {
    /// The dispatch's keep ratio — the mask derivation parameter.
    pub keep_ratio: f64,
    /// Full flat parameter count the kept positions scatter into.
    pub total_len: usize,
}

/// An `Update` (or `MaskedUpdate`) frame as it arrived at the server,
/// stamped with its arrival instant so the executor can measure
/// round-trip time.
#[derive(Debug, Clone)]
pub struct InboundUpdate {
    /// The decoded update payload. For a masked arrival, `msg.weights`
    /// holds only the kept positions in ascending order.
    pub msg: UpdateMsg,
    /// `Some` when the update arrived as a `MaskedUpdate` frame.
    pub masked: Option<MaskedWireInfo>,
    /// When the update was fully decoded off the socket.
    pub arrival: Instant,
}

/// One subscribed client's write half plus the protocol version its
/// connection negotiated at `Hello` time — the version every frame sent
/// to it must be encoded at.
struct Peer {
    stream: TcpStream,
    version: u8,
}

impl Peer {
    fn send(&mut self, msg: &Message) -> Result<(), WireError> {
        let frame = msg.encode_v(self.version);
        self.stream.write_all(&frame)?;
        self.stream.flush()?;
        Ok(())
    }
}

/// State shared between the public handle and the background threads.
struct Shared {
    start: Instant,
    registry: Mutex<Registry>,
    /// Write halves (via `try_clone`) of every subscribed client's
    /// socket, with their negotiated versions.
    peers: Mutex<HashMap<usize, Peer>>,
    /// Arrived updates, drained by `recv_update`. `std::sync::Mutex` +
    /// `Condvar` rather than the parking_lot shim, which has no condvar.
    inbox: StdMutex<VecDeque<InboundUpdate>>,
    inbox_cv: Condvar,
    shutdown: AtomicBool,
    /// Recent published models for delta encoding, newest last; empty
    /// unless `delta_publish` is on.
    snapshots: Mutex<VecDeque<(u64, Vec<f32>)>>,
    delta_publish: bool,
    snapshot_cap: usize,
    publish_wire_bytes: AtomicU64,
    publish_dense_bytes: AtomicU64,
    delta_frames: AtomicU64,
    full_frames: AtomicU64,
    negotiation_failures: AtomicU64,
}

impl Shared {
    /// Milliseconds since the server started — the logical clock the
    /// registry's TTL arithmetic runs on.
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn inbox_lock(&self) -> std::sync::MutexGuard<'_, VecDeque<InboundUpdate>> {
        self.inbox.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The federated server's listening endpoint: accepts client
/// connections, tracks liveness, fans out model versions, and queues
/// incoming updates for the executor.
pub struct NetServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_handle: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Bind `addr` and start the accept thread.
    #[deprecated(note = "construct through `NetServerBuilder` instead")]
    pub fn bind(addr: &str, cfg: ServerConfig) -> Result<NetServer, WireError> {
        NetServer::bind_with(addr, cfg)
    }

    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback port)
    /// and start the accept thread. The validated entry point is
    /// [`NetServerBuilder::build`](crate::builder::NetServerBuilder::build),
    /// which delegates here.
    pub(crate) fn bind_with(addr: &str, cfg: ServerConfig) -> Result<NetServer, WireError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let ttl_ms = (cfg.ttl.as_millis() as u64).max(1);
        let shared = Arc::new(Shared {
            start: Instant::now(),
            registry: Mutex::new(Registry::new(ttl_ms)),
            peers: Mutex::new(HashMap::new()),
            inbox: StdMutex::new(VecDeque::new()),
            inbox_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            snapshots: Mutex::new(VecDeque::new()),
            delta_publish: cfg.delta_publish,
            snapshot_cap: cfg.snapshot_ring.max(1),
            publish_wire_bytes: AtomicU64::new(0),
            publish_dense_bytes: AtomicU64::new(0),
            delta_frames: AtomicU64::new(0),
            full_frames: AtomicU64::new(0),
            negotiation_failures: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_handle = thread::Builder::new()
            .name("feddrl-net-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(WireError::from)?;
        Ok(NetServer {
            shared,
            addr,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address, with the OS-assigned port resolved.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The liveness TTL in milliseconds, as configured.
    pub fn ttl_ms(&self) -> u64 {
        self.shared.registry.lock().ttl_ms()
    }

    /// Block until at least `n` clients have said `Hello`, or fail with a
    /// timed-out I/O error.
    pub fn wait_for_clients(&self, n: usize, timeout: Duration) -> Result<(), WireError> {
        let deadline = Instant::now() + timeout;
        loop {
            let have = self.shared.registry.lock().len();
            if have >= n {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(WireError::Io {
                    kind: io::ErrorKind::TimedOut,
                    detail: format!("waited {timeout:?} for {n} clients, only {have} subscribed"),
                });
            }
            thread::sleep(Duration::from_millis(2));
        }
    }

    /// Broadcast the global model to every subscribed client, one scoped
    /// writer thread per peer. Each peer gets either a dense
    /// `ModelPublish` (encoded at its negotiated version) or — when
    /// `delta_publish` is on, the peer negotiated v2 and acked a base
    /// still in the snapshot ring — an exact sparse `ModelPublishDelta`,
    /// whichever is smaller on the wire. Peers whose socket write fails
    /// are dropped from the peer table (the TTL sweep will retire them).
    /// Returns how many peers were reached.
    pub fn publish(&self, version: u64, weights: &[f32]) -> usize {
        let shared = &self.shared;
        // What this publish would cost per peer if sent dense: the
        // denominator of the fan-out-reduction accounting. Dense payload:
        // version u64 + count u64 + raw f32s (identical at v1 and v2).
        let dense_len = (HEADER_LEN + 16 + weights.len() * 4) as u64;
        if shared.delta_publish {
            let mut ring = shared.snapshots.lock();
            ring.push_back((version, weights.to_vec()));
            while ring.len() > shared.snapshot_cap {
                ring.pop_front();
            }
        }
        let mut peers = shared.peers.lock();
        // Frame choice per peer, computed up front so identical choices
        // share one encoding (workers typically ack in lockstep, so one
        // delta serves the whole fleet).
        let mut dense_cache: HashMap<u8, Arc<Vec<u8>>> = HashMap::new();
        let mut delta_cache: HashMap<u64, Option<Arc<Vec<u8>>>> = HashMap::new();
        let mut plan: HashMap<usize, (Arc<Vec<u8>>, bool)> = HashMap::with_capacity(peers.len());
        {
            let registry = shared.registry.lock();
            let ring = shared.snapshots.lock();
            for (&id, peer) in peers.iter() {
                let delta = if shared.delta_publish && peer.version >= 2 {
                    registry.acked_version(id).and_then(|base| {
                        delta_cache
                            .entry(base)
                            .or_insert_with(|| {
                                encode_delta(&ring, base, version, weights).map(Arc::new)
                            })
                            .clone()
                    })
                } else {
                    None
                };
                let chosen = match delta {
                    Some(frame) => (frame, true),
                    None => {
                        let frame = dense_cache
                            .entry(peer.version)
                            .or_insert_with(|| {
                                Arc::new(
                                    Message::ModelPublish {
                                        version,
                                        weights: weights.to_vec(),
                                    }
                                    .encode_v(peer.version),
                                )
                            })
                            .clone();
                        (frame, false)
                    }
                };
                plan.insert(id, chosen);
            }
        }
        let mut dead: Vec<usize> = Vec::new();
        let total = peers.len();
        crossbeam::scope(|s| {
            let handles: Vec<_> = peers
                .iter_mut()
                .map(|(&id, peer)| {
                    let (frame, is_delta) = plan.get(&id).cloned().expect("every peer is planned");
                    let stream = &mut peer.stream;
                    s.spawn(move |_| {
                        let ok = stream
                            .write_all(&frame)
                            .and_then(|_| stream.flush())
                            .is_ok();
                        (id, ok, frame.len() as u64, is_delta)
                    })
                })
                .collect();
            for h in handles {
                if let Ok((id, ok, wire_len, is_delta)) = h.join() {
                    if ok {
                        shared
                            .publish_wire_bytes
                            .fetch_add(wire_len, Ordering::Relaxed);
                        shared
                            .publish_dense_bytes
                            .fetch_add(dense_len, Ordering::Relaxed);
                        if is_delta {
                            shared.delta_frames.fetch_add(1, Ordering::Relaxed);
                        } else {
                            shared.full_frames.fetch_add(1, Ordering::Relaxed);
                        }
                    } else {
                        dead.push(id);
                    }
                }
            }
        })
        .expect("publish fan-out threads must not panic");
        let reached = total - dead.len();
        for id in dead {
            peers.remove(&id);
        }
        reached
    }

    /// Cumulative bytes-on-wire accounting across every `publish` so far.
    pub fn publish_stats(&self) -> PublishStats {
        PublishStats {
            wire_bytes: self.shared.publish_wire_bytes.load(Ordering::Relaxed),
            dense_bytes: self.shared.publish_dense_bytes.load(Ordering::Relaxed),
            delta_frames: self.shared.delta_frames.load(Ordering::Relaxed),
            full_frames: self.shared.full_frames.load(Ordering::Relaxed),
        }
    }

    /// Connections dropped because the peer's advertised version range
    /// did not overlap this build's.
    pub fn negotiation_failures(&self) -> u64 {
        self.shared.negotiation_failures.load(Ordering::Relaxed)
    }

    /// Send one frame to a single subscribed client, encoded at the
    /// connection's negotiated version. A failed write drops the peer and
    /// surfaces the error.
    pub fn send_to(&self, client_id: usize, msg: &Message) -> Result<(), WireError> {
        let mut peers = self.shared.peers.lock();
        let outcome = match peers.get_mut(&client_id) {
            Some(peer) => peer.send(msg),
            None => {
                return Err(WireError::Io {
                    kind: io::ErrorKind::NotConnected,
                    detail: format!("client {client_id} is not subscribed"),
                })
            }
        };
        if outcome.is_err() {
            peers.remove(&client_id);
        }
        outcome
    }

    /// Pop the next arrived update, blocking until `deadline`. `None`
    /// means the deadline passed (or the server is shutting down) with
    /// nothing queued.
    pub fn recv_update(&self, deadline: Instant) -> Option<InboundUpdate> {
        let mut inbox = self.shared.inbox_lock();
        loop {
            if let Some(u) = inbox.pop_front() {
                return Some(u);
            }
            if self.shared.shutdown.load(Ordering::Acquire) {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .shared
                .inbox_cv
                .wait_timeout(inbox, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inbox = guard;
        }
    }

    /// Run a TTL sweep on the registry's logical clock, dropping the
    /// write halves of newly expired peers. Returns the newly departed
    /// ids in ascending order.
    pub fn sweep_expired(&self) -> Vec<usize> {
        let now = self.shared.now_ms();
        let expired = self.shared.registry.lock().sweep(now);
        if !expired.is_empty() {
            let mut peers = self.shared.peers.lock();
            for id in &expired {
                peers.remove(id);
            }
        }
        expired
    }

    /// Every client that has ever departed (Bye or TTL expiry), ascending.
    pub fn departed(&self) -> Vec<usize> {
        self.shared.registry.lock().departed_clients()
    }

    /// Currently live client ids, ascending.
    pub fn live_clients(&self) -> Vec<usize> {
        self.shared.registry.lock().live_clients()
    }

    /// Whether `client_id` is registered and unexpired.
    pub fn is_live(&self, client_id: usize) -> bool {
        self.shared.registry.lock().is_live(client_id)
    }

    /// Number of currently live clients.
    pub fn client_count(&self) -> usize {
        self.shared.registry.lock().len()
    }

    /// Messages observed from `client_id` (heartbeats included), if live.
    pub fn messages_from(&self, client_id: usize) -> Option<u64> {
        self.shared
            .registry
            .lock()
            .entry(client_id)
            .map(|e| e.messages)
    }

    /// Orderly shutdown: tell every connected client `Bye`, stop the
    /// accept loop, and join all background threads. Idempotent; also
    /// runs on `Drop`.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        {
            let mut peers = self.shared.peers.lock();
            for (&id, peer) in peers.iter_mut() {
                let _ = peer.send(&Message::Bye {
                    client_id: id as u64,
                });
            }
            peers.clear();
        }
        self.shared.inbox_cv.notify_all();
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.addr)
            .field("live", &self.client_count())
            .finish()
    }
}

/// Poll the nonblocking listener, spawning one receive thread per
/// connection; on shutdown, join them all before exiting.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(&shared);
                if let Ok(h) = thread::Builder::new()
                    .name("feddrl-net-conn".into())
                    .spawn(move || conn_loop(stream, conn_shared))
                {
                    conns.push(h);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
    for h in conns {
        let _ = h.join();
    }
}

/// Encode the new model as an exact sparse delta against `base_version`,
/// if that base is in the ring, shape-compatible, and the delta actually
/// beats the dense frame on the wire. Changed positions are compared by
/// *bit pattern*, so reconstruction is exact even across NaNs and signed
/// zeros.
fn encode_delta(
    ring: &VecDeque<(u64, Vec<f32>)>,
    base_version: u64,
    version: u64,
    weights: &[f32],
) -> Option<Vec<u8>> {
    let (_, base) = ring.iter().find(|(v, _)| *v == base_version)?;
    if base.len() != weights.len() || weights.len() > u32::MAX as usize {
        return None;
    }
    let mut indices: Vec<u32> = Vec::new();
    let mut values: Vec<f32> = Vec::new();
    for (i, (&b, &w)) in base.iter().zip(weights).enumerate() {
        if b.to_bits() != w.to_bits() {
            indices.push(i as u32);
            values.push(w);
        }
    }
    // Delta payload: 4 u64 header fields + 8 bytes per entry; dense
    // payload: 2 u64s + 4 bytes per weight. Send the smaller frame.
    let delta_payload = 32 + indices.len() * 8;
    let dense_payload = 16 + weights.len() * 4;
    if delta_payload >= dense_payload {
        return None;
    }
    Some(
        Message::ModelPublishDelta(DeltaMsg {
            version,
            base_version,
            total_len: weights.len() as u64,
            indices,
            values,
        })
        .encode(),
    )
}

/// One connection's receive loop: frames off the socket, routed by kind.
fn conn_loop(mut stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    let mut me: Option<usize> = None;
    // The loop ends on clean EOF, shutdown, a protocol violation, a
    // failed negotiation, or a hard socket error — drop the connection
    // either way. An unannounced disappearance is the TTL sweep's job to
    // retire.
    while let Ok(Some(msg)) = read_frame_interruptible(&mut stream, &shared.shutdown) {
        let now = shared.now_ms();
        match msg {
            Message::Hello {
                client_id,
                min_version,
                max_version,
            } => {
                let id = client_id as usize;
                let version = match negotiate(min_version, max_version) {
                    Ok(v) => v,
                    Err(_) => {
                        // No common version: count it and hang up. We
                        // cannot even promise the peer would decode a
                        // reply frame.
                        shared.negotiation_failures.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                };
                // A departed id may not rejoin (churn semantics). For a
                // live one the `HelloAck` must be written and the peer
                // entry must exist *before* the registry counts it, so
                // `wait_for_clients` returning guarantees the ack
                // precedes any `publish` on this socket and the publish
                // reaches everyone waited for.
                if !shared.registry.lock().is_departed(id) {
                    if let Ok(stream) = stream.try_clone() {
                        let mut peer = Peer { stream, version };
                        // v1 predates HelloAck; such connections proceed
                        // exactly as before the handshake existed.
                        if version >= 2 {
                            let _ = peer.send(&Message::HelloAck { client_id, version });
                        }
                        shared.peers.lock().insert(id, peer);
                        me = Some(id);
                    }
                }
                shared.registry.lock().touch(id, now);
            }
            Message::Heartbeat { client_id } => {
                shared.registry.lock().touch(client_id as usize, now);
            }
            Message::PublishAck { client_id, version } => {
                shared
                    .registry
                    .lock()
                    .record_ack(client_id as usize, version, now);
            }
            Message::Update(update) => {
                shared.registry.lock().touch(update.client_id as usize, now);
                let mut inbox = shared.inbox_lock();
                inbox.push_back(InboundUpdate {
                    msg: update,
                    masked: None,
                    arrival: Instant::now(),
                });
                drop(inbox);
                shared.inbox_cv.notify_all();
            }
            Message::MaskedUpdate(m) => {
                shared.registry.lock().touch(m.client_id as usize, now);
                let masked = Some(MaskedWireInfo {
                    keep_ratio: m.keep_ratio,
                    total_len: m.total_len as usize,
                });
                let mut inbox = shared.inbox_lock();
                inbox.push_back(InboundUpdate {
                    msg: UpdateMsg {
                        client_id: m.client_id,
                        round: m.round,
                        model_version: m.model_version,
                        staleness: m.staleness,
                        n_samples: m.n_samples,
                        loss_before: m.loss_before,
                        loss_after: m.loss_after,
                        weights: m.kept_weights,
                    },
                    masked,
                    arrival: Instant::now(),
                });
                drop(inbox);
                shared.inbox_cv.notify_all();
            }
            Message::Bye { client_id } => {
                let id = client_id as usize;
                shared.registry.lock().mark_departed(id);
                shared.peers.lock().remove(&id);
                me = None;
                break;
            }
            // Server-bound kinds only on this socket; a client pushing
            // publishes, dispatches or acks-of-acks is violating the
            // protocol.
            Message::ModelPublish { .. }
            | Message::ModelPublishDelta(_)
            | Message::TrainRequest { .. }
            | Message::HelloAck { .. } => break,
        }
    }
    if let Some(id) = me {
        shared.peers.lock().remove(&id);
    }
}

/// Read one frame like [`crate::wire::read_frame`], but on a socket with
/// a read timeout: `WouldBlock`/`TimedOut` become shutdown-flag checks
/// instead of errors, so receive threads stay joinable.
fn read_frame_interruptible(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
) -> Result<Option<Message>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    if read_fill(stream, &mut header, shutdown, true)?.is_none() {
        return Ok(None);
    }
    let fh = FrameHeader::parse(&header)?;
    let mut payload = vec![0u8; fh.payload_len];
    if read_fill(stream, &mut payload, shutdown, false)?.is_none() {
        return Ok(None);
    }
    decode_payload(fh.version, fh.kind, &payload).map(Some)
}

/// Fill `buf` completely, tolerating socket timeouts. `Ok(None)` means a
/// shutdown request interrupted the read, or — when `allow_eof_at_start`
/// — the peer closed cleanly before the first byte. EOF mid-buffer is a
/// [`WireError::Truncated`].
fn read_fill(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
    allow_eof_at_start: bool,
) -> Result<Option<()>, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        if shutdown.load(Ordering::Acquire) {
            return Ok(None);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && allow_eof_at_start {
                    return Ok(None);
                }
                return Err(WireError::Truncated {
                    needed: buf.len(),
                    got: filled,
                });
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Some(()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetServerBuilder;
    use crate::wire::{read_frame, write_frame, PROTOCOL_VERSION_MAX, PROTOCOL_VERSION_MIN};

    fn connect_and_hello(addr: SocketAddr, id: u64) -> TcpStream {
        let mut s = TcpStream::connect(addr).expect("connect");
        write_frame(
            &mut s,
            &Message::Hello {
                client_id: id,
                min_version: PROTOCOL_VERSION_MIN,
                max_version: PROTOCOL_VERSION_MAX,
            },
        )
        .expect("hello");
        match read_frame(&mut s).expect("frame").expect("not eof") {
            Message::HelloAck { client_id, version } => {
                assert_eq!(client_id, id);
                assert_eq!(version, PROTOCOL_VERSION_MAX);
            }
            other => panic!("expected HelloAck, got {other:?}"),
        }
        s
    }

    /// Subscribe like a v1-only build: bare-id `Hello`, no `HelloAck`
    /// expected (the server must not send v2 kinds to a v1 peer).
    fn connect_and_hello_v1(addr: SocketAddr, id: u64) -> TcpStream {
        let mut s = TcpStream::connect(addr).expect("connect");
        let frame = Message::Hello {
            client_id: id,
            min_version: 1,
            max_version: 1,
        }
        .encode_v(1);
        s.write_all(&frame).expect("hello");
        s.flush().expect("flush");
        s
    }

    #[test]
    fn hello_registers_and_publish_reaches_every_peer() {
        let mut server = NetServerBuilder::new().build().expect("bind");
        let addr = server.local_addr();
        let mut a = connect_and_hello(addr, 0);
        let mut b = connect_and_hello(addr, 1);
        server
            .wait_for_clients(2, Duration::from_secs(5))
            .expect("both subscribed");
        assert_eq!(server.live_clients(), vec![0, 1]);

        let reached = server.publish(7, &[1.0, -2.5, 3.25]);
        assert_eq!(reached, 2);
        for s in [&mut a, &mut b] {
            match read_frame(s).expect("frame").expect("not eof") {
                Message::ModelPublish { version, weights } => {
                    assert_eq!(version, 7);
                    assert_eq!(weights, vec![1.0, -2.5, 3.25]);
                }
                other => panic!("expected ModelPublish, got {other:?}"),
            }
        }
        server.shutdown();
    }

    #[test]
    fn update_lands_in_inbox_and_bye_departs() {
        let mut server = NetServerBuilder::new().build().expect("bind");
        let addr = server.local_addr();
        let mut c = connect_and_hello(addr, 4);
        server
            .wait_for_clients(1, Duration::from_secs(5))
            .expect("subscribed");

        let update = UpdateMsg {
            client_id: 4,
            round: 2,
            model_version: 9,
            staleness: 0,
            n_samples: 32,
            loss_before: 1.5,
            loss_after: 0.5,
            weights: vec![0.25; 4],
        };
        write_frame(&mut c, &Message::Update(update.clone())).expect("send update");
        let inbound = server
            .recv_update(Instant::now() + Duration::from_secs(5))
            .expect("update arrives");
        assert_eq!(inbound.msg, update);

        write_frame(&mut c, &Message::Bye { client_id: 4 }).expect("bye");
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.is_live(4) && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(2));
        }
        assert!(!server.is_live(4));
        assert_eq!(server.departed(), vec![4]);
        server.shutdown();
    }

    #[test]
    fn silent_client_expires_via_ttl_sweep() {
        let mut server = NetServerBuilder::new()
            .ttl(Duration::from_millis(50))
            .build()
            .expect("bind");
        let addr = server.local_addr();
        let _c = connect_and_hello(addr, 11);
        server
            .wait_for_clients(1, Duration::from_secs(5))
            .expect("subscribed");
        assert!(server.sweep_expired().is_empty(), "fresh client is live");
        thread::sleep(Duration::from_millis(120));
        assert_eq!(server.sweep_expired(), vec![11]);
        assert_eq!(server.departed(), vec![11]);
        assert!(!server.is_live(11));
        server.shutdown();
    }

    #[test]
    fn recv_update_times_out_empty() {
        let mut server = NetServerBuilder::new().build().expect("bind");
        let got = server.recv_update(Instant::now() + Duration::from_millis(30));
        assert!(got.is_none());
        server.shutdown();
    }

    #[test]
    fn shutdown_sends_bye_to_connected_clients() {
        let mut server = NetServerBuilder::new().build().expect("bind");
        let addr = server.local_addr();
        let mut c = connect_and_hello(addr, 3);
        server
            .wait_for_clients(1, Duration::from_secs(5))
            .expect("subscribed");
        server.shutdown();
        match read_frame(&mut c).expect("frame") {
            Some(Message::Bye { client_id }) => assert_eq!(client_id, 3),
            other => panic!("expected Bye, got {other:?}"),
        }
    }
}
