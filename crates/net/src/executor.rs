//! [`NetworkExecutor`]: the [`RoundExecutor`] that runs rounds over real
//! sockets instead of the discrete-event simulator.
//!
//! The unchanged `Session`/`SelectionPolicy`/`Strategy` stack drives it
//! exactly like the in-process executors: `publish_model` fans the
//! current global model to every subscribed worker, `execute` sends
//! `TrainRequest` frames to the selected clients and collects their
//! `Update` frames off the server inbox. Two collection modes mirror the
//! simulator's taxonomy:
//!
//! * **Barrier** — wait for every dispatched client (or the round
//!   timeout). With all workers live this reproduces the
//!   `IdealExecutor` contract byte-for-byte: updates in sampling order,
//!   zero staleness, `hetero: None`.
//! * **Buffered** — aggregate as soon as `buffer_size` updates arrive;
//!   clients still in flight are skipped as busy next round, and each
//!   accepted update's staleness is *measured* as the gap between the
//!   version it trained on and the version counter at aggregation, the
//!   networked analogue of the simulator's `BufferedExecutor`.
//!
//! Departures surface through the same channel the simulator's churn
//! uses: the registry's TTL sweep feeds
//! [`RoundExecutor::departed_clients`], which the session hands to
//! selection as `SelectionContext::departed`.
//!
//! With a [`WireMasking`] policy attached, deadline-pressed clients get
//! sub-model dispatches over the wire: `execute` picks each client's
//! keep ratio from the fleet's *predicted* completion times (the same
//! largest-fitting-ratio rule the in-process `DeadlineExecutor` applies,
//! so both paths make identical dispatch decisions), sends
//! `TrainRequest { keep_ratio < 1 }`, and reassembles the returning
//! compact `MaskedUpdate` by re-deriving the structured mask from the
//! shared seed and scattering the kept weights into a full-length
//! vector with the mask attached — exactly what the in-process masked
//! path hands to `masked_weighted_average`.
//!
//! A shared [`NetTelemetry`] handle (clone it *before* boxing the
//! executor into a session) accumulates per-dispatch round-trip times,
//! measured staleness, and the server's publish bytes-on-wire counters
//! for benches to report.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use feddrl_fl::client::{dispatch_mask, ClientUpdate};
use feddrl_fl::executor::{
    RoundExecutor, RoundOutcome, StalenessDiscount, StructuredDropoutConfig, TrainFn,
};
use feddrl_fl::history::HeteroRoundRecord;
use feddrl_nn::model::Sequential;
use feddrl_sim::device::FleetView;

use crate::server::{MaskedWireInfo, NetServer, PublishStats};
use crate::wire::{Message, UpdateMsg};

/// How `execute` decides a round is over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetMode {
    /// Wait for every dispatched client (round barrier).
    Barrier,
    /// Aggregate once this many updates have arrived, leaving the rest
    /// in flight.
    Buffered {
        /// Updates per aggregation; must be positive.
        buffer_size: usize,
    },
}

/// Measured transport telemetry, shared out of the executor via
/// [`NetworkExecutor::telemetry`].
#[derive(Debug, Clone, Default)]
pub struct NetTelemetry {
    /// Round-trip time of each accepted update, dispatch to arrival, ms.
    pub rtt_ms: Vec<f64>,
    /// Measured staleness (model versions) of each accepted update.
    pub staleness: Vec<u64>,
    /// `TrainRequest` frames successfully sent.
    pub dispatched: usize,
    /// Dispatches that failed outright (client departed or socket dead).
    pub failed_dispatches: usize,
    /// Dispatches abandoned at the round timeout (barrier mode).
    pub timed_out: usize,
    /// Updates that arrived as compact `MaskedUpdate` frames.
    pub masked_updates: usize,
    /// The server's cumulative publish bytes-on-wire accounting,
    /// mirrored here after every `publish_model` so it stays readable
    /// once the executor is boxed into a session.
    pub publish: PublishStats,
}

impl NetTelemetry {
    /// The `pct`-percentile (in `[0, 1]`) of observed RTTs in
    /// milliseconds — nearest-rank on the sorted samples (index
    /// `⌈pct · N⌉ − 1`), the same quantile convention as
    /// `feddrl_sim`'s `completion_percentile_s`, so measured-vs-predicted
    /// comparisons compare like with like; 0.0 when empty.
    ///
    /// # Panics
    /// Panics when `pct` is outside `[0, 1]`.
    pub fn rtt_percentile_ms(&self, pct: f64) -> f64 {
        assert!((0.0..=1.0).contains(&pct), "percentile must be in [0, 1]");
        if self.rtt_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.rtt_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("RTTs are finite"));
        let idx = ((sorted.len() as f64 * pct).ceil() as usize)
            .saturating_sub(1)
            .min(sorted.len() - 1);
        sorted[idx]
    }

    /// The `pct`-th percentile of observed RTTs with `pct` in `[0, 100]`.
    #[deprecated(note = "use `rtt_percentile_ms` (quantile in [0, 1]) instead")]
    pub fn percentile_rtt_ms(&self, pct: f64) -> f64 {
        self.rtt_percentile_ms(pct / 100.0)
    }

    /// Median observed round-trip time in milliseconds.
    pub fn p50_rtt_ms(&self) -> f64 {
        self.rtt_percentile_ms(0.5)
    }

    /// Tail (99th percentile) round-trip time in milliseconds.
    pub fn p99_rtt_ms(&self) -> f64 {
        self.rtt_percentile_ms(0.99)
    }

    /// Mean measured staleness over every accepted update (0.0 when
    /// empty).
    pub fn mean_staleness(&self) -> f64 {
        if self.staleness.is_empty() {
            return 0.0;
        }
        self.staleness.iter().map(|&s| s as f64).sum::<f64>() / self.staleness.len() as f64
    }
}

/// The wire-masking policy: everything the executor needs to decide a
/// sub-model dispatch per client and to re-derive the returning mask.
///
/// Keep ratios come from the fleet's *predicted* completion times — the
/// same `largest_fitting` rule over the same grid the in-process
/// `DeadlineExecutor` applies — so the networked and simulated paths
/// make identical dispatch decisions for the same fleet and deadline.
/// The `model` and `seed` must match the workers' (they are the mask
/// derivation inputs shared through `dispatch_mask`).
pub struct WireMasking {
    /// The model architecture masks are derived over (never trained
    /// here — only its layer shapes matter).
    pub model: Sequential,
    /// The run seed shared with the workers.
    pub seed: u64,
    /// The keep-ratio grid to fit into the deadline.
    pub grid: StructuredDropoutConfig,
    /// The fleet whose predicted per-client completion times drive the
    /// keep-ratio choice.
    pub fleet: FleetView,
    /// Full-model upload payload in bytes (the prediction's input).
    pub upload_bytes: u64,
    /// The round deadline (seconds, virtual) dispatches must fit.
    pub deadline_s: f64,
}

impl WireMasking {
    /// The keep ratio to dispatch to `client_id`: 1.0 when the full
    /// model is predicted to fit the deadline, otherwise the largest
    /// grid ratio that does (or 1.0 again when even the smallest
    /// sub-model cannot — a predicted dropout trains in full, exactly
    /// as the in-process `DeadlineExecutor` treats it).
    fn keep_ratio_for(&self, client_id: usize) -> f64 {
        let profile = self.fleet.profile(client_id);
        let time_for = |r: f64| self.profile_time(&profile, r);
        if time_for(1.0) <= self.deadline_s {
            return 1.0;
        }
        self.grid
            .largest_fitting(self.deadline_s, time_for)
            .unwrap_or(1.0)
    }

    fn profile_time(&self, profile: &feddrl_sim::device::DeviceProfile, ratio: f64) -> f64 {
        profile.completion_time_at(self.upload_bytes, ratio, None, 0.0)
    }
}

/// A dispatch awaiting its update.
#[derive(Debug, Clone, Copy)]
struct PendingDispatch {
    sent: Instant,
}

/// The networked round executor. See the module docs for the contract.
pub struct NetworkExecutor {
    server: NetServer,
    mode: NetMode,
    round_timeout: Duration,
    discount: StalenessDiscount,
    server_mix: f64,
    /// Model version counter: incremented after every aggregation, sent
    /// with every publish, and the baseline for measured staleness.
    version: u64,
    /// Clients with a `TrainRequest` outstanding.
    pending: BTreeMap<usize, PendingDispatch>,
    /// Cumulative departed count at the end of the previous round, for
    /// the per-round `departed` delta in buffered hetero records.
    departed_seen: usize,
    /// Sub-model dispatch policy; `None` sends every client the full
    /// model (`keep_ratio: 1.0`), byte-identical to the pre-masking
    /// executor.
    masking: Option<WireMasking>,
    /// Keep ratios already decided per client (the prediction is
    /// time-invariant, so one derivation per client suffices).
    ratio_cache: BTreeMap<usize, f64>,
    telemetry: Arc<Mutex<NetTelemetry>>,
}

impl NetworkExecutor {
    /// A round-barrier executor over `server` (10 s round timeout).
    pub fn barrier(server: NetServer) -> Self {
        NetworkExecutor {
            server,
            mode: NetMode::Barrier,
            round_timeout: Duration::from_secs(10),
            discount: StalenessDiscount::None,
            server_mix: 1.0,
            version: 0,
            pending: BTreeMap::new(),
            departed_seen: 0,
            masking: None,
            ratio_cache: BTreeMap::new(),
            telemetry: Arc::new(Mutex::new(NetTelemetry::default())),
        }
    }

    /// A buffered-asynchronous executor aggregating every `buffer_size`
    /// arrivals.
    ///
    /// # Panics
    /// Panics when `buffer_size` is zero.
    pub fn buffered(server: NetServer, buffer_size: usize) -> Self {
        assert!(buffer_size > 0, "buffer size must be positive");
        let mut ex = Self::barrier(server);
        ex.mode = NetMode::Buffered { buffer_size };
        ex
    }

    /// Replace the per-round collection timeout.
    pub fn with_round_timeout(mut self, timeout: Duration) -> Self {
        self.round_timeout = timeout;
        self
    }

    /// Discount applied by staleness-aware strategies to stale updates.
    pub fn with_staleness_discount(mut self, discount: StalenessDiscount) -> Self {
        self.discount = discount;
        self
    }

    /// Server-side mixing rate `eta` in `(0, 1]` for asynchronous blends.
    ///
    /// # Panics
    /// Panics when `eta` is outside `(0, 1]` or not finite.
    pub fn with_server_mix(mut self, eta: f64) -> Self {
        assert!(
            eta.is_finite() && eta > 0.0 && eta <= 1.0,
            "server mix must be in (0, 1]"
        );
        self.server_mix = eta;
        self
    }

    /// Attach a wire-masking policy: deadline-pressed clients get
    /// sub-model dispatches, answered with compact `MaskedUpdate`
    /// frames.
    pub fn with_wire_masking(mut self, masking: WireMasking) -> Self {
        self.masking = Some(masking);
        self.ratio_cache.clear();
        self
    }

    /// Shared handle onto the measured telemetry. Clone it before boxing
    /// the executor into a `Session`; it stays readable afterwards.
    pub fn telemetry(&self) -> Arc<Mutex<NetTelemetry>> {
        Arc::clone(&self.telemetry)
    }

    /// The underlying server endpoint (e.g. to await subscriptions
    /// before building the session).
    pub fn server(&self) -> &NetServer {
        &self.server
    }

    /// The current model version counter.
    pub fn model_version(&self) -> u64 {
        self.version
    }

    /// The keep ratio to dispatch to `cid` under the current masking
    /// policy (1.0 without one), memoized per client.
    fn dispatch_ratio(&mut self, cid: usize) -> f64 {
        let Some(masking) = &self.masking else {
            return 1.0;
        };
        *self
            .ratio_cache
            .entry(cid)
            .or_insert_with(|| masking.keep_ratio_for(cid))
    }

    fn to_update(msg: UpdateMsg, staleness: usize) -> ClientUpdate {
        ClientUpdate {
            client_id: msg.client_id as usize,
            weights: msg.weights,
            n_samples: msg.n_samples as usize,
            loss_before: msg.loss_before,
            loss_after: msg.loss_after,
            staleness,
            mask: None,
        }
    }

    /// Rebuild the full-length masked [`ClientUpdate`] from a compact
    /// `MaskedUpdate` arrival: re-derive the structured mask from the
    /// shared seed (the same derivation the worker ran) and scatter the
    /// kept weights back into position. `None` when the re-derived mask
    /// disagrees with the frame's shape — a client that derived from
    /// different inputs — in which case the update is dropped rather
    /// than aggregated misaligned.
    fn reassemble_masked(
        masking: &WireMasking,
        msg: UpdateMsg,
        info: MaskedWireInfo,
        staleness: usize,
    ) -> Option<ClientUpdate> {
        let mask = dispatch_mask(
            &masking.model,
            masking.seed,
            msg.round,
            msg.client_id,
            info.keep_ratio,
        );
        if mask.len() != info.total_len || mask.kept() != msg.weights.len() {
            return None;
        }
        let mut full = vec![0.0f32; info.total_len];
        let mut kept = msg.weights.iter();
        for (p, slot) in full.iter_mut().enumerate() {
            if mask.keeps(p) {
                *slot = *kept.next().expect("kept count checked above");
            }
        }
        Some(ClientUpdate {
            client_id: msg.client_id as usize,
            weights: full,
            n_samples: msg.n_samples as usize,
            loss_before: msg.loss_before,
            loss_after: msg.loss_after,
            staleness,
            mask: Some(mask),
        })
    }
}

impl std::fmt::Debug for NetworkExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetworkExecutor")
            .field("mode", &self.mode)
            .field("version", &self.version)
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl RoundExecutor for NetworkExecutor {
    fn publish_model(&mut self, _round: usize, global: &[f32]) {
        let _ = self.server.publish(self.version, global);
        // Mirror the server's cumulative bytes-on-wire counters into the
        // shared telemetry so they stay readable once this executor is
        // boxed into a session.
        self.telemetry.lock().publish = self.server.publish_stats();
    }

    /// Training happens on the remote workers, so the session's `train`
    /// callback is deliberately ignored here — the closure workers
    /// registered with [`crate::client::run_client`] plays its role.
    fn execute(&mut self, round: usize, selected: &[usize], _train: &TrainFn<'_>) -> RoundOutcome {
        let round_start = Instant::now();

        // Dispatches to clients that departed while in flight are lost.
        let departed = self.server.departed();
        let before = self.pending.len();
        self.pending.retain(|cid, _| !departed.contains(cid));
        let lost_in_flight = before - self.pending.len();

        let mut failed = lost_in_flight;
        let mut busy = 0usize;
        let mut dispatched: Vec<usize> = Vec::new();
        for &cid in selected {
            if self.pending.contains_key(&cid) {
                busy += 1; // still working on an earlier version
                continue;
            }
            let request = Message::TrainRequest {
                round: round as u64,
                keep_ratio: self.dispatch_ratio(cid),
            };
            // Stamp *before* the send: on loopback the whole reply can
            // land before the write syscall returns, and an after-send
            // stamp would clock such round trips at zero.
            let sent = Instant::now();
            if self.server.is_live(cid) && self.server.send_to(cid, &request).is_ok() {
                self.pending.insert(cid, PendingDispatch { sent });
                dispatched.push(cid);
            } else {
                failed += 1;
            }
        }

        let want = match self.mode {
            NetMode::Barrier => dispatched.len(),
            NetMode::Buffered { buffer_size } => buffer_size.min(self.pending.len()),
        };
        let deadline = round_start + self.round_timeout;
        let mut arrived: Vec<(usize, ClientUpdate)> = Vec::with_capacity(want);
        while arrived.len() < want {
            let Some(inbound) = self.server.recv_update(deadline) else {
                break; // round timeout (or shutdown) with updates missing
            };
            let cid = inbound.msg.client_id as usize;
            if !self.pending.contains_key(&cid) {
                continue; // unsolicited or duplicate update
            }
            if matches!(self.mode, NetMode::Barrier) && inbound.msg.round != round as u64 {
                continue; // leftover answer to an abandoned earlier round
            }
            let pending = self.pending.remove(&cid).expect("pending checked above");
            let rtt_ms = inbound
                .arrival
                .saturating_duration_since(pending.sent)
                .as_secs_f64()
                * 1e3;
            let staleness = self.version.saturating_sub(inbound.msg.model_version);
            let masked_arrival = inbound.masked.is_some();
            let update = if let Some(info) = inbound.masked {
                // A masked frame with no masking policy attached (or one
                // whose re-derived mask disagrees with its shape) cannot
                // be scattered; drop it rather than aggregate misaligned.
                let Some(masking) = &self.masking else {
                    continue;
                };
                match Self::reassemble_masked(masking, inbound.msg, info, staleness as usize) {
                    Some(update) => update,
                    None => continue,
                }
            } else {
                Self::to_update(inbound.msg, staleness as usize)
            };
            {
                let mut t = self.telemetry.lock();
                t.rtt_ms.push(rtt_ms);
                t.staleness.push(staleness);
                if masked_arrival {
                    t.masked_updates += 1;
                }
            }
            arrived.push((cid, update));
        }

        let mut timed_out = 0usize;
        if matches!(self.mode, NetMode::Barrier) {
            // Abandon what the barrier could not collect so the next
            // round's dispatches start clean.
            for cid in &dispatched {
                if self.pending.remove(cid).is_some() {
                    timed_out += 1;
                }
            }
        }
        {
            let mut t = self.telemetry.lock();
            t.dispatched += dispatched.len();
            t.failed_dispatches += failed;
            t.timed_out += timed_out;
        }
        self.version += 1;

        match self.mode {
            NetMode::Barrier => {
                // Arrival order is a race; the ideal contract is sampling
                // order, so reassemble along `selected`.
                let mut by_id: BTreeMap<usize, ClientUpdate> = arrived.into_iter().collect();
                let updates: Vec<ClientUpdate> = selected
                    .iter()
                    .filter_map(|cid| by_id.remove(cid))
                    .collect();
                RoundOutcome {
                    updates,
                    hetero: None,
                }
            }
            NetMode::Buffered { .. } => {
                let departed_total = self.server.departed().len();
                let newly_departed = departed_total.saturating_sub(self.departed_seen);
                self.departed_seen = departed_total;
                let staleness: Vec<usize> = arrived.iter().map(|(_, u)| u.staleness).collect();
                let aggregated_ids: Vec<usize> = arrived.iter().map(|(cid, _)| *cid).collect();
                let masked = arrived.iter().filter(|(_, u)| u.mask.is_some()).count();
                let hetero = HeteroRoundRecord {
                    // Measured wall-clock of the aggregation, where the
                    // simulator would report virtual time.
                    sim_time_s: round_start.elapsed().as_secs_f64(),
                    dropouts: failed + timed_out,
                    stragglers: 0,
                    carried_in: 0,
                    busy,
                    buffered: 0,
                    joined: 0,
                    departed: newly_departed,
                    masked,
                    staleness,
                    aggregated_ids,
                };
                RoundOutcome {
                    updates: arrived.into_iter().map(|(_, u)| u).collect(),
                    hetero: Some(hetero),
                }
            }
        }
    }

    fn departed_clients(&self) -> Vec<usize> {
        // Sweep first so silence observed since the last round surfaces
        // as departure before selection runs.
        let _ = self.server.sweep_expired();
        self.server.departed()
    }

    fn in_flight_clients(&self) -> Vec<usize> {
        self.pending.keys().copied().collect()
    }

    fn staleness_discount(&self) -> StalenessDiscount {
        self.discount
    }

    fn server_mix(&self) -> f64 {
        self.server_mix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_percentiles_and_means() {
        let t = NetTelemetry {
            rtt_ms: vec![5.0, 1.0, 3.0, 2.0, 4.0],
            staleness: vec![0, 1, 2],
            ..NetTelemetry::default()
        };
        assert_eq!(t.p50_rtt_ms(), 3.0);
        assert_eq!(t.p99_rtt_ms(), 5.0);
        assert!((t.mean_staleness() - 1.0).abs() < 1e-12);
        let empty = NetTelemetry::default();
        assert_eq!(empty.p50_rtt_ms(), 0.0);
        assert_eq!(empty.mean_staleness(), 0.0);
    }

    /// Regression for the nearest-rank fix: over 100 samples `1..=100`,
    /// p50 is the 50th value (the old `((N−1)·p).round()` indexing read
    /// the 51st) and p99 the 99th — the exact definition
    /// `feddrl_sim::device` applies to fleet completion times.
    #[test]
    fn percentiles_are_true_nearest_rank() {
        let t = NetTelemetry {
            rtt_ms: (1..=100).rev().map(f64::from).collect(),
            ..NetTelemetry::default()
        };
        assert_eq!(t.p50_rtt_ms(), 50.0);
        assert_eq!(t.p99_rtt_ms(), 99.0);
        assert_eq!(t.rtt_percentile_ms(0.0), 1.0);
        assert_eq!(t.rtt_percentile_ms(1.0), 100.0);
        // The deprecated percent-valued accessor stays a thin wrapper.
        #[allow(deprecated)]
        {
            assert_eq!(t.percentile_rtt_ms(50.0), t.rtt_percentile_ms(0.5));
        }
        // Odd N keeps the textbook median.
        let t = NetTelemetry {
            rtt_ms: vec![9.0, 1.0, 5.0],
            ..NetTelemetry::default()
        };
        assert_eq!(t.p50_rtt_ms(), 5.0);
    }

    #[test]
    #[should_panic(expected = "buffer size must be positive")]
    fn zero_buffer_is_rejected() {
        use crate::builder::NetServerBuilder;
        let server = NetServerBuilder::new().build().expect("bind");
        let _ = NetworkExecutor::buffered(server, 0);
    }

    #[test]
    #[should_panic(expected = "server mix must be in (0, 1]")]
    fn out_of_range_mix_is_rejected() {
        use crate::builder::NetServerBuilder;
        let server = NetServerBuilder::new().build().expect("bind");
        let _ = NetworkExecutor::barrier(server).with_server_mix(1.5);
    }

    /// The wire-masking keep-ratio rule must be the in-process
    /// `DeadlineExecutor`'s: full model when it fits, else the largest
    /// fitting grid ratio, else full model for a predicted dropout.
    #[test]
    fn wire_masking_picks_the_largest_fitting_ratio() {
        use feddrl_nn::model::Sequential;
        use feddrl_sim::device::{FleetConfig, FleetView};

        let masking_with = |deadline_s: f64| WireMasking {
            model: Sequential::new(),
            seed: 7,
            grid: StructuredDropoutConfig::default(),
            fleet: FleetView::new(16, &FleetConfig::default()),
            upload_bytes: 50_000,
            deadline_s,
        };
        // Nothing fits: a predicted dropout still trains in full.
        assert_eq!(masking_with(0.0).keep_ratio_for(0), 1.0);
        // Everything fits: full model everywhere.
        assert_eq!(masking_with(1e9).keep_ratio_for(0), 1.0);
        // A deadline exactly at the 0.625 sub-model's predicted time
        // fits 0.625 (largest fitting) but not the full model, since
        // local compute scales with the ratio.
        let probe = masking_with(0.0);
        let t_625 = probe.profile_time(&probe.fleet.profile(0), 0.625);
        assert_eq!(masking_with(t_625).keep_ratio_for(0), 0.625);
    }
}
