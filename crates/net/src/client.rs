//! The federated client's network loop: subscribe, train on demand,
//! report updates, heartbeat in the background.
//!
//! [`run_client`] is the whole worker: it connects, announces itself
//! with a `Hello` carrying its protocol version range, then blocks on
//! the socket handling `HelloAck` (pin the negotiated version),
//! `ModelPublish` / `ModelPublishDelta` (remember the latest global
//! model, acknowledging each cached version with `PublishAck` on v2+
//! connections), `TrainRequest` (call the caller-supplied training
//! closure on the remembered weights and send the resulting `Update` —
//! or, for a sub-model dispatch on a v2+ connection, a compact
//! `MaskedUpdate` carrying only the mask's kept positions), and `Bye`
//! (leave). A background thread shares the write half of the socket and
//! emits `Heartbeat` frames so the server's liveness TTL stays refreshed
//! even while the worker sits idle between rounds.
//!
//! The training closure is deliberately transport-agnostic — it maps a
//! [`TrainOrder`] plus the current global weights to a
//! [`ClientUpdate`], so callers plug in
//! the repo's real `run_local_round` or a deterministic stub unchanged.
//! An optional [`ClientConfig::train_delay`] sleeps before training,
//! letting benches emulate a heterogeneous device fleet's compute times
//! over real sockets.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use feddrl_fl::client::ClientUpdate;

use crate::wire::{
    read_frame, write_frame, MaskedUpdateMsg, Message, UpdateMsg, WireError, PROTOCOL_VERSION_MAX,
    PROTOCOL_VERSION_MIN,
};

/// Connection settings for one worker process/thread. Prefer
/// constructing through
/// [`NetClientBuilder`](crate::builder::NetClientBuilder), which
/// validates these at `build()` time.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address — the server's OS-assigned
    /// [`local_addr`](crate::server::NetServer::local_addr), not a fixed
    /// port.
    pub server_addr: String,
    /// This worker's client id, echoed in every frame it sends.
    pub client_id: usize,
    /// Heartbeat period; keep it well under the server's liveness TTL.
    pub heartbeat: Duration,
    /// Artificial compute delay slept before each local training call —
    /// zero by default, nonzero to emulate a slow device over real
    /// sockets.
    pub train_delay: Duration,
}

impl ClientConfig {
    /// Defaults: 500 ms heartbeat, no artificial training delay.
    #[deprecated(note = "construct through `NetClientBuilder` instead")]
    pub fn new(server_addr: impl Into<String>, client_id: usize) -> Self {
        ClientConfig {
            server_addr: server_addr.into(),
            client_id,
            heartbeat: Duration::from_millis(500),
            train_delay: Duration::ZERO,
        }
    }

    /// Replace the heartbeat period.
    #[deprecated(note = "use `NetClientBuilder::heartbeat` instead")]
    pub fn with_heartbeat(mut self, period: Duration) -> Self {
        self.heartbeat = period;
        self
    }

    /// Replace the artificial per-round training delay.
    #[deprecated(note = "use `NetClientBuilder::train_delay` instead")]
    pub fn with_train_delay(mut self, delay: Duration) -> Self {
        self.train_delay = delay;
        self
    }
}

/// One training demand from the server, as seen by the worker's closure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainOrder {
    /// The server's round counter, echoed back in the update.
    pub round: u64,
    /// Structured-dropout keep ratio requested for this round (1.0 for
    /// full-model training).
    pub keep_ratio: f64,
    /// Version of the global model the worker is about to train on; the
    /// server derives measured staleness from it at aggregation time.
    pub model_version: u64,
}

/// What a worker did over its lifetime, returned when the loop ends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientReport {
    /// Training rounds completed and reported.
    pub rounds_trained: usize,
    /// Model publishes applied (dense frames plus applied deltas).
    pub publishes_seen: usize,
    /// The last model version received.
    pub last_version: u64,
    /// The protocol version pinned by the server's `HelloAck`, or 0 when
    /// the connection never saw one (a pre-handshake v1 server).
    pub negotiated_version: u8,
    /// `ModelPublishDelta` frames received (applied or not).
    pub delta_publishes_seen: usize,
    /// Rounds answered with a compact `MaskedUpdate` rather than a dense
    /// `Update`.
    pub masked_rounds: usize,
}

fn lock_writer(writer: &Mutex<TcpStream>) -> MutexGuard<'_, TcpStream> {
    writer.lock().unwrap_or_else(|e| e.into_inner())
}

/// When to emit the next heartbeat, as an absolute wall-clock deadline.
///
/// The heartbeat loop sleeps in short ticks (so joining after `stop` is
/// prompt) and asks this schedule whether a beat is due at each wake-up.
/// Deciding off `Instant::now()` rather than a sum of *intended* tick
/// durations means oversleeping ticks on a loaded machine cannot stretch
/// the effective period past `period` — the first wake-up at or past the
/// deadline beats immediately. After a beat the deadline re-anchors on
/// the observed `now` (not `+= period`), so a long stall yields one
/// catch-up beat rather than a burst.
struct BeatSchedule {
    next: Instant,
    period: Duration,
}

impl BeatSchedule {
    fn new(start: Instant, period: Duration) -> Self {
        BeatSchedule {
            next: start + period,
            period,
        }
    }

    /// `true` when a beat is due at `now`; arms the next deadline.
    fn poll(&mut self, now: Instant) -> bool {
        if now >= self.next {
            self.next = now + self.period;
            true
        } else {
            false
        }
    }
}

/// Run one worker to completion: connect, `Hello`, serve `TrainRequest`s
/// against the latest published model via `train`, until the server says
/// `Bye` or closes the connection.
///
/// `train` maps the order plus the current global weights to the
/// worker's [`ClientUpdate`]; its `weights`, `n_samples` and loss fields
/// go over the wire verbatim (bit-exact `f32`s).
pub fn run_client<F>(cfg: &ClientConfig, mut train: F) -> Result<ClientReport, WireError>
where
    F: FnMut(&TrainOrder, &[f32]) -> ClientUpdate,
{
    let reader = TcpStream::connect(&cfg.server_addr)?;
    let _ = reader.set_nodelay(true);
    let writer = Arc::new(Mutex::new(reader.try_clone()?));
    write_frame(
        &mut *lock_writer(&writer),
        &Message::Hello {
            client_id: cfg.client_id as u64,
            min_version: PROTOCOL_VERSION_MIN,
            max_version: PROTOCOL_VERSION_MAX,
        },
    )?;

    let stop = Arc::new(AtomicBool::new(false));
    let heartbeat_handle = {
        let writer = Arc::clone(&writer);
        let stop = Arc::clone(&stop);
        let period = cfg.heartbeat;
        let id = cfg.client_id as u64;
        thread::Builder::new()
            .name("feddrl-net-heartbeat".into())
            .spawn(move || {
                // Sleep in short ticks so joining after `stop` is prompt;
                // beat off the elapsed-wall-clock schedule so slow ticks
                // under load cannot drive heartbeats late and let the
                // server's TTL spuriously retire an idle worker.
                let tick = Duration::from_millis(10).min(period);
                let mut schedule = BeatSchedule::new(Instant::now(), period);
                while !stop.load(Ordering::Acquire) {
                    thread::sleep(tick);
                    if schedule.poll(Instant::now()) {
                        let sent = write_frame(
                            &mut *lock_writer(&writer),
                            &Message::Heartbeat { client_id: id },
                        );
                        if sent.is_err() {
                            break;
                        }
                    }
                }
            })
            .map_err(WireError::from)?
    };

    let outcome = client_loop(cfg, reader, &writer, &mut train);
    stop.store(true, Ordering::Release);
    let _ = heartbeat_handle.join();
    outcome
}

/// The worker's main receive loop, factored out so `run_client` can
/// always join the heartbeat thread on the way out.
fn client_loop<F>(
    cfg: &ClientConfig,
    mut reader: TcpStream,
    writer: &Mutex<TcpStream>,
    train: &mut F,
) -> Result<ClientReport, WireError>
where
    F: FnMut(&TrainOrder, &[f32]) -> ClientUpdate,
{
    let mut model: Option<(u64, Vec<f32>)> = None;
    let mut report = ClientReport::default();
    loop {
        match read_frame(&mut reader)? {
            None | Some(Message::Bye { .. }) => break,
            Some(Message::HelloAck { version, .. }) => {
                report.negotiated_version = version;
            }
            Some(Message::ModelPublish { version, weights }) => {
                report.publishes_seen += 1;
                report.last_version = version;
                model = Some((version, weights));
                ack_publish(cfg, writer, report.negotiated_version, version)?;
            }
            Some(Message::ModelPublishDelta(d)) => {
                report.delta_publishes_seen += 1;
                // Reconstruct only over the exact base the delta was
                // encoded against. A mismatch (an ack still in flight
                // when the server planned the frame) is dropped, not
                // guessed at: the next dense publish — or a delta against
                // the version this worker actually acked — resynchronizes.
                let applies = model
                    .as_ref()
                    .is_some_and(|(v, w)| *v == d.base_version && w.len() as u64 == d.total_len);
                if applies {
                    let (version, weights) = model.as_mut().expect("applies implies cached model");
                    for (&i, &value) in d.indices.iter().zip(&d.values) {
                        weights[i as usize] = value;
                    }
                    *version = d.version;
                    report.publishes_seen += 1;
                    report.last_version = d.version;
                    ack_publish(cfg, writer, report.negotiated_version, d.version)?;
                }
            }
            Some(Message::TrainRequest { round, keep_ratio }) => {
                // A demand before any publish has nothing to train on;
                // the server's round deadline handles the missing reply.
                let Some((version, weights)) = model.as_ref() else {
                    continue;
                };
                if !cfg.train_delay.is_zero() {
                    thread::sleep(cfg.train_delay);
                }
                let order = TrainOrder {
                    round,
                    keep_ratio,
                    model_version: *version,
                };
                let update = train(&order, weights);
                // A sub-model result on a v2+ connection travels as a
                // compact MaskedUpdate: only the kept positions, in
                // ascending order — the server re-derives the mask from
                // the shared seed. Full masks (and v1 connections) fall
                // back to the dense Update frame.
                let compact = report.negotiated_version >= 2
                    && update.mask.as_ref().is_some_and(|m| !m.is_full());
                let msg = if compact {
                    let mask = update.mask.as_ref().expect("compact implies mask");
                    let kept_weights: Vec<f32> = (0..update.weights.len())
                        .filter(|&p| mask.keeps(p))
                        .map(|p| update.weights[p])
                        .collect();
                    report.masked_rounds += 1;
                    Message::MaskedUpdate(MaskedUpdateMsg {
                        client_id: cfg.client_id as u64,
                        round,
                        model_version: *version,
                        staleness: 0,
                        n_samples: update.n_samples as u64,
                        loss_before: update.loss_before,
                        loss_after: update.loss_after,
                        keep_ratio,
                        total_len: update.weights.len() as u64,
                        kept_weights,
                    })
                } else {
                    Message::Update(UpdateMsg {
                        client_id: cfg.client_id as u64,
                        round,
                        model_version: *version,
                        staleness: 0,
                        n_samples: update.n_samples as u64,
                        loss_before: update.loss_before,
                        loss_after: update.loss_after,
                        weights: update.weights,
                    })
                };
                write_frame(&mut *lock_writer(writer), &msg)?;
                report.rounds_trained += 1;
            }
            // The server never sends client-bound kinds; ignore strays.
            Some(Message::Hello { .. })
            | Some(Message::Update(_))
            | Some(Message::MaskedUpdate(_))
            | Some(Message::PublishAck { .. })
            | Some(Message::Heartbeat { .. }) => {}
        }
    }
    Ok(report)
}

/// Acknowledge a cached model version so the server may delta-encode
/// future publishes against it. Only meaningful on v2+ connections — a
/// pre-handshake server would reject the kind.
fn ack_publish(
    cfg: &ClientConfig,
    writer: &Mutex<TcpStream>,
    negotiated: u8,
    version: u64,
) -> Result<(), WireError> {
    if negotiated >= 2 {
        write_frame(
            &mut *lock_writer(writer),
            &Message::PublishAck {
                client_id: cfg.client_id as u64,
                version,
            },
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{NetClientBuilder, NetServerBuilder};
    use std::time::Instant;

    /// Deterministic stub: weights = global scaled by (client_id + 2).
    fn stub(client_id: usize) -> impl FnMut(&TrainOrder, &[f32]) -> ClientUpdate {
        move |order, global| ClientUpdate {
            client_id,
            weights: global
                .iter()
                .map(|w| w * (client_id as f32 + 2.0))
                .collect(),
            n_samples: 10 + client_id,
            loss_before: 1.0 + order.round as f32,
            loss_after: 0.5,
            staleness: 0,
            mask: None,
        }
    }

    #[test]
    fn worker_trains_on_demand_and_reports() {
        let mut server = NetServerBuilder::new().build().expect("bind");
        let addr = server.local_addr().to_string();
        let cfg = NetClientBuilder::new(addr, 5)
            .heartbeat(Duration::from_millis(50))
            .build()
            .expect("client config");
        let worker = thread::spawn(move || run_client(&cfg, stub(5)));

        server
            .wait_for_clients(1, Duration::from_secs(5))
            .expect("worker subscribed");
        assert_eq!(server.publish(1, &[2.0, -4.0]), 1);
        server
            .send_to(
                5,
                &Message::TrainRequest {
                    round: 0,
                    keep_ratio: 1.0,
                },
            )
            .expect("dispatch");
        let update = server
            .recv_update(Instant::now() + Duration::from_secs(5))
            .expect("update arrives");
        assert_eq!(update.msg.client_id, 5);
        assert_eq!(update.msg.round, 0);
        assert_eq!(update.msg.model_version, 1);
        assert_eq!(update.msg.n_samples, 15);
        assert_eq!(update.msg.weights, vec![14.0, -28.0]);

        server.shutdown();
        let report = worker.join().expect("no panic").expect("clean exit");
        assert_eq!(report.rounds_trained, 1);
        assert_eq!(report.publishes_seen, 1);
        assert_eq!(report.last_version, 1);
        assert_eq!(report.negotiated_version, PROTOCOL_VERSION_MAX);
        assert_eq!(report.delta_publishes_seen, 0);
        assert_eq!(report.masked_rounds, 0, "full-model round stays dense");
    }

    /// Regression for the tick-accumulation drift: a worker whose ticks
    /// oversleep (a loaded machine) must still beat at every wake-up past
    /// the deadline. The old `since_beat += tick` accounting credited
    /// each 10 ms tick as exactly 10 ms, so ticks that actually took
    /// 100 ms stretched a 25 ms period to 3 wake-ups (~300 ms) between
    /// beats — past a 150 ms TTL. Driven synthetically so the test does
    /// not itself depend on machine load.
    #[test]
    fn slow_ticks_cannot_drive_heartbeats_late() {
        let period = Duration::from_millis(25);
        let start = Instant::now();
        let mut schedule = BeatSchedule::new(start, period);
        // Wake-ups arrive every 100 ms of wall-clock (each intended
        // 10 ms tick overslept 10x). Every single one is past the
        // deadline, so every single one must beat: the gap between
        // beats is one wake-up interval, never a multiple of it.
        let mut beats = 0;
        for wake in 1..=10u32 {
            if schedule.poll(start + wake * Duration::from_millis(100)) {
                beats += 1;
            }
        }
        assert_eq!(beats, 10, "every overslept wake-up past the deadline beats");
        // A stall does not queue a make-up burst: after one catch-up
        // beat the next deadline re-anchors a full period out.
        let stalled = start + Duration::from_secs(5);
        assert!(schedule.poll(stalled));
        assert!(!schedule.poll(stalled + Duration::from_millis(1)));
        assert!(schedule.poll(stalled + period));
        // And fast ticks still respect the period: no beat before it.
        let mut schedule = BeatSchedule::new(start, period);
        assert!(!schedule.poll(start + Duration::from_millis(10)));
        assert!(!schedule.poll(start + Duration::from_millis(20)));
        assert!(schedule.poll(start + Duration::from_millis(25)));
    }

    #[test]
    fn heartbeats_keep_an_idle_worker_live_past_the_ttl() {
        let mut server = NetServerBuilder::new()
            .ttl(Duration::from_millis(150))
            .build()
            .expect("bind");
        let addr = server.local_addr().to_string();
        let ccfg = NetClientBuilder::new(addr, 9)
            .heartbeat(Duration::from_millis(30))
            .build()
            .expect("client config");
        let worker = thread::spawn(move || run_client(&ccfg, stub(9)));
        server
            .wait_for_clients(1, Duration::from_secs(5))
            .expect("worker subscribed");
        // Idle for several TTLs; heartbeats must keep the worker live.
        thread::sleep(Duration::from_millis(500));
        assert!(server.sweep_expired().is_empty());
        assert!(server.is_live(9));
        assert!(server.messages_from(9).unwrap() > 3, "heartbeats observed");
        server.shutdown();
        worker.join().expect("no panic").expect("clean exit");
    }
}
