//! Fluent, validating constructors for the networked runtime, mirroring
//! the in-process `SessionBuilder`: every knob has a sane default, every
//! degenerate value is a typed [`FlError::InvalidNetConfig`] at
//! `build()` time rather than a panic (or silent misbehavior) later.
//!
//! The old struct-literal entry points — [`ServerConfig`] +
//! [`NetServer::bind`] and [`ClientConfig::new`] — remain as thin
//! deprecated wrappers so downstream code migrates on its own schedule.

use std::time::Duration;

use feddrl_fl::error::FlError;

use crate::client::ClientConfig;
use crate::server::{NetServer, ServerConfig};

/// Builder for a [`NetServer`]: bind address, liveness TTL and the
/// delta-publish knobs, validated at [`NetServerBuilder::build`].
///
/// ```no_run
/// use feddrl_net::prelude::*;
/// # fn main() -> Result<(), feddrl_fl::error::FlError> {
/// let server = NetServerBuilder::new()
///     .ttl(std::time::Duration::from_secs(2))
///     .delta_publish(true)
///     .build()?;
/// println!("listening on {}", server.local_addr());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetServerBuilder {
    addr: String,
    cfg: ServerConfig,
}

impl Default for NetServerBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl NetServerBuilder {
    /// A server on an ephemeral loopback port (`127.0.0.1:0`) with the
    /// default [`ServerConfig`]: 5 s TTL, delta publishes off.
    pub fn new() -> Self {
        NetServerBuilder {
            addr: "127.0.0.1:0".into(),
            cfg: ServerConfig::default(),
        }
    }

    /// Bind address. Keep port 0 unless a fixed port is genuinely
    /// required — the OS-assigned port is recoverable from
    /// [`NetServer::local_addr`], and fixed ports are how CI runs
    /// collide.
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Liveness TTL: a client silent for longer is swept into the
    /// departed set.
    pub fn ttl(mut self, ttl: Duration) -> Self {
        self.cfg.ttl = ttl;
        self
    }

    /// Enable delta-compressed publishes to v2 peers with an acked base.
    pub fn delta_publish(mut self, on: bool) -> Self {
        self.cfg.delta_publish = on;
        self
    }

    /// How many recent model snapshots to keep for delta encoding.
    pub fn snapshot_ring(mut self, n: usize) -> Self {
        self.cfg.snapshot_ring = n;
        self
    }

    /// Validate the configuration, bind the socket and start the accept
    /// thread.
    ///
    /// # Errors
    /// [`FlError::InvalidNetConfig`] on an empty address, a zero TTL, or
    /// (with delta publishes on) a snapshot ring that cannot hold a base
    /// version; [`FlError::Io`] when the bind itself fails.
    pub fn build(self) -> Result<NetServer, FlError> {
        if self.addr.trim().is_empty() {
            return Err(FlError::InvalidNetConfig {
                reason: "bind address must not be empty".into(),
            });
        }
        if self.cfg.ttl.is_zero() {
            return Err(FlError::InvalidNetConfig {
                reason: "liveness TTL must be positive".into(),
            });
        }
        if self.cfg.delta_publish && self.cfg.snapshot_ring == 0 {
            return Err(FlError::InvalidNetConfig {
                reason: "delta publishes need a snapshot ring of at least 1".into(),
            });
        }
        NetServer::bind_with(&self.addr, self.cfg).map_err(FlError::from)
    }
}

/// Builder for a [`ClientConfig`]: server address and client id are
/// required, heartbeat and train-delay knobs optional, everything
/// validated at [`NetClientBuilder::build`].
///
/// ```
/// use feddrl_net::prelude::*;
/// # fn main() -> Result<(), feddrl_fl::error::FlError> {
/// let cfg = NetClientBuilder::new("127.0.0.1:0", 3)
///     .heartbeat(std::time::Duration::from_millis(100))
///     .build()?;
/// assert_eq!(cfg.client_id, 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetClientBuilder {
    server_addr: String,
    client_id: usize,
    heartbeat: Duration,
    train_delay: Duration,
}

impl NetClientBuilder {
    /// A client configuration for `client_id`, connecting to
    /// `server_addr`, with the default 500 ms heartbeat and no simulated
    /// train delay.
    pub fn new(server_addr: impl Into<String>, client_id: usize) -> Self {
        NetClientBuilder {
            server_addr: server_addr.into(),
            client_id,
            heartbeat: Duration::from_millis(500),
            train_delay: Duration::ZERO,
        }
    }

    /// Heartbeat period; must stay well under the server's TTL or the
    /// client will be swept as departed mid-run.
    pub fn heartbeat(mut self, period: Duration) -> Self {
        self.heartbeat = period;
        self
    }

    /// Artificial delay before answering each `TrainRequest` — a
    /// straggler knob for tests and benchmarks.
    pub fn train_delay(mut self, delay: Duration) -> Self {
        self.train_delay = delay;
        self
    }

    /// Validate and produce the [`ClientConfig`] that
    /// [`run_client`](crate::client::run_client) consumes.
    ///
    /// # Errors
    /// [`FlError::InvalidNetConfig`] on an empty server address or a zero
    /// heartbeat period.
    pub fn build(self) -> Result<ClientConfig, FlError> {
        if self.server_addr.trim().is_empty() {
            return Err(FlError::InvalidNetConfig {
                reason: "server address must not be empty".into(),
            });
        }
        if self.heartbeat.is_zero() {
            return Err(FlError::InvalidNetConfig {
                reason: "heartbeat period must be positive".into(),
            });
        }
        Ok(ClientConfig {
            server_addr: self.server_addr,
            client_id: self.client_id,
            heartbeat: self.heartbeat,
            train_delay: self.train_delay,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_builder_defaults_bind_an_ephemeral_port() {
        let server = NetServerBuilder::new().build().expect("bind");
        assert_ne!(server.local_addr().port(), 0, "OS assigned a real port");
        assert_eq!(server.ttl_ms(), 5_000);
    }

    #[test]
    fn server_builder_rejects_degenerate_knobs() {
        let e = NetServerBuilder::new().addr("  ").build().unwrap_err();
        assert!(matches!(e, FlError::InvalidNetConfig { .. }), "{e}");
        let e = NetServerBuilder::new()
            .ttl(Duration::ZERO)
            .build()
            .unwrap_err();
        assert!(e.to_string().contains("TTL must be positive"), "{e}");
        let e = NetServerBuilder::new()
            .delta_publish(true)
            .snapshot_ring(0)
            .build()
            .unwrap_err();
        assert!(e.to_string().contains("snapshot ring"), "{e}");
    }

    #[test]
    fn client_builder_applies_knobs_and_validates() {
        let cfg = NetClientBuilder::new("127.0.0.1:9", 7)
            .heartbeat(Duration::from_millis(50))
            .train_delay(Duration::from_millis(5))
            .build()
            .expect("valid");
        assert_eq!(cfg.server_addr, "127.0.0.1:9");
        assert_eq!(cfg.client_id, 7);
        assert_eq!(cfg.heartbeat, Duration::from_millis(50));
        assert_eq!(cfg.train_delay, Duration::from_millis(5));

        let e = NetClientBuilder::new("", 0).build().unwrap_err();
        assert!(e.to_string().contains("server address"), "{e}");
        let e = NetClientBuilder::new("127.0.0.1:9", 0)
            .heartbeat(Duration::ZERO)
            .build()
            .unwrap_err();
        assert!(e.to_string().contains("heartbeat"), "{e}");
    }
}
