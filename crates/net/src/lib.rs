//! # feddrl-net — networked FL runtime over real sockets
//!
//! Takes the FedDRL (ICPP'22) reproduction off the simulator and onto
//! TCP: a versioned, length-prefixed wire protocol, a server process
//! with a heartbeat-driven liveness registry, a worker loop that trains
//! on demand, and a [`executor::NetworkExecutor`] implementing the
//! existing [`RoundExecutor`](feddrl_fl::executor::RoundExecutor) trait
//! — so the unchanged `Session`, selection policies and aggregation
//! strategies drive real transport exactly as they drive the
//! discrete-event simulator.
//!
//! * [`wire`] — the frame codec: `0xFD7E` magic, protocol version, kind
//!   byte, `u32` length prefix; typed [`wire::WireError`]s that convert
//!   into [`FlError::Io`](feddrl_fl::error::FlError) /
//!   [`FlError::Protocol`](feddrl_fl::error::FlError);
//! * [`registry`] — who is subscribed, heartbeat TTLs, permanent
//!   departure semantics matching the simulator's churn;
//! * [`server`] — accept loop, per-connection receive threads, scoped
//!   fan-out publish, condvar-signalled update inbox;
//! * [`client`] — [`client::run_client`]: subscribe, heartbeat, train
//!   via any closure (the repo's real local trainer or a stub), report;
//! * [`executor`] — barrier and buffered collection over the above,
//!   with measured RTT/staleness telemetry;
//! * [`builder`] — [`builder::NetServerBuilder`] /
//!   [`builder::NetClientBuilder`], the validating entry points
//!   mirroring the in-process `SessionBuilder`.
//!
//! Protocol version 2 (negotiated per connection at `Hello`/`HelloAck`
//! time, v1 peers still speak) adds wire-level sub-model dispatch
//! (`TrainRequest { keep_ratio < 1 }` answered by a compact
//! `MaskedUpdate` — both ends derive the structured mask from the shared
//! seed, so it never travels) and delta-compressed publishes
//! (`ModelPublishDelta` against the receiver's last-acked version, with
//! automatic dense fallback). See `docs/NETWORKING.md` for the frame
//! grammar and negotiation state machine.
//!
//! Concurrency is plain threads plus the repo's vendored
//! `crossbeam`/`parking_lot` shims; there is no async runtime and no
//! new external dependency.
//!
//! ## Determinism
//!
//! With every worker live and a round-barrier executor, a networked run
//! whose workers compute the same deterministic function as an
//! in-process stub reproduces the `IdealExecutor`'s `RunHistory`
//! byte-for-byte (timing fields aside): updates are reassembled into
//! sampling order, staleness is zero, and `f32` weights cross the wire
//! bit-exactly. The `net_props` integration suite pins this law.

pub mod builder;
pub mod client;
pub mod executor;
pub mod registry;
pub mod server;
pub mod wire;

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::builder::{NetClientBuilder, NetServerBuilder};
    pub use crate::client::{run_client, ClientConfig, ClientReport, TrainOrder};
    pub use crate::executor::{NetMode, NetTelemetry, NetworkExecutor, WireMasking};
    pub use crate::registry::{Registry, RegistryEntry};
    pub use crate::server::{InboundUpdate, MaskedWireInfo, NetServer, PublishStats, ServerConfig};
    pub use crate::wire::{
        negotiate, read_frame, write_frame, DeltaMsg, MaskedUpdateMsg, Message, UpdateMsg,
        WireError, FRAME_MAGIC, HEADER_LEN, MAX_PAYLOAD, PROTOCOL_VERSION, PROTOCOL_VERSION_MAX,
        PROTOCOL_VERSION_MIN,
    };
}
