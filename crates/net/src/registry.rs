//! Client discovery and liveness: the server-side registry with
//! heartbeat-driven TTLs.
//!
//! Every message a client sends (`Hello`, `Heartbeat`, `Update`, …)
//! refreshes its registry entry; a client silent for longer than the TTL
//! is swept into the *departed* set, which the `NetworkExecutor` surfaces
//! to client selection through the existing
//! [`SelectionContext::departed`](feddrl_fl::selection::SelectionContext)
//! path — the same channel the simulator's seeded churn uses, now fed by
//! real liveness. Departure is permanent, matching the simulator's churn
//! semantics (a departed id never rejoins); late heartbeats from an
//! expired client are ignored.
//!
//! Time is a caller-supplied monotone millisecond counter rather than an
//! internal clock, so expiry logic is testable with logical time and the
//! server can drive it from one shared [`std::time::Instant`].

use std::collections::{BTreeMap, BTreeSet};

/// One registered client's liveness bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryEntry {
    /// When the client first registered (ms on the caller's clock).
    pub first_seen_ms: u64,
    /// Last message of any kind (ms on the caller's clock).
    pub last_seen_ms: u64,
    /// Messages observed from this client (heartbeats included).
    pub messages: u64,
    /// The newest model version the client has acknowledged caching
    /// (`PublishAck`), or `None` before its first ack. The server may
    /// delta-encode publishes only against this version — anything else
    /// risks the client reconstructing from the wrong base.
    pub acked_version: Option<u64>,
}

/// The server's client registry: who is subscribed, when each was last
/// heard from, and who has departed (explicitly via `Bye`, or implicitly
/// by exceeding the liveness TTL).
#[derive(Debug, Clone)]
pub struct Registry {
    ttl_ms: u64,
    entries: BTreeMap<usize, RegistryEntry>,
    departed: BTreeSet<usize>,
}

impl Registry {
    /// A registry whose clients expire after `ttl_ms` of silence.
    ///
    /// # Panics
    /// Panics when `ttl_ms` is zero (every client would be dead on
    /// arrival).
    pub fn new(ttl_ms: u64) -> Self {
        assert!(ttl_ms > 0, "liveness TTL must be positive");
        Registry {
            ttl_ms,
            entries: BTreeMap::new(),
            departed: BTreeSet::new(),
        }
    }

    /// The configured liveness TTL in milliseconds.
    pub fn ttl_ms(&self) -> u64 {
        self.ttl_ms
    }

    /// Record a message from `client_id` at `now_ms`, registering it on
    /// first contact. Returns `true` when this was a new registration.
    /// A departed client's messages are ignored (departure is permanent)
    /// and return `false`.
    pub fn touch(&mut self, client_id: usize, now_ms: u64) -> bool {
        if self.departed.contains(&client_id) {
            return false;
        }
        match self.entries.get_mut(&client_id) {
            Some(e) => {
                e.last_seen_ms = now_ms;
                e.messages += 1;
                false
            }
            None => {
                self.entries.insert(
                    client_id,
                    RegistryEntry {
                        first_seen_ms: now_ms,
                        last_seen_ms: now_ms,
                        messages: 1,
                        acked_version: None,
                    },
                );
                true
            }
        }
    }

    /// Record a `PublishAck` from `client_id` at `now_ms`: the client now
    /// caches model `version`, so future publishes may delta-encode
    /// against it. Counts as liveness (it touches the entry first). Acks
    /// never regress — a stale ack racing a newer one is ignored.
    pub fn record_ack(&mut self, client_id: usize, version: u64, now_ms: u64) {
        self.touch(client_id, now_ms);
        if let Some(e) = self.entries.get_mut(&client_id) {
            if e.acked_version.is_none_or(|v| version > v) {
                e.acked_version = Some(version);
            }
        }
    }

    /// The newest model version `client_id` has acknowledged caching, if
    /// it is live and has acked at all.
    pub fn acked_version(&self, client_id: usize) -> Option<u64> {
        self.entries.get(&client_id).and_then(|e| e.acked_version)
    }

    /// Explicit departure (`Bye`), effective immediately.
    pub fn mark_departed(&mut self, client_id: usize) {
        self.entries.remove(&client_id);
        self.departed.insert(client_id);
    }

    /// Expire every client whose last message is older than the TTL at
    /// `now_ms`, moving them to the departed set. Returns the *newly*
    /// departed ids in ascending order.
    pub fn sweep(&mut self, now_ms: u64) -> Vec<usize> {
        let expired: Vec<usize> = self
            .entries
            .iter()
            .filter(|(_, e)| now_ms.saturating_sub(e.last_seen_ms) > self.ttl_ms)
            .map(|(&id, _)| id)
            .collect();
        for &id in &expired {
            self.entries.remove(&id);
            self.departed.insert(id);
        }
        expired
    }

    /// Whether `client_id` is currently registered and unexpired.
    pub fn is_live(&self, client_id: usize) -> bool {
        self.entries.contains_key(&client_id)
    }

    /// Whether `client_id` has departed (explicitly or by TTL expiry).
    pub fn is_departed(&self, client_id: usize) -> bool {
        self.departed.contains(&client_id)
    }

    /// Bookkeeping for a live client, if registered.
    pub fn entry(&self, client_id: usize) -> Option<&RegistryEntry> {
        self.entries.get(&client_id)
    }

    /// Currently live client ids, ascending.
    pub fn live_clients(&self) -> Vec<usize> {
        self.entries.keys().copied().collect()
    }

    /// Every client that has ever departed (Bye or TTL expiry), ascending
    /// — the set selection policies demote.
    pub fn departed_clients(&self) -> Vec<usize> {
        self.departed.iter().copied().collect()
    }

    /// Number of live clients.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no client is live.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_and_refresh() {
        let mut r = Registry::new(100);
        assert!(r.touch(3, 0));
        assert!(!r.touch(3, 50));
        assert_eq!(r.entry(3).unwrap().messages, 2);
        assert_eq!(r.entry(3).unwrap().first_seen_ms, 0);
        assert_eq!(r.entry(3).unwrap().last_seen_ms, 50);
        assert_eq!(r.live_clients(), vec![3]);
    }

    #[test]
    fn silence_past_ttl_expires_exactly_the_silent() {
        let mut r = Registry::new(100);
        r.touch(0, 0);
        r.touch(1, 0);
        r.touch(2, 0);
        assert_eq!(r.sweep(90), Vec::<usize>::new()); // everyone within TTL
        r.touch(1, 95); // 1 keeps heartbeating
        assert_eq!(r.sweep(150), vec![0, 2]); // 0 and 2 silent > ttl
        assert_eq!(r.live_clients(), vec![1]);
        assert_eq!(r.departed_clients(), vec![0, 2]);
        // Eventually 1 goes silent too; already-departed ids don't repeat.
        assert_eq!(r.sweep(10_000), vec![1]);
        assert_eq!(r.departed_clients(), vec![0, 1, 2]);
    }

    #[test]
    fn departure_is_permanent() {
        let mut r = Registry::new(100);
        r.touch(7, 0);
        r.mark_departed(7);
        assert!(!r.is_live(7));
        assert!(!r.touch(7, 10), "departed client must not re-register");
        assert!(!r.is_live(7));
        assert_eq!(r.departed_clients(), vec![7]);
    }

    #[test]
    fn boundary_is_strictly_greater_than_ttl() {
        let mut r = Registry::new(100);
        r.touch(0, 0);
        assert!(r.sweep(100).is_empty(), "exactly TTL old is still live");
        assert_eq!(r.sweep(101), vec![0]);
    }

    #[test]
    #[should_panic(expected = "TTL must be positive")]
    fn zero_ttl_is_rejected() {
        let _ = Registry::new(0);
    }

    #[test]
    fn acks_advance_monotonically_and_count_as_liveness() {
        let mut r = Registry::new(100);
        r.touch(2, 0);
        assert_eq!(r.acked_version(2), None);
        r.record_ack(2, 5, 10);
        assert_eq!(r.acked_version(2), Some(5));
        // A stale ack racing a newer one never regresses the base.
        r.record_ack(2, 3, 20);
        assert_eq!(r.acked_version(2), Some(5));
        r.record_ack(2, 6, 30);
        assert_eq!(r.acked_version(2), Some(6));
        // The ack refreshed the TTL: 30 + 100 is still live at 120.
        assert!(r.sweep(120).is_empty());
        assert_eq!(r.entry(2).unwrap().last_seen_ms, 30);
    }

    #[test]
    fn acks_from_departed_or_unknown_clients_are_ignored() {
        let mut r = Registry::new(100);
        r.touch(1, 0);
        r.mark_departed(1);
        r.record_ack(1, 9, 10);
        assert_eq!(r.acked_version(1), None);
        // An unknown client's ack registers it first (touch semantics).
        r.record_ack(5, 2, 10);
        assert_eq!(r.acked_version(5), Some(2));
        assert!(r.is_live(5));
    }
}
