//! The `feddrl_net` wire protocol: length-prefixed binary frames with a
//! versioned header and a typed message grammar.
//!
//! Every frame is `magic (u16) | version (u8) | kind (u8) |
//! payload_len (u32) | payload`, all integers little-endian (see
//! `docs/NETWORKING.md` for the full layout and payload grammar). The
//! codec is hand-rolled rather than serde-based so the hot path — a
//! full-model [`Message::Update`] — is a bounds check plus a `memcpy` of
//! the raw `f32` weight buffer, and so every way a frame can be malformed
//! maps to a distinct [`WireError`] variant instead of a generic parse
//! failure.
//!
//! Weights travel as raw IEEE-754 bit patterns (`f32::to_le_bytes` /
//! `from_le_bytes`), so a decode(encode(x)) round trip is bit-exact —
//! the property the loopback byte-identity law in `tests/net_props.rs`
//! rests on.

use feddrl_fl::error::FlError;
use std::fmt;
use std::io::{self, Read, Write};

/// First two bytes of every frame; rejects non-protocol peers early.
pub const FRAME_MAGIC: u16 = 0xFD7E;

/// Oldest wire-protocol version this build still decodes. Version-1
/// frames (kinds 1–6, bare-`u64` `Hello`) remain valid forever — the
/// golden frame fixtures in `tests/net_props.rs` pin their exact bytes.
pub const PROTOCOL_VERSION_MIN: u8 = 1;

/// Newest wire-protocol version this build speaks. Version 2 adds the
/// negotiated handshake (`Hello` version range + `HelloAck`), masked
/// sub-model updates (`MaskedUpdate`) and delta-compressed publishes
/// (`ModelPublishDelta` / `PublishAck`).
pub const PROTOCOL_VERSION_MAX: u8 = 2;

/// The version this build prefers (and stamps on frames by default):
/// [`PROTOCOL_VERSION_MAX`]. The frame header carries the sender's
/// version; a receiver rejects anything outside
/// `[PROTOCOL_VERSION_MIN, PROTOCOL_VERSION_MAX]` with
/// [`WireError::UnsupportedVersion`], and connections pin a single
/// negotiated version at `Hello`/`HelloAck` time (see
/// `docs/NETWORKING.md` on negotiation).
pub const PROTOCOL_VERSION: u8 = PROTOCOL_VERSION_MAX;

/// Frame header size: magic (2) + version (1) + kind (1) + payload length (4).
pub const HEADER_LEN: usize = 8;

/// Upper bound on a frame's payload (64 MiB — a ~16M-parameter dense
/// model). Larger length prefixes are rejected before any allocation with
/// [`WireError::Oversized`], so a corrupt or hostile length field cannot
/// OOM the server.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// Everything that can go wrong encoding, decoding or transporting a
/// frame. `Clone + PartialEq` (the `io::Error` cause is captured as its
/// [`io::ErrorKind`] plus text) so tests can match decode failures
/// exactly; convertible into the orchestration-level
/// [`FlError::Io`] / [`FlError::Protocol`] variants.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// Socket-level failure (connect, read, write, bind, accept).
    Io {
        /// The underlying `io::ErrorKind`.
        kind: io::ErrorKind,
        /// The error's display text.
        detail: String,
    },
    /// The first two bytes were not [`FRAME_MAGIC`].
    BadMagic {
        /// The bytes found, as a little-endian u16.
        found: u16,
    },
    /// The frame header named a protocol version this build does not speak.
    UnsupportedVersion {
        /// The version found.
        found: u8,
    },
    /// The frame header named an unknown message kind.
    UnknownKind {
        /// The kind byte found.
        found: u8,
    },
    /// The buffer or stream ended before the frame did.
    Truncated {
        /// Bytes the frame needed.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The length prefix exceeded [`MAX_PAYLOAD`].
    Oversized {
        /// The claimed payload length.
        len: usize,
        /// The enforced maximum.
        max: usize,
    },
    /// The payload parsed but violated its message grammar (wrong size for
    /// the kind, trailing bytes, a weight count that disagrees with the
    /// payload length).
    Malformed {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// The `Hello`/`HelloAck` handshake found no protocol version both
    /// ends speak: the peer's advertised `[min, max]` range does not
    /// overlap ours.
    NegotiationFailed {
        /// Smallest version the peer offered.
        peer_min: u8,
        /// Largest version the peer offered.
        peer_max: u8,
        /// Smallest version this build speaks ([`PROTOCOL_VERSION_MIN`]).
        ours_min: u8,
        /// Largest version this build speaks ([`PROTOCOL_VERSION_MAX`]).
        ours_max: u8,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io { kind, detail } => write!(f, "i/o error ({kind:?}): {detail}"),
            WireError::BadMagic { found } => write!(f, "bad frame magic {found:#06x}"),
            WireError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported protocol version {found} (this build speaks \
                     {PROTOCOL_VERSION_MIN}..={PROTOCOL_VERSION_MAX})"
                )
            }
            WireError::UnknownKind { found } => write!(f, "unknown message kind {found}"),
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            WireError::Oversized { len, max } => {
                write!(f, "oversized frame: payload of {len} bytes exceeds {max}")
            }
            WireError::Malformed { detail } => write!(f, "malformed payload: {detail}"),
            WireError::NegotiationFailed {
                peer_min,
                peer_max,
                ours_min,
                ours_max,
            } => write!(
                f,
                "version negotiation failed: peer speaks {peer_min}..={peer_max}, \
                 this build speaks {ours_min}..={ours_max}"
            ),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io {
            kind: e.kind(),
            detail: e.to_string(),
        }
    }
}

impl From<WireError> for FlError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io { .. } => FlError::Io {
                reason: e.to_string(),
            },
            _ => FlError::Protocol {
                reason: e.to_string(),
            },
        }
    }
}

/// A client's locally-trained report, as it travels on the wire. The
/// superset of what [`feddrl_fl::client::ClientUpdate`] needs: the echoed
/// `round` lets a round-barrier server discard updates from an abandoned
/// round, and `model_version` (the publish the client trained against)
/// is what the server measures staleness from — a client cannot know how
/// many aggregations happened while it trained.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateMsg {
    /// The reporting client's id.
    pub client_id: u64,
    /// The round of the `TrainRequest` this update answers.
    pub round: u64,
    /// The model version the client trained against.
    pub model_version: u64,
    /// Versions behind at aggregation time; reserved on the wire (clients
    /// send 0 — the server overwrites it from its own version counter).
    pub staleness: u64,
    /// Local sample count `n_k`.
    pub n_samples: u64,
    /// Inference loss of the received global model on the client's data.
    pub loss_before: f32,
    /// Loss of the locally trained model.
    pub loss_after: f32,
    /// The locally-trained flat weight vector, bit-exact.
    pub weights: Vec<f32>,
}

/// A masked (structured sub-model) client report: only the *kept*
/// positions of the weight vector travel. The mask itself never does —
/// both ends derive the identical [`StructuredMask`] from the shared
/// `MASK_SALT` stream via `feddrl_fl::client::dispatch_mask(model, seed,
/// round, client_id, keep_ratio)`, which is exactly what makes the
/// omission safe and the frame small.
///
/// [`StructuredMask`]: feddrl_nn::mask::StructuredMask
#[derive(Debug, Clone, PartialEq)]
pub struct MaskedUpdateMsg {
    /// The reporting client's id.
    pub client_id: u64,
    /// The round of the `TrainRequest` this update answers (a mask
    /// derivation input).
    pub round: u64,
    /// The model version the client trained against.
    pub model_version: u64,
    /// Versions behind at aggregation time; reserved on the wire (clients
    /// send 0 — the server overwrites it from its own version counter).
    pub staleness: u64,
    /// Local sample count `n_k`.
    pub n_samples: u64,
    /// Inference loss of the received global model on the client's data.
    pub loss_before: f32,
    /// Loss of the locally trained sub-model.
    pub loss_after: f32,
    /// The keep ratio the dispatch named (the third mask derivation
    /// input); in `(0, 1]`.
    pub keep_ratio: f64,
    /// Length of the *full* flat parameter vector the kept positions
    /// scatter into.
    pub total_len: u64,
    /// Weights at the mask's kept positions, in ascending position order,
    /// bit-exact.
    pub kept_weights: Vec<f32>,
}

/// A delta-compressed model publish: the new global encoded against a
/// `base_version` the receiver has acknowledged caching. Reconstruction
/// is exact (not approximate): copy the cached base, then overwrite each
/// listed position with its new value — positions whose *bit pattern* is
/// unchanged are simply absent.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaMsg {
    /// The version this publish advances the receiver to.
    pub version: u64,
    /// The receiver-cached version the entries are encoded against.
    pub base_version: u64,
    /// Full flat parameter count (must match the cached base).
    pub total_len: u64,
    /// Changed positions, strictly ascending, each `< total_len`.
    pub indices: Vec<u32>,
    /// New values at those positions (same length as `indices`),
    /// bit-exact.
    pub values: Vec<f32>,
}

/// The wire message grammar. One frame carries exactly one message.
/// Kinds 1–6 are version-1; kinds 7–10 require a negotiated version ≥ 2.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → server: subscribe `client_id` to the federation,
    /// advertising the protocol versions the client speaks. A v1 peer
    /// sends only the id; its range decodes as `[1, 1]`.
    Hello {
        /// The joining client's id.
        client_id: u64,
        /// Smallest protocol version the client speaks.
        min_version: u8,
        /// Largest protocol version the client speaks.
        max_version: u8,
    },
    /// Server → client (v2+): pins the negotiated protocol version for
    /// this connection — the highest version both ends speak. Never sent
    /// on a connection negotiated down to v1 (a v1 peer would not decode
    /// it); such connections proceed exactly as before the handshake
    /// existed.
    HelloAck {
        /// The subscribing client's id, echoed.
        client_id: u64,
        /// The negotiated protocol version.
        version: u8,
    },
    /// Server → client: the current global model, dense.
    ModelPublish {
        /// Monotone model version (increments per aggregation).
        version: u64,
        /// Flat global parameters, bit-exact.
        weights: Vec<f32>,
    },
    /// Server → client (v2+): the current global model, encoded as an
    /// exact sparse delta against a version the client acknowledged.
    ModelPublishDelta(DeltaMsg),
    /// Client → server (v2+): acknowledges having cached a published
    /// model version — the server may encode future publishes against it.
    PublishAck {
        /// The acknowledging client's id.
        client_id: u64,
        /// The model version now cached client-side.
        version: u64,
    },
    /// Server → client: train on your latest received model.
    TrainRequest {
        /// The round this dispatch belongs to (echoed in the update).
        round: u64,
        /// Fraction of the model to train: 1.0 = full model; below 1 is a
        /// structured-dropout sub-model dispatch (the client derives the
        /// mask locally and answers with a `MaskedUpdate`).
        keep_ratio: f64,
    },
    /// Client → server: a locally-trained full-model report.
    Update(UpdateMsg),
    /// Client → server (v2+): a locally-trained sub-model report carrying
    /// only the mask's kept positions.
    MaskedUpdate(MaskedUpdateMsg),
    /// Client → server: liveness keep-alive refreshing the registry TTL.
    Heartbeat {
        /// The reporting client's id.
        client_id: u64,
    },
    /// Either direction: orderly departure (server: shutdown; client:
    /// leaving the federation).
    Bye {
        /// The departing client's id (the server sends the receiver's id).
        client_id: u64,
    },
}

const KIND_HELLO: u8 = 1;
const KIND_MODEL_PUBLISH: u8 = 2;
const KIND_TRAIN_REQUEST: u8 = 3;
const KIND_UPDATE: u8 = 4;
const KIND_HEARTBEAT: u8 = 5;
const KIND_BYE: u8 = 6;
const KIND_HELLO_ACK: u8 = 7;
const KIND_MASKED_UPDATE: u8 = 8;
const KIND_MODEL_PUBLISH_DELTA: u8 = 9;
const KIND_PUBLISH_ACK: u8 = 10;

/// The largest kind byte a frame of `version` may carry: the grammar only
/// grows, so each version's kinds are a prefix of the next's.
fn max_kind_for(version: u8) -> u8 {
    if version >= 2 {
        KIND_PUBLISH_ACK
    } else {
        KIND_BYE
    }
}

/// Pick the protocol version for a connection whose peer advertised
/// `[peer_min, peer_max]`: the highest version both ends speak.
///
/// # Errors
/// [`WireError::NegotiationFailed`] when the ranges do not overlap.
pub fn negotiate(peer_min: u8, peer_max: u8) -> Result<u8, WireError> {
    let lo = peer_min.max(PROTOCOL_VERSION_MIN);
    let hi = peer_max.min(PROTOCOL_VERSION_MAX);
    if lo > hi {
        return Err(WireError::NegotiationFailed {
            peer_min,
            peer_max,
            ours_min: PROTOCOL_VERSION_MIN,
            ours_max: PROTOCOL_VERSION_MAX,
        });
    }
    Ok(hi)
}

/// A parsed and validated frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Protocol version the sender speaks.
    pub version: u8,
    /// Message kind byte (validated against the known grammar).
    pub kind: u8,
    /// Payload length in bytes (validated against [`MAX_PAYLOAD`]).
    pub payload_len: usize,
}

impl FrameHeader {
    /// Parse and validate the fixed-size header: magic, version, kind and
    /// the payload length bound, in that order (so the caller learns the
    /// *first* violated rule).
    pub fn parse(bytes: &[u8; HEADER_LEN]) -> Result<FrameHeader, WireError> {
        let magic = u16::from_le_bytes([bytes[0], bytes[1]]);
        if magic != FRAME_MAGIC {
            return Err(WireError::BadMagic { found: magic });
        }
        let version = bytes[2];
        if !(PROTOCOL_VERSION_MIN..=PROTOCOL_VERSION_MAX).contains(&version) {
            return Err(WireError::UnsupportedVersion { found: version });
        }
        let kind = bytes[3];
        // A v2-only kind under a v1 header is unknown *to that version*:
        // the header's version byte governs the whole frame's grammar.
        if !(KIND_HELLO..=max_kind_for(version)).contains(&kind) {
            return Err(WireError::UnknownKind { found: kind });
        }
        let payload_len = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) as usize;
        if payload_len > MAX_PAYLOAD {
            return Err(WireError::Oversized {
                len: payload_len,
                max: MAX_PAYLOAD,
            });
        }
        Ok(FrameHeader {
            version,
            kind,
            payload_len,
        })
    }
}

// --- payload writers -------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_weights(out: &mut Vec<u8>, weights: &[f32]) {
    put_u64(out, weights.len() as u64);
    out.reserve(weights.len() * 4);
    for &w in weights {
        put_f32(out, w);
    }
}

// --- payload reader --------------------------------------------------------

/// Sequential reader over a payload slice; every overrun is a typed
/// [`WireError::Malformed`] naming what was being read.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Malformed {
                detail: format!(
                    "payload ended reading {what}: needed {n} bytes at offset {}, had {}",
                    self.pos,
                    self.buf.len() - self.pos
                ),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn f32(&mut self, what: &str) -> Result<f32, WireError> {
        let b = self.take(4, what)?;
        Ok(f32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    fn f64(&mut self, what: &str) -> Result<f64, WireError> {
        let b = self.take(8, what)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn weights(&mut self) -> Result<Vec<f32>, WireError> {
        let count = self.u64("weight count")? as usize;
        // The count must agree with the bytes actually present *before*
        // the allocation, so a corrupt count cannot OOM.
        let available = (self.buf.len() - self.pos) / 4;
        if count > available {
            return Err(WireError::Malformed {
                detail: format!("weight count {count} exceeds the {available} encoded"),
            });
        }
        let raw = self.take(count * 4, "weight data")?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect())
    }

    /// Read `count` little-endian `u32`s, checking the count against the
    /// bytes actually present *before* allocating (same OOM defense as
    /// [`Cursor::weights`]).
    fn u32s(&mut self, count: usize, what: &str) -> Result<Vec<u32>, WireError> {
        let available = (self.buf.len() - self.pos) / 4;
        if count > available {
            return Err(WireError::Malformed {
                detail: format!("{what} count {count} exceeds the {available} encoded"),
            });
        }
        let raw = self.take(count * 4, what)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect())
    }

    /// Read `count` raw-bit `f32`s with the same pre-allocation check.
    fn f32s(&mut self, count: usize, what: &str) -> Result<Vec<f32>, WireError> {
        let available = (self.buf.len() - self.pos) / 4;
        if count > available {
            return Err(WireError::Malformed {
                detail: format!("{what} count {count} exceeds the {available} encoded"),
            });
        }
        let raw = self.take(count * 4, what)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect())
    }

    fn finish(self, what: &str) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::Malformed {
                detail: format!("{} trailing bytes after {what}", self.buf.len() - self.pos),
            });
        }
        Ok(())
    }
}

/// Decode a validated-header payload into its [`Message`]. `version` and
/// `kind` must come from [`FrameHeader::parse`] (unsupported versions and
/// unknown kinds are rejected there); `version` selects the payload
/// grammar where it differs — today only `Hello`, whose v1 payload is the
/// bare client id.
pub fn decode_payload(version: u8, kind: u8, payload: &[u8]) -> Result<Message, WireError> {
    let mut c = Cursor::new(payload);
    let msg = match kind {
        KIND_HELLO => {
            let client_id = c.u64("Hello.client_id")?;
            let (min_version, max_version) = if version >= 2 {
                (c.u8("Hello.min_version")?, c.u8("Hello.max_version")?)
            } else {
                // A v1 peer predates the range handshake: it speaks
                // exactly version 1.
                (1, 1)
            };
            if min_version > max_version {
                return Err(WireError::Malformed {
                    detail: format!(
                        "Hello version range is empty: min {min_version} > max {max_version}"
                    ),
                });
            }
            Message::Hello {
                client_id,
                min_version,
                max_version,
            }
        }
        KIND_HELLO_ACK => Message::HelloAck {
            client_id: c.u64("HelloAck.client_id")?,
            version: c.u8("HelloAck.version")?,
        },
        KIND_MODEL_PUBLISH => Message::ModelPublish {
            version: c.u64("ModelPublish.version")?,
            weights: c.weights()?,
        },
        KIND_MODEL_PUBLISH_DELTA => {
            let msg_version = c.u64("ModelPublishDelta.version")?;
            let base_version = c.u64("ModelPublishDelta.base_version")?;
            let total_len = c.u64("ModelPublishDelta.total_len")?;
            let count = c.u64("ModelPublishDelta.count")? as usize;
            let indices = c.u32s(count, "ModelPublishDelta.indices")?;
            let values = c.f32s(count, "ModelPublishDelta.values")?;
            for pair in indices.windows(2) {
                if pair[1] <= pair[0] {
                    return Err(WireError::Malformed {
                        detail: format!(
                            "ModelPublishDelta indices not strictly ascending: \
                             {} then {}",
                            pair[0], pair[1]
                        ),
                    });
                }
            }
            if let Some(&last) = indices.last() {
                if u64::from(last) >= total_len {
                    return Err(WireError::Malformed {
                        detail: format!(
                            "ModelPublishDelta index {last} out of range for \
                             total_len {total_len}"
                        ),
                    });
                }
            }
            Message::ModelPublishDelta(DeltaMsg {
                version: msg_version,
                base_version,
                total_len,
                indices,
                values,
            })
        }
        KIND_PUBLISH_ACK => Message::PublishAck {
            client_id: c.u64("PublishAck.client_id")?,
            version: c.u64("PublishAck.version")?,
        },
        KIND_TRAIN_REQUEST => Message::TrainRequest {
            round: c.u64("TrainRequest.round")?,
            keep_ratio: c.f64("TrainRequest.keep_ratio")?,
        },
        KIND_UPDATE => Message::Update(UpdateMsg {
            client_id: c.u64("Update.client_id")?,
            round: c.u64("Update.round")?,
            model_version: c.u64("Update.model_version")?,
            staleness: c.u64("Update.staleness")?,
            n_samples: c.u64("Update.n_samples")?,
            loss_before: c.f32("Update.loss_before")?,
            loss_after: c.f32("Update.loss_after")?,
            weights: c.weights()?,
        }),
        KIND_MASKED_UPDATE => {
            let msg = MaskedUpdateMsg {
                client_id: c.u64("MaskedUpdate.client_id")?,
                round: c.u64("MaskedUpdate.round")?,
                model_version: c.u64("MaskedUpdate.model_version")?,
                staleness: c.u64("MaskedUpdate.staleness")?,
                n_samples: c.u64("MaskedUpdate.n_samples")?,
                loss_before: c.f32("MaskedUpdate.loss_before")?,
                loss_after: c.f32("MaskedUpdate.loss_after")?,
                keep_ratio: c.f64("MaskedUpdate.keep_ratio")?,
                total_len: c.u64("MaskedUpdate.total_len")?,
                kept_weights: c.weights()?,
            };
            if !(msg.keep_ratio.is_finite() && 0.0 < msg.keep_ratio && msg.keep_ratio <= 1.0) {
                return Err(WireError::Malformed {
                    detail: format!(
                        "MaskedUpdate keep_ratio must be in (0, 1], got {}",
                        msg.keep_ratio
                    ),
                });
            }
            if msg.kept_weights.len() as u64 > msg.total_len {
                return Err(WireError::Malformed {
                    detail: format!(
                        "MaskedUpdate kept {} weights but total_len is {}",
                        msg.kept_weights.len(),
                        msg.total_len
                    ),
                });
            }
            Message::MaskedUpdate(msg)
        }
        KIND_HEARTBEAT => Message::Heartbeat {
            client_id: c.u64("Heartbeat.client_id")?,
        },
        KIND_BYE => Message::Bye {
            client_id: c.u64("Bye.client_id")?,
        },
        other => return Err(WireError::UnknownKind { found: other }),
    };
    c.finish(kind_name(kind))?;
    Ok(msg)
}

fn kind_name(kind: u8) -> &'static str {
    match kind {
        KIND_HELLO => "Hello",
        KIND_MODEL_PUBLISH => "ModelPublish",
        KIND_TRAIN_REQUEST => "TrainRequest",
        KIND_UPDATE => "Update",
        KIND_HEARTBEAT => "Heartbeat",
        KIND_BYE => "Bye",
        KIND_HELLO_ACK => "HelloAck",
        KIND_MASKED_UPDATE => "MaskedUpdate",
        KIND_MODEL_PUBLISH_DELTA => "ModelPublishDelta",
        KIND_PUBLISH_ACK => "PublishAck",
        _ => "unknown",
    }
}

impl Message {
    /// The message's kind byte in the frame header.
    pub fn kind(&self) -> u8 {
        match self {
            Message::Hello { .. } => KIND_HELLO,
            Message::HelloAck { .. } => KIND_HELLO_ACK,
            Message::ModelPublish { .. } => KIND_MODEL_PUBLISH,
            Message::ModelPublishDelta(_) => KIND_MODEL_PUBLISH_DELTA,
            Message::PublishAck { .. } => KIND_PUBLISH_ACK,
            Message::TrainRequest { .. } => KIND_TRAIN_REQUEST,
            Message::Update(_) => KIND_UPDATE,
            Message::MaskedUpdate(_) => KIND_MASKED_UPDATE,
            Message::Heartbeat { .. } => KIND_HEARTBEAT,
            Message::Bye { .. } => KIND_BYE,
        }
    }

    /// The oldest protocol version whose grammar can carry this message.
    pub fn min_wire_version(&self) -> u8 {
        if self.kind() > KIND_BYE {
            2
        } else {
            1
        }
    }

    /// Encode into a complete frame stamped with the preferred version
    /// ([`PROTOCOL_VERSION`]). Use [`Message::encode_v`] on a connection
    /// negotiated down to an older version.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_v(PROTOCOL_VERSION)
    }

    /// Encode into a complete frame (header + payload) under `version`'s
    /// grammar.
    ///
    /// # Panics
    /// If `version` is outside the supported range or the message's kind
    /// does not exist at `version` (both are programmer errors — the
    /// negotiated version of a connection bounds what may be sent on it).
    pub fn encode_v(&self, version: u8) -> Vec<u8> {
        assert!(
            (PROTOCOL_VERSION_MIN..=PROTOCOL_VERSION_MAX).contains(&version),
            "cannot encode at protocol version {version} (this build speaks \
             {PROTOCOL_VERSION_MIN}..={PROTOCOL_VERSION_MAX})"
        );
        assert!(
            version >= self.min_wire_version(),
            "{} frames require protocol version {} (encoding at {version})",
            kind_name(self.kind()),
            self.min_wire_version(),
        );
        let mut payload = Vec::new();
        match self {
            Message::Hello {
                client_id,
                min_version,
                max_version,
            } => {
                put_u64(&mut payload, *client_id);
                // The version range rides only on v2+ frames; a v1 Hello
                // is the bare id (its range is implicitly [1, 1]).
                if version >= 2 {
                    payload.push(*min_version);
                    payload.push(*max_version);
                }
            }
            Message::HelloAck { client_id, version } => {
                put_u64(&mut payload, *client_id);
                payload.push(*version);
            }
            Message::ModelPublish { version, weights } => {
                put_u64(&mut payload, *version);
                put_weights(&mut payload, weights);
            }
            Message::ModelPublishDelta(d) => {
                assert_eq!(
                    d.indices.len(),
                    d.values.len(),
                    "delta indices and values must pair up"
                );
                put_u64(&mut payload, d.version);
                put_u64(&mut payload, d.base_version);
                put_u64(&mut payload, d.total_len);
                put_u64(&mut payload, d.indices.len() as u64);
                payload.reserve(d.indices.len() * 8);
                for &i in &d.indices {
                    put_u32(&mut payload, i);
                }
                for &v in &d.values {
                    put_f32(&mut payload, v);
                }
            }
            Message::PublishAck { client_id, version } => {
                put_u64(&mut payload, *client_id);
                put_u64(&mut payload, *version);
            }
            Message::TrainRequest { round, keep_ratio } => {
                put_u64(&mut payload, *round);
                put_f64(&mut payload, *keep_ratio);
            }
            Message::Update(u) => {
                put_u64(&mut payload, u.client_id);
                put_u64(&mut payload, u.round);
                put_u64(&mut payload, u.model_version);
                put_u64(&mut payload, u.staleness);
                put_u64(&mut payload, u.n_samples);
                put_f32(&mut payload, u.loss_before);
                put_f32(&mut payload, u.loss_after);
                put_weights(&mut payload, &u.weights);
            }
            Message::MaskedUpdate(u) => {
                put_u64(&mut payload, u.client_id);
                put_u64(&mut payload, u.round);
                put_u64(&mut payload, u.model_version);
                put_u64(&mut payload, u.staleness);
                put_u64(&mut payload, u.n_samples);
                put_f32(&mut payload, u.loss_before);
                put_f32(&mut payload, u.loss_after);
                put_f64(&mut payload, u.keep_ratio);
                put_u64(&mut payload, u.total_len);
                put_weights(&mut payload, &u.kept_weights);
            }
            Message::Heartbeat { client_id } => put_u64(&mut payload, *client_id),
            Message::Bye { client_id } => put_u64(&mut payload, *client_id),
        }
        assert!(
            payload.len() <= MAX_PAYLOAD,
            "encoded payload of {} bytes exceeds MAX_PAYLOAD",
            payload.len()
        );
        let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
        frame.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        frame.push(version);
        frame.push(self.kind());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }

    /// Decode one frame from the front of `buf`, returning the message and
    /// the bytes consumed. A buffer shorter than the frame it starts is
    /// [`WireError::Truncated`]; bytes *after* the frame are fine (they
    /// belong to the next one).
    pub fn decode(buf: &[u8]) -> Result<(Message, usize), WireError> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated {
                needed: HEADER_LEN,
                got: buf.len(),
            });
        }
        let header = FrameHeader::parse(buf[..HEADER_LEN].try_into().expect("header slice"))?;
        let total = HEADER_LEN + header.payload_len;
        if buf.len() < total {
            return Err(WireError::Truncated {
                needed: total,
                got: buf.len(),
            });
        }
        let msg = decode_payload(header.version, header.kind, &buf[HEADER_LEN..total])?;
        Ok((msg, total))
    }
}

/// Write one frame to a stream.
pub fn write_frame<W: Write>(w: &mut W, msg: &Message) -> Result<(), WireError> {
    w.write_all(&msg.encode())?;
    w.flush()?;
    Ok(())
}

/// Read one frame from a stream. `Ok(None)` on a clean end-of-stream at a
/// frame boundary; EOF mid-frame is [`WireError::Truncated`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Message>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        match r.read(&mut header[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(WireError::Truncated {
                    needed: HEADER_LEN,
                    got: filled,
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let fh = FrameHeader::parse(&header)?;
    let mut payload = vec![0u8; fh.payload_len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated {
                needed: HEADER_LEN + fh.payload_len,
                got: HEADER_LEN,
            }
        } else {
            e.into()
        }
    })?;
    decode_payload(fh.version, fh.kind, &payload).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_update() -> Message {
        Message::Update(UpdateMsg {
            client_id: 3,
            round: 7,
            model_version: 6,
            staleness: 0,
            n_samples: 120,
            loss_before: 1.25,
            loss_after: 0.75,
            weights: vec![0.5, -1.0, f32::MIN_POSITIVE, 3.25e7],
        })
    }

    fn sample_masked_update() -> Message {
        Message::MaskedUpdate(MaskedUpdateMsg {
            client_id: 4,
            round: 9,
            model_version: 8,
            staleness: 0,
            n_samples: 64,
            loss_before: 2.0,
            loss_after: 1.5,
            keep_ratio: 0.625,
            total_len: 10,
            kept_weights: vec![0.25, -0.5, 1.0e-7],
        })
    }

    fn sample_delta() -> Message {
        Message::ModelPublishDelta(DeltaMsg {
            version: 12,
            base_version: 11,
            total_len: 100,
            indices: vec![0, 7, 99],
            values: vec![1.0, -2.5, f32::MIN_POSITIVE],
        })
    }

    #[test]
    fn every_kind_round_trips() {
        let msgs = [
            Message::Hello {
                client_id: 9,
                min_version: 1,
                max_version: 2,
            },
            Message::HelloAck {
                client_id: 9,
                version: 2,
            },
            Message::ModelPublish {
                version: 4,
                weights: vec![1.0, 2.0, -0.125],
            },
            sample_delta(),
            Message::PublishAck {
                client_id: 3,
                version: 4,
            },
            Message::TrainRequest {
                round: 11,
                keep_ratio: 0.625,
            },
            sample_update(),
            sample_masked_update(),
            Message::Heartbeat { client_id: 2 },
            Message::Bye { client_id: 5 },
        ];
        for msg in msgs {
            let frame = msg.encode();
            let (back, used) = Message::decode(&frame).expect("decode");
            assert_eq!(used, frame.len());
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn v1_hello_is_the_bare_client_id_and_decodes_with_a_pinned_range() {
        let msg = Message::Hello {
            client_id: 7,
            min_version: 1,
            max_version: 1,
        };
        let frame = msg.encode_v(1);
        assert_eq!(frame.len(), HEADER_LEN + 8, "v1 Hello payload is one u64");
        assert_eq!(frame[2], 1, "header carries the requested version");
        let (back, _) = Message::decode(&frame).expect("decode");
        assert_eq!(back, msg);
    }

    #[test]
    fn v2_only_kinds_are_unknown_under_a_v1_header() {
        let mut frame = sample_masked_update().encode();
        frame[2] = 1;
        assert_eq!(
            Message::decode(&frame),
            Err(WireError::UnknownKind { found: 8 })
        );
    }

    #[test]
    #[should_panic(expected = "require protocol version 2")]
    fn encoding_a_v2_message_at_v1_panics() {
        sample_masked_update().encode_v(1);
    }

    #[test]
    fn negotiation_picks_the_highest_common_version() {
        assert_eq!(negotiate(1, 1), Ok(1));
        assert_eq!(negotiate(1, 2), Ok(2));
        assert_eq!(negotiate(2, 2), Ok(2));
        assert_eq!(negotiate(1, 200), Ok(PROTOCOL_VERSION_MAX));
        assert_eq!(
            negotiate(3, 200),
            Err(WireError::NegotiationFailed {
                peer_min: 3,
                peer_max: 200,
                ours_min: PROTOCOL_VERSION_MIN,
                ours_max: PROTOCOL_VERSION_MAX,
            })
        );
    }

    #[test]
    fn delta_grammar_rejects_unsorted_and_out_of_range_indices() {
        let mut unsorted = sample_delta();
        if let Message::ModelPublishDelta(d) = &mut unsorted {
            d.indices = vec![7, 7, 99];
        }
        assert!(matches!(
            Message::decode(&unsorted.encode()),
            Err(WireError::Malformed { .. })
        ));
        let mut oob = sample_delta();
        if let Message::ModelPublishDelta(d) = &mut oob {
            d.indices = vec![0, 7, 100];
        }
        assert!(matches!(
            Message::decode(&oob.encode()),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn masked_update_grammar_rejects_bad_ratio_and_overfull_kept_set() {
        let mut bad_ratio = sample_masked_update();
        if let Message::MaskedUpdate(u) = &mut bad_ratio {
            u.keep_ratio = 0.0;
        }
        assert!(matches!(
            Message::decode(&bad_ratio.encode()),
            Err(WireError::Malformed { .. })
        ));
        let mut overfull = sample_masked_update();
        if let Message::MaskedUpdate(u) = &mut overfull {
            u.total_len = 2;
        }
        assert!(matches!(
            Message::decode(&overfull.encode()),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn weights_round_trip_bit_exact_including_nan() {
        let weights: Vec<f32> = [0x7FC0_0001u32, 0xFF80_0000, 0x0000_0001, 0x8000_0000]
            .iter()
            .map(|&b| f32::from_bits(b))
            .collect();
        let msg = Message::ModelPublish {
            version: 1,
            weights: weights.clone(),
        };
        let (back, _) = Message::decode(&msg.encode()).expect("decode");
        let Message::ModelPublish { weights: got, .. } = back else {
            panic!("wrong kind");
        };
        let bits: Vec<u32> = got.iter().map(|w| w.to_bits()).collect();
        let want: Vec<u32> = weights.iter().map(|w| w.to_bits()).collect();
        assert_eq!(bits, want);
    }

    #[test]
    fn bad_magic_version_kind_are_typed() {
        let mut frame = sample_update().encode();
        frame[0] ^= 0xFF;
        assert!(matches!(
            Message::decode(&frame),
            Err(WireError::BadMagic { .. })
        ));

        let mut frame = sample_update().encode();
        frame[2] = 99;
        assert_eq!(
            Message::decode(&frame),
            Err(WireError::UnsupportedVersion { found: 99 })
        );

        let mut frame = sample_update().encode();
        frame[3] = 0;
        assert_eq!(
            Message::decode(&frame),
            Err(WireError::UnknownKind { found: 0 })
        );
    }

    #[test]
    fn truncation_is_rejected_at_every_prefix() {
        let frame = sample_update().encode();
        for cut in 0..frame.len() {
            let err = Message::decode(&frame[..cut]).expect_err("truncated frame accepted");
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut frame = sample_update().encode();
        frame[4..8].copy_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        assert_eq!(
            Message::decode(&frame),
            Err(WireError::Oversized {
                len: MAX_PAYLOAD + 1,
                max: MAX_PAYLOAD
            })
        );
    }

    #[test]
    fn lying_weight_count_is_malformed_not_oom() {
        let mut frame = Message::ModelPublish {
            version: 0,
            weights: vec![1.0],
        }
        .encode();
        // Payload layout: version u64 | count u64 | f32. Corrupt the count.
        let count_off = HEADER_LEN + 8;
        frame[count_off..count_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Message::decode(&frame),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn trailing_payload_bytes_are_malformed() {
        let mut frame = Message::Heartbeat { client_id: 1 }.encode();
        frame.push(0xAB);
        let len = (frame.len() - HEADER_LEN) as u32;
        frame[4..8].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(
            Message::decode(&frame),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn stream_read_write_round_trips_and_reports_clean_eof() {
        let mut buf = Vec::new();
        let hello = Message::Hello {
            client_id: 1,
            min_version: 1,
            max_version: 2,
        };
        write_frame(&mut buf, &hello).unwrap();
        write_frame(&mut buf, &sample_update()).unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), Some(hello));
        assert_eq!(read_frame(&mut r).unwrap(), Some(sample_update()));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn stream_eof_mid_frame_is_truncated() {
        let frame = sample_update().encode();
        let mut r = io::Cursor::new(&frame[..frame.len() - 1]);
        assert!(matches!(
            read_frame(&mut r),
            Err(WireError::Truncated { .. })
        ));
        // EOF inside the header, too.
        let mut r = io::Cursor::new(&frame[..3]);
        assert!(matches!(
            read_frame(&mut r),
            Err(WireError::Truncated { needed: 8, got: 3 })
        ));
    }

    #[test]
    fn wire_errors_surface_as_typed_fl_errors() {
        let e: FlError = WireError::BadMagic { found: 0xBEEF }.into();
        assert!(matches!(e, FlError::Protocol { .. }));
        let e: FlError = WireError::Io {
            kind: io::ErrorKind::ConnectionReset,
            detail: "peer reset".into(),
        }
        .into();
        assert!(matches!(e, FlError::Io { .. }));
    }
}
