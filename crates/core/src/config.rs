//! FedDRL configuration.

use feddrl_drl::config::DdpgConfig;
use serde::{Deserialize, Serialize};

/// Top-level FedDRL settings: the DDPG hyper-parameters (Table 1) plus the
/// FedDRL-specific knobs the paper describes in prose.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FedDrlConfig {
    /// DDPG template; `state_dim`/`action_dim` are overwritten per `k`
    /// when the strategy is constructed.
    pub ddpg: DdpgConfig,
    /// λ weighting of the fairness (max−min) reward term (Eq. 7 combines
    /// both terms with implicit weight 1).
    pub reward_lambda: f32,
    /// Add exploration noise while acting.
    pub explore: bool,
    /// Train the agent online after every stored transition (the paper's
    /// "side thread"; disable for a frozen, pre-trained policy).
    pub online_training: bool,
    /// Append a fourth per-client block to the observation — each update's
    /// staleness in model versions, squashed into `[0, 1)` — so the agent
    /// can learn to down-weight updates that carried over rounds or aged
    /// in an asynchronous buffer. Off (the paper's `3K` state) by default:
    /// enabling it changes the policy-network input width, so it is a
    /// deliberate opt-in, never a silent drift of synchronous runs.
    #[serde(default)]
    pub observe_staleness: bool,
    /// Append a per-client block to the observation — the fraction of the
    /// model each update did *not* train under adaptive structured dropout
    /// (`1 − mask_ratio`, exactly `0` for full-model updates) — so the
    /// agent can learn how much to trust sub-model contributions from
    /// availability-pressured devices. Off by default for the same reason
    /// as [`FedDrlConfig::observe_staleness`]: the block widens the
    /// policy-network input, so it is a deliberate opt-in.
    #[serde(default)]
    pub observe_availability: bool,
    /// Seed for the strategy's impact-factor sampling.
    pub seed: u64,
}

impl Default for FedDrlConfig {
    fn default() -> Self {
        Self {
            ddpg: DdpgConfig::default(),
            reward_lambda: 1.0,
            explore: true,
            online_training: true,
            observe_staleness: false,
            observe_availability: false,
            seed: 0xFED_D41,
        }
    }
}

impl FedDrlConfig {
    /// Per-client blocks of the observation vector: the paper's three
    /// (`l_before`, `l_after`, sample fraction) plus one staleness block
    /// when [`FedDrlConfig::observe_staleness`] is set and one
    /// availability block when [`FedDrlConfig::observe_availability`] is.
    pub fn state_blocks(&self) -> usize {
        3 + usize::from(self.observe_staleness) + usize::from(self.observe_availability)
    }

    /// DDPG config resized for `k` participating clients (state
    /// `state_blocks() · k` — the paper's `3k` by default — and action
    /// `2k`, per §3.3).
    pub fn ddpg_for(&self, k: usize) -> DdpgConfig {
        assert!(k > 0, "FedDRL needs at least one participating client");
        DdpgConfig {
            state_dim: self.state_blocks() * k,
            action_dim: 2 * k,
            ..self.ddpg.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddpg_for_resizes_dims_only() {
        let cfg = FedDrlConfig::default();
        let d = cfg.ddpg_for(7);
        assert_eq!(d.state_dim, 21);
        assert_eq!(d.action_dim, 14);
        assert_eq!(d.hidden, cfg.ddpg.hidden);
        assert_eq!(d.gamma, cfg.ddpg.gamma);
    }

    #[test]
    fn staleness_observation_widens_state_only() {
        let cfg = FedDrlConfig {
            observe_staleness: true,
            ..Default::default()
        };
        assert_eq!(cfg.state_blocks(), 4);
        let d = cfg.ddpg_for(7);
        assert_eq!(d.state_dim, 28, "staleness adds one K-block to the state");
        assert_eq!(d.action_dim, 14, "the action stays 2K");
        // The flag is serde-defaulted so existing configs load unchanged.
        let back: FedDrlConfig =
            serde_json::from_str(&serde_json::to_string(&FedDrlConfig::default()).unwrap())
                .unwrap();
        assert!(!back.observe_staleness);
    }

    #[test]
    fn availability_observation_stacks_with_staleness() {
        let cfg = FedDrlConfig {
            observe_availability: true,
            ..Default::default()
        };
        assert_eq!(cfg.state_blocks(), 4);
        assert_eq!(cfg.ddpg_for(5).state_dim, 20);
        let both = FedDrlConfig {
            observe_staleness: true,
            observe_availability: true,
            ..Default::default()
        };
        assert_eq!(both.state_blocks(), 5);
        assert_eq!(both.ddpg_for(5).state_dim, 25);
        assert_eq!(both.ddpg_for(5).action_dim, 10, "the action stays 2K");
        // Pre-dynamics configs (no such key) must still deserialize, off.
        let legacy: FedDrlConfig = serde_json::from_str(
            &serde_json::to_string(&FedDrlConfig::default())
                .unwrap()
                .replace("\"observe_availability\":false,", ""),
        )
        .unwrap();
        assert!(!legacy.observe_availability);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_zero_clients() {
        let _ = FedDrlConfig::default().ddpg_for(0);
    }

    #[test]
    fn serde_roundtrip() {
        let cfg = FedDrlConfig {
            reward_lambda: 0.5,
            ..Default::default()
        };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: FedDrlConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
