//! High-level FedDRL run orchestration.
//!
//! Wires the two training modes together the way the paper deploys them:
//! optionally pre-train an agent with the two-stage procedure (§3.4.2),
//! then run the measured federated training with the FedDRL strategy
//! continuing to learn online (the paper's main-thread/side-thread split).

use crate::config::FedDrlConfig;
use crate::strategy::FedDrl;
use crate::two_stage::{two_stage_train, TwoStageConfig, TwoStageReport};
use feddrl_data::dataset::Dataset;
use feddrl_data::partition::Partition;
use feddrl_fl::error::FlError;
#[cfg(test)]
use feddrl_fl::executor::ExecutorConfig;
use feddrl_fl::history::RunHistory;
use feddrl_fl::server::FlConfig;
#[cfg(test)]
use feddrl_fl::server::Selection;
use feddrl_fl::session::SessionBuilder;
use feddrl_nn::zoo::ModelSpec;
use serde::{Deserialize, Serialize};

/// How the FedDRL agent is obtained for a measured run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FedDrlRunConfig {
    /// Strategy/agent settings.
    pub feddrl: FedDrlConfig,
    /// Optional two-stage pre-training before the measured run.
    pub two_stage: Option<TwoStageConfig>,
}

/// Result of [`run_feddrl`].
pub struct FedDrlRun {
    /// Round-by-round history of the measured run.
    pub history: RunHistory,
    /// Two-stage diagnostics when pre-training was enabled.
    pub two_stage_report: Option<TwoStageReport>,
    /// Rewards observed during the measured run.
    pub rewards: Vec<f32>,
}

/// Run FedDRL end to end: (optional) two-stage pre-training, then the
/// measured federated training.
///
/// # Errors
/// Returns the [`FlError`] the session builder reports for a degenerate
/// `fl_cfg` (`K = 0`, `K > N`, zero rounds, bad deadline/fleet) — before
/// any pre-training compute is spent.
pub fn try_run_feddrl(
    spec: &ModelSpec,
    train: &Dataset,
    test: &Dataset,
    partition: &Partition,
    fl_cfg: &FlConfig,
    run_cfg: &FedDrlRunConfig,
    dataset_name: &str,
) -> Result<FedDrlRun, FlError> {
    // Validate the orchestration config up front: two-stage pre-training
    // is expensive, it reuses (a clone of) the same config, and the DRL
    // agent itself cannot be sized from a degenerate `participants`.
    fl_cfg.validate(partition.n_clients())?;
    let (mut strategy, report) = match &run_cfg.two_stage {
        Some(ts) => {
            let (agent, report) =
                two_stage_train(spec, train, test, partition, fl_cfg, &run_cfg.feddrl, ts);
            (FedDrl::from_agent(agent, &run_cfg.feddrl), Some(report))
        }
        None => (FedDrl::new(fl_cfg.participants, &run_cfg.feddrl), None),
    };
    let history = SessionBuilder::new(spec, train, test, partition, &mut strategy)
        .config(fl_cfg)
        .dataset_name(dataset_name)
        .build()?
        .run()?;
    Ok(FedDrlRun {
        history,
        two_stage_report: report,
        rewards: strategy.rewards().to_vec(),
    })
}

/// Run FedDRL end to end: (optional) two-stage pre-training, then the
/// measured federated training. Convenience wrapper over
/// [`try_run_feddrl`] with an unnamed dataset.
///
/// # Panics
/// Panics on the configuration errors [`try_run_feddrl`] reports.
pub fn run_feddrl(
    spec: &ModelSpec,
    train: &Dataset,
    test: &Dataset,
    partition: &Partition,
    fl_cfg: &FlConfig,
    run_cfg: &FedDrlRunConfig,
) -> FedDrlRun {
    try_run_feddrl(spec, train, test, partition, fl_cfg, run_cfg, "")
        .unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use feddrl_data::partition::PartitionMethod;
    use feddrl_data::synth::SynthSpec;
    use feddrl_fl::client::LocalTrainConfig;
    use feddrl_nn::rng::Rng64;

    fn env() -> (ModelSpec, Dataset, Dataset, Partition, FlConfig) {
        let (train, test) = SynthSpec {
            train_size: 800,
            test_size: 200,
            ..SynthSpec::mnist_like()
        }
        .generate(8);
        let partition = PartitionMethod::ce(0.6)
            .partition(&train, 6, &mut Rng64::new(2))
            .unwrap();
        let spec = ModelSpec::Mlp {
            in_dim: train.feature_dim(),
            hidden: vec![24],
            out_dim: train.num_classes(),
        };
        let fl_cfg = FlConfig {
            rounds: 8,
            participants: 6,
            local: LocalTrainConfig {
                epochs: 2,
                batch_size: 16,
                lr: 0.05,
                ..Default::default()
            },
            eval_batch: 128,
            seed: 21,
            log_every: 0,
            selection: Selection::Uniform,
            executor: ExecutorConfig::Ideal,
            server_opt: feddrl_fl::server_opt::ServerOptConfig::Plain,
        };
        (spec, train, test, partition, fl_cfg)
    }

    fn small_run_cfg() -> FedDrlRunConfig {
        let mut cfg = FedDrlRunConfig::default();
        cfg.feddrl.ddpg.hidden = 32;
        cfg.feddrl.ddpg.batch_size = 4;
        cfg.feddrl.ddpg.warmup = 4;
        cfg.feddrl.ddpg.updates_per_round = 1;
        cfg
    }

    #[test]
    fn online_only_run_learns() {
        let (spec, train, test, partition, fl_cfg) = env();
        let run = run_feddrl(&spec, &train, &test, &partition, &fl_cfg, &small_run_cfg());
        assert_eq!(run.history.records.len(), 8);
        assert!(run.two_stage_report.is_none());
        assert_eq!(run.rewards.len(), 7);
        assert!(
            run.history.best().best_accuracy > 0.5,
            "FedDRL failed to learn at all: {}",
            run.history.best().best_accuracy
        );
    }

    #[test]
    fn feddrl_runs_under_deadline_executor_with_dropouts() {
        use feddrl_fl::executor::{HeteroConfig, LatePolicy};
        use feddrl_sim::device::FleetConfig;

        let (spec, train, test, partition, mut fl_cfg) = env();
        fl_cfg.rounds = 5;
        fl_cfg.executor = ExecutorConfig::Deadline(HeteroConfig {
            fleet: FleetConfig {
                compute_skew: 4.0,
                dropout: 0.3,
                ..Default::default()
            },
            deadline_s: None,
            late_policy: LatePolicy::Drop,
            ..Default::default()
        });
        let run = run_feddrl(&spec, &train, &test, &partition, &fl_cfg, &small_run_cfg());
        assert_eq!(run.history.records.len(), 5);
        assert!(
            run.history.total_dropouts() > 0,
            "30% dropout over 30 client-rounds drew nothing"
        );
        assert!(run.history.mean_participation() < 6.0);
        assert!(run.history.total_sim_time_s() > 0.0);
        // Short rounds still produce normalized factors for the survivors.
        for r in &run.history.records {
            let h = r
                .hetero
                .as_ref()
                .expect("deadline run must record telemetry");
            assert_eq!(h.aggregated(), r.impact_factors.len());
            if !r.impact_factors.is_empty() {
                let sum: f32 = r.impact_factors.iter().sum();
                assert!((sum - 1.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn feddrl_observes_staleness_under_buffered_executor() {
        use feddrl_fl::executor::{BufferedConfig, StalenessDiscount};
        use feddrl_sim::device::FleetConfig;

        let (spec, train, test, partition, mut fl_cfg) = env();
        fl_cfg.rounds = 6;
        fl_cfg.executor = ExecutorConfig::Buffered(BufferedConfig {
            fleet: FleetConfig {
                compute_skew: 6.0,
                ..Default::default()
            },
            buffer_size: 3,
            staleness: StalenessDiscount::Polynomial { alpha: 1.0 },
            ..Default::default()
        });
        let mut cfg = small_run_cfg();
        cfg.feddrl.observe_staleness = true;
        let run = run_feddrl(&spec, &train, &test, &partition, &fl_cfg, &cfg);
        assert_eq!(run.history.records.len(), 6);
        for r in &run.history.records {
            let h = r
                .hetero
                .as_ref()
                .expect("buffered run must record telemetry");
            assert!(
                r.impact_factors.is_empty() || r.impact_factors.len() == 3,
                "aggregations must hold exactly the buffer size"
            );
            assert_eq!(h.staleness.len(), r.impact_factors.len());
            if !r.impact_factors.is_empty() {
                let sum: f32 = r.impact_factors.iter().sum();
                assert!((sum - 1.0).abs() < 1e-4);
            }
        }
        assert!(
            run.history.mean_staleness() > 0.0,
            "a 6x-skewed fleet with a small buffer must aggregate stale updates"
        );
        assert!(run.history.total_sim_time_s() > 0.0);
    }

    #[test]
    fn two_stage_pretraining_is_reported() {
        let (spec, train, test, partition, fl_cfg) = env();
        let mut cfg = small_run_cfg();
        cfg.two_stage = Some(TwoStageConfig {
            workers: 2,
            online_rounds: 3,
            offline_updates: 2,
            seed: 3,
        });
        let run = run_feddrl(&spec, &train, &test, &partition, &fl_cfg, &cfg);
        let report = run.two_stage_report.expect("two-stage report missing");
        assert_eq!(report.worker_experiences.len(), 2);
        assert!(report.merged_experiences >= 4);
        assert_eq!(run.history.method, "FedDRL");
    }
}
