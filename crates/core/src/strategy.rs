//! The FedDRL aggregation strategy (paper §3.2–3.4, Figure 2 steps 4–5).
//!
//! [`FedDrl`] implements the simulator's [`Strategy`] trait: each round it
//! builds the DRL state from the clients' reports, completes the previous
//! round's transition (the reward for action `a_{t-1}` is computed from
//! this round's `l_before` losses — i.e. from how well the *aggregated*
//! model serves the clients), optionally trains the agent online, then
//! emits impact factors by sampling `softmax(N(μ, σ))` from the policy's
//! action.

use crate::config::FedDrlConfig;
use crate::state::{append_availability_block, build_state, build_state_with_staleness};
use feddrl_drl::buffer::Experience;
use feddrl_drl::ddpg::{sample_impact_factors, DdpgAgent, TrainStats};
use feddrl_drl::reward::reward_from_losses;
use feddrl_fl::client::ClientSummary;
use feddrl_fl::strategy::{RoundContext, Strategy};
use feddrl_nn::rng::Rng64;

/// Deep-reinforcement-learning-based adaptive aggregation.
pub struct FedDrl {
    agent: DdpgAgent,
    lambda: f32,
    explore: bool,
    online_training: bool,
    /// Observe per-update staleness as a fourth state block (see
    /// [`FedDrlConfig::observe_staleness`]).
    observe_staleness: bool,
    /// Observe each update's untrained model fraction under adaptive
    /// structured dropout (see [`FedDrlConfig::observe_availability`]).
    observe_availability: bool,
    /// `(state, action)` of the previous round, awaiting its reward.
    pending: Option<(Vec<f32>, Vec<f32>)>,
    rng: Rng64,
    train_stats: Vec<TrainStats>,
    rewards: Vec<f32>,
}

impl FedDrl {
    /// Create a FedDRL strategy for `k` participating clients per round.
    pub fn new(k: usize, cfg: &FedDrlConfig) -> Self {
        let agent = DdpgAgent::new(cfg.ddpg_for(k));
        Self::from_agent(agent, cfg)
    }

    /// Wrap an existing (e.g. two-stage pre-trained) agent.
    pub fn from_agent(agent: DdpgAgent, cfg: &FedDrlConfig) -> Self {
        Self {
            rng: Rng64::new(cfg.seed ^ 0xA1FA),
            lambda: cfg.reward_lambda,
            explore: cfg.explore,
            online_training: cfg.online_training,
            observe_staleness: cfg.observe_staleness,
            observe_availability: cfg.observe_availability,
            pending: None,
            train_stats: Vec::new(),
            rewards: Vec::new(),
            agent,
        }
    }

    /// Immutable access to the embedded agent.
    pub fn agent(&self) -> &DdpgAgent {
        &self.agent
    }

    /// Consume the strategy, returning the agent (two-stage workers hand
    /// their experience buffers over this way).
    pub fn into_agent(self) -> DdpgAgent {
        self.agent
    }

    /// Rewards observed so far (one per completed transition).
    pub fn rewards(&self) -> &[f32] {
        &self.rewards
    }

    /// Training diagnostics collected so far.
    pub fn train_stats(&self) -> &[TrainStats] {
        &self.train_stats
    }

    /// Toggle exploration noise (on for online/worker training, off for
    /// pure exploitation).
    pub fn set_explore(&mut self, explore: bool) {
        self.explore = explore;
    }
}

impl FedDrl {
    /// Per-client state blocks: the paper's 3, plus staleness and
    /// availability when observed.
    fn blocks(&self) -> usize {
        3 + usize::from(self.observe_staleness) + usize::from(self.observe_availability)
    }

    /// The agent's designed-for participant count `K` (state is
    /// `blocks() · K`, the paper's `3K` by default).
    fn capacity(&self) -> usize {
        self.agent.config().state_dim / self.blocks()
    }

    /// Lift an `m`-client state onto the agent's fixed per-block-`K`
    /// observation.
    ///
    /// Heterogeneous rounds (dropouts, deadline cuts — see
    /// `feddrl_fl::executor`) can report fewer than `K` clients. The loss
    /// blocks are z-normalized (mean 0), so zero-padding the tail of each
    /// block presents the missing clients as "average" placeholders, and
    /// a zero sample-fraction marks them as contributing no data (a zero
    /// staleness feature likewise reads as "fresh", and a zero
    /// availability feature as "trained the full model"). For `m == K`
    /// this is the identity, keeping full-participation rounds
    /// bit-identical to the pre-heterogeneity behavior.
    fn pad_state(
        &self,
        summaries: &[ClientSummary],
        staleness: &[usize],
        mask_ratios: &[f32],
    ) -> Vec<f32> {
        let (m, k, blocks) = (summaries.len(), self.capacity(), self.blocks());
        let mut raw = if self.observe_staleness {
            build_state_with_staleness(summaries, staleness)
        } else {
            build_state(summaries)
        };
        if self.observe_availability {
            append_availability_block(&mut raw, m, mask_ratios);
        }
        if m == k {
            return raw;
        }
        let mut state = vec![0.0f32; blocks * k];
        for block in 0..blocks {
            state[block * k..block * k + m].copy_from_slice(&raw[block * m..(block + 1) * m]);
        }
        state
    }

    /// [`Strategy::impact_factors`] with per-update staleness (model
    /// versions behind, aligned with `summaries`; empty means all fresh).
    /// The staleness only enters the DRL state when
    /// [`FedDrlConfig::observe_staleness`] is set — otherwise this is
    /// exactly the 3-block paper path, bit for bit.
    pub fn impact_factors_with_staleness(
        &mut self,
        round: usize,
        summaries: &[ClientSummary],
        staleness: &[usize],
    ) -> Vec<f32> {
        self.impact_factors_with_dynamics(round, summaries, staleness, &[])
    }

    /// [`FedDrl::impact_factors_with_staleness`] plus per-update mask
    /// ratios (the model fraction each update trained under adaptive
    /// structured dropout, aligned with `summaries`; empty means all
    /// full-model). Mask ratios only enter the DRL state when
    /// [`FedDrlConfig::observe_availability`] is set — otherwise they are
    /// ignored bit for bit, exactly like unobserved staleness.
    pub fn impact_factors_with_dynamics(
        &mut self,
        _round: usize,
        summaries: &[ClientSummary],
        staleness: &[usize],
        mask_ratios: &[f32],
    ) -> Vec<f32> {
        let (m, k) = (summaries.len(), self.capacity());
        assert!(
            m >= 1 && m <= k,
            "FedDRL built for K = {k} clients got {m} summaries"
        );
        let state = self.pad_state(summaries, staleness, mask_ratios);

        // Close the previous transition: this round's l_before losses are
        // the environment's feedback on the previous aggregation.
        if let Some((prev_state, prev_action)) = self.pending.take() {
            let losses: Vec<f32> = summaries.iter().map(|s| s.loss_before).collect();
            let reward = reward_from_losses(&losses, self.lambda);
            self.rewards.push(reward);
            self.agent.remember(Experience {
                state: prev_state,
                action: prev_action,
                reward,
                next_state: state.clone(),
            });
            if self.online_training {
                if let Some(stats) = self.agent.train() {
                    self.train_stats.push(stats);
                }
            }
        }

        // The action holds K means then K std-devs; a short round samples
        // factors from its first `m` of each.
        let action = self.agent.act(&state, self.explore);
        let alpha = if m == k {
            sample_impact_factors(&action, &mut self.rng)
        } else {
            let mut mu_sigma = Vec::with_capacity(2 * m);
            mu_sigma.extend_from_slice(&action[..m]);
            mu_sigma.extend_from_slice(&action[k..k + m]);
            sample_impact_factors(&mu_sigma, &mut self.rng)
        };
        self.pending = Some((state, action));
        alpha
    }
}

impl Strategy for FedDrl {
    fn name(&self) -> &'static str {
        "FedDRL"
    }

    fn impact_factors(&mut self, round: usize, summaries: &[ClientSummary]) -> Vec<f32> {
        self.impact_factors_with_staleness(round, summaries, &[])
    }

    fn impact_factors_ctx(&mut self, ctx: &RoundContext<'_>) -> Vec<f32> {
        let summaries: Vec<ClientSummary> = ctx.updates.iter().map(|u| u.summary()).collect();
        let staleness: Vec<usize> = ctx.updates.iter().map(|u| u.staleness).collect();
        let mask_ratios: Vec<f32> = ctx.updates.iter().map(|u| u.mask_ratio()).collect();
        self.impact_factors_with_dynamics(ctx.round, &summaries, &staleness, &mask_ratios)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summaries(k: usize, round: usize) -> Vec<ClientSummary> {
        (0..k)
            .map(|i| ClientSummary {
                client_id: i,
                n_samples: 100 + i * 10,
                loss_before: 2.0 - 0.1 * round as f32 + 0.05 * i as f32,
                loss_after: 1.0 - 0.05 * round as f32,
            })
            .collect()
    }

    #[test]
    fn emits_normalizable_factors_every_round() {
        let cfg = FedDrlConfig::default();
        let mut strategy = FedDrl::new(4, &cfg);
        for round in 0..5 {
            let alpha = strategy.impact_factors(round, &summaries(4, round));
            assert_eq!(alpha.len(), 4);
            let sum: f32 = alpha.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "softmax output not normalized");
            assert!(alpha.iter().all(|&a| a > 0.0));
        }
    }

    #[test]
    fn transitions_are_recorded_with_one_round_lag() {
        let cfg = FedDrlConfig::default();
        let mut strategy = FedDrl::new(3, &cfg);
        assert_eq!(strategy.agent().buffer.len(), 0);
        let _ = strategy.impact_factors(0, &summaries(3, 0));
        assert_eq!(
            strategy.agent().buffer.len(),
            0,
            "no reward available before the second round"
        );
        let _ = strategy.impact_factors(1, &summaries(3, 1));
        assert_eq!(strategy.agent().buffer.len(), 1);
        let _ = strategy.impact_factors(2, &summaries(3, 2));
        assert_eq!(strategy.agent().buffer.len(), 2);
        assert_eq!(strategy.rewards().len(), 2);
    }

    #[test]
    fn rewards_improve_when_losses_drop() {
        let cfg = FedDrlConfig::default();
        let mut strategy = FedDrl::new(3, &cfg);
        for round in 0..6 {
            let _ = strategy.impact_factors(round, &summaries(3, round));
        }
        let rewards = strategy.rewards();
        assert!(
            rewards.last().unwrap() > rewards.first().unwrap(),
            "dropping losses must raise the reward: {rewards:?}"
        );
    }

    #[test]
    fn short_rounds_reuse_the_fixed_size_agent() {
        // A K=5 agent serving heterogeneous rounds of 5, 3, 1, 4 clients
        // (dropouts/deadline cuts) must keep emitting simplex factors of
        // the right arity and keep learning across the size changes.
        let cfg = FedDrlConfig::default();
        let mut strategy = FedDrl::new(5, &cfg);
        for (round, m) in [5usize, 3, 1, 4, 5].into_iter().enumerate() {
            let alpha = strategy.impact_factors(round, &summaries(m, round));
            assert_eq!(alpha.len(), m);
            let sum: f32 = alpha.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "round {round}: sum {sum}");
        }
        assert_eq!(strategy.rewards().len(), 4);
        assert_eq!(strategy.agent().buffer.len(), 4);
    }

    #[test]
    fn full_rounds_are_unchanged_by_padding_support() {
        // The padded path must be a strict no-op at full participation:
        // same seeds, same inputs => bit-identical factors.
        let cfg = FedDrlConfig::default();
        let mut a = FedDrl::new(4, &cfg);
        let mut b = FedDrl::new(4, &cfg);
        for round in 0..3 {
            let s = summaries(4, round);
            assert_eq!(a.impact_factors(round, &s), b.impact_factors(round, &s));
        }
    }

    #[test]
    fn staleness_is_ignored_unless_observed() {
        // Default config: the staleness argument must be a strict no-op —
        // same agent seeds, same summaries, bit-identical factors whether
        // the updates are fresh or ancient.
        let cfg = FedDrlConfig::default();
        let mut a = FedDrl::new(4, &cfg);
        let mut b = FedDrl::new(4, &cfg);
        for round in 0..3 {
            let s = summaries(4, round);
            let fa = a.impact_factors(round, &s);
            let fb = b.impact_factors_with_staleness(round, &s, &[5, 0, 2, 9]);
            assert_eq!(
                fa, fb,
                "round {round}: unobserved staleness leaked into the policy"
            );
        }
    }

    #[test]
    fn observed_staleness_enters_the_state_and_changes_the_action() {
        let cfg = FedDrlConfig {
            observe_staleness: true,
            explore: false,
            ..Default::default()
        };
        let mut a = FedDrl::new(4, &cfg);
        let mut b = FedDrl::new(4, &cfg);
        let s = summaries(4, 0);
        // All-fresh explicit vs implicit must agree...
        let fa = a.impact_factors_with_staleness(0, &s, &[0, 0, 0, 0]);
        let fb = b.impact_factors_with_staleness(0, &s, &[]);
        assert_eq!(
            fa, fb,
            "explicit zero staleness must equal the all-fresh path"
        );
        // ...and a stale update must actually perturb the observation.
        let mut c = FedDrl::new(4, &cfg);
        let fc = c.impact_factors_with_staleness(0, &s, &[4, 0, 0, 0]);
        assert_eq!(fc.len(), 4);
        assert_ne!(fa, fc, "observed staleness did not reach the policy");
    }

    #[test]
    fn staleness_observing_agent_handles_short_rounds() {
        // 4-block padding: a K=5 staleness-observing agent serving short
        // heterogeneous rounds keeps emitting simplex factors.
        let cfg = FedDrlConfig {
            observe_staleness: true,
            ..Default::default()
        };
        let mut strategy = FedDrl::new(5, &cfg);
        assert_eq!(strategy.agent().config().state_dim, 20);
        for (round, m) in [5usize, 3, 1, 4].into_iter().enumerate() {
            let stale: Vec<usize> = (0..m).map(|i| i % 3).collect();
            let alpha = strategy.impact_factors_with_staleness(round, &summaries(m, round), &stale);
            assert_eq!(alpha.len(), m);
            let sum: f32 = alpha.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "round {round}: sum {sum}");
        }
        assert_eq!(strategy.rewards().len(), 3);
    }

    #[test]
    fn mask_ratios_are_ignored_unless_observed() {
        // Default config: sub-model mask ratios must be a strict no-op —
        // bit-identical factors whether updates are full or quarter-size.
        let cfg = FedDrlConfig::default();
        let mut a = FedDrl::new(4, &cfg);
        let mut b = FedDrl::new(4, &cfg);
        for round in 0..3 {
            let s = summaries(4, round);
            let fa = a.impact_factors(round, &s);
            let fb = b.impact_factors_with_dynamics(round, &s, &[], &[0.25, 1.0, 0.5, 1.0]);
            assert_eq!(
                fa, fb,
                "round {round}: unobserved mask ratios leaked into the policy"
            );
        }
    }

    #[test]
    fn observed_availability_enters_the_state_and_changes_the_action() {
        let cfg = FedDrlConfig {
            observe_availability: true,
            explore: false,
            ..Default::default()
        };
        let mut a = FedDrl::new(4, &cfg);
        let mut b = FedDrl::new(4, &cfg);
        let s = summaries(4, 0);
        // All-full explicit vs implicit must agree...
        let fa = a.impact_factors_with_dynamics(0, &s, &[], &[1.0, 1.0, 1.0, 1.0]);
        let fb = b.impact_factors_with_dynamics(0, &s, &[], &[]);
        assert_eq!(fa, fb, "explicit full ratios must equal the all-full path");
        // ...and a sub-model update must actually perturb the observation.
        let mut c = FedDrl::new(4, &cfg);
        let fc = c.impact_factors_with_dynamics(0, &s, &[], &[0.25, 1.0, 1.0, 1.0]);
        assert_eq!(fc.len(), 4);
        assert_ne!(fa, fc, "observed mask ratio did not reach the policy");
    }

    #[test]
    fn fully_observing_agent_handles_short_rounds() {
        // 5-block padding: staleness + availability observed together on a
        // K=5 agent serving short heterogeneous rounds.
        let cfg = FedDrlConfig {
            observe_staleness: true,
            observe_availability: true,
            ..Default::default()
        };
        let mut strategy = FedDrl::new(5, &cfg);
        assert_eq!(strategy.agent().config().state_dim, 25);
        for (round, m) in [5usize, 3, 1, 4].into_iter().enumerate() {
            let stale: Vec<usize> = (0..m).map(|i| i % 3).collect();
            let ratios: Vec<f32> = (0..m).map(|i| 1.0 - 0.25 * (i % 2) as f32).collect();
            let alpha =
                strategy.impact_factors_with_dynamics(round, &summaries(m, round), &stale, &ratios);
            assert_eq!(alpha.len(), m);
            let sum: f32 = alpha.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "round {round}: sum {sum}");
        }
        assert_eq!(strategy.rewards().len(), 3);
    }

    #[test]
    #[should_panic(expected = "got 6 summaries")]
    fn rejects_more_clients_than_capacity() {
        let mut strategy = FedDrl::new(5, &FedDrlConfig::default());
        let _ = strategy.impact_factors(0, &summaries(6, 0));
    }

    #[test]
    fn name_is_feddrl() {
        let strategy = FedDrl::new(2, &FedDrlConfig::default());
        assert_eq!(strategy.name(), "FedDRL");
        assert!(strategy.proximal_mu().is_none());
    }

    #[test]
    fn exploration_toggle_changes_behaviour() {
        let cfg = FedDrlConfig {
            explore: false,
            ..Default::default()
        };
        let mut a = FedDrl::new(3, &cfg);
        let mut b = FedDrl::new(3, &cfg);
        b.set_explore(true);
        // Same agent seeds, same state: deterministic α sampling differs
        // only through the exploration noise on the action.
        let s = summaries(3, 0);
        let fa = a.impact_factors(0, &s);
        let fb = b.impact_factors(0, &s);
        assert_ne!(fa, fb);
    }
}
