//! DRL state construction (paper §3.3.2).
//!
//! The state is the concatenation of three `K`-vectors: the global model's
//! inference loss on each participating client (`l_before`), each client's
//! post-training local loss (`l_after`), and the clients' sample counts.
//! The paper feeds these raw; raw cross-entropy magnitudes and sample
//! counts in the thousands destabilize DDPG, so we z-normalize each loss
//! block and convert counts to fractions — a monotone, information-
//! preserving transform (DESIGN.md §3.1).

use feddrl_fl::client::ClientSummary;

/// z-normalize a block in place (mean 0, unit variance; degenerate blocks
/// collapse to zeros).
fn z_normalize(block: &mut [f32]) {
    let n = block.len() as f32;
    if n == 0.0 {
        return;
    }
    let mean = block.iter().sum::<f32>() / n;
    let var = block.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n;
    let std = var.sqrt();
    if std < 1e-8 {
        for v in block.iter_mut() {
            *v = 0.0;
        }
    } else {
        for v in block.iter_mut() {
            *v = (*v - mean) / std;
        }
    }
}

/// Build the `3K` state vector from the clients' round reports, in the
/// order the summaries are given (which matches the order impact factors
/// must be returned in).
///
/// # Panics
/// Panics if `summaries` is empty or a loss is non-finite.
pub fn build_state(summaries: &[ClientSummary]) -> Vec<f32> {
    assert!(!summaries.is_empty(), "state needs at least one client");
    let k = summaries.len();
    let mut state = Vec::with_capacity(3 * k);
    for s in summaries {
        assert!(
            s.loss_before.is_finite(),
            "client {} reported non-finite loss_before",
            s.client_id
        );
        state.push(s.loss_before);
    }
    for s in summaries {
        assert!(
            s.loss_after.is_finite(),
            "client {} reported non-finite loss_after",
            s.client_id
        );
        state.push(s.loss_after);
    }
    let total: f32 = summaries.iter().map(|s| s.n_samples as f32).sum();
    for s in summaries {
        state.push(s.n_samples as f32 / total.max(1.0));
    }
    z_normalize(&mut state[..k]);
    z_normalize(&mut state[k..2 * k]);
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(id: usize, n: usize, before: f32, after: f32) -> ClientSummary {
        ClientSummary {
            client_id: id,
            n_samples: n,
            loss_before: before,
            loss_after: after,
        }
    }

    #[test]
    fn state_has_3k_entries() {
        let s = build_state(&[
            summary(0, 100, 2.0, 1.0),
            summary(1, 300, 3.0, 0.5),
            summary(2, 100, 1.0, 0.2),
        ]);
        assert_eq!(s.len(), 9);
    }

    #[test]
    fn loss_blocks_are_z_normalized() {
        let s = build_state(&[
            summary(0, 10, 1.0, 5.0),
            summary(1, 10, 2.0, 6.0),
            summary(2, 10, 3.0, 7.0),
        ]);
        let before = &s[0..3];
        let after = &s[3..6];
        for block in [before, after] {
            let mean: f32 = block.iter().sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-6, "block mean {mean}");
            let var: f32 = block.iter().map(|x| x * x).sum::<f32>() / 3.0;
            assert!((var - 1.0).abs() < 1e-5, "block variance {var}");
        }
    }

    #[test]
    fn sample_counts_become_fractions() {
        let s = build_state(&[summary(0, 100, 1.0, 1.0), summary(1, 300, 2.0, 2.0)]);
        assert!((s[4] - 0.25).abs() < 1e-6);
        assert!((s[5] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn identical_losses_collapse_to_zero_block() {
        let s = build_state(&[summary(0, 10, 2.0, 2.0), summary(1, 20, 2.0, 2.0)]);
        assert_eq!(&s[0..4], &[0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn ordering_follows_input_not_client_id() {
        let a = build_state(&[summary(9, 10, 1.0, 0.0), summary(2, 30, 5.0, 0.0)]);
        // First position belongs to client 9 (lower loss → negative z).
        assert!(a[0] < a[1]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan_loss() {
        let _ = build_state(&[summary(0, 10, f32::NAN, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty() {
        let _ = build_state(&[]);
    }
}
