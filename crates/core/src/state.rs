//! DRL state construction (paper §3.3.2).
//!
//! The state is the concatenation of three `K`-vectors: the global model's
//! inference loss on each participating client (`l_before`), each client's
//! post-training local loss (`l_after`), and the clients' sample counts.
//! The paper feeds these raw; raw cross-entropy magnitudes and sample
//! counts in the thousands destabilize DDPG, so we z-normalize each loss
//! block and convert counts to fractions — a monotone, information-
//! preserving transform (DESIGN.md §3.1).
//!
//! Beyond the paper, [`build_state_with_staleness`] appends a fourth
//! `K`-vector — each update's staleness in model versions, squashed into
//! `[0, 1)` by [`staleness_feature`] — for runs under carry-over or
//! buffered asynchronous executors, where the agent should be able to
//! learn staleness-aware impact factors. A fresh update contributes `0`,
//! so the block degenerates to zeros in any synchronous setting.
//! [`append_availability_block`] does the same for adaptive structured
//! dropout: each update's untrained model fraction ([`availability_feature`],
//! `1 − mask_ratio`) as one more `K`-vector, exactly zero for every
//! full-model update.

use feddrl_fl::client::ClientSummary;

/// z-normalize a block in place (mean 0, unit variance; degenerate blocks
/// collapse to zeros).
fn z_normalize(block: &mut [f32]) {
    let n = block.len() as f32;
    if n == 0.0 {
        return;
    }
    let mean = block.iter().sum::<f32>() / n;
    let var = block.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n;
    let std = var.sqrt();
    if std < 1e-8 {
        for v in block.iter_mut() {
            *v = 0.0;
        }
    } else {
        for v in block.iter_mut() {
            *v = (*v - mean) / std;
        }
    }
}

/// Build the `3K` state vector from the clients' round reports, in the
/// order the summaries are given (which matches the order impact factors
/// must be returned in).
///
/// # Panics
/// Panics if `summaries` is empty or a loss is non-finite.
pub fn build_state(summaries: &[ClientSummary]) -> Vec<f32> {
    assert!(!summaries.is_empty(), "state needs at least one client");
    let k = summaries.len();
    let mut state = Vec::with_capacity(3 * k);
    for s in summaries {
        assert!(
            s.loss_before.is_finite(),
            "client {} reported non-finite loss_before",
            s.client_id
        );
        state.push(s.loss_before);
    }
    for s in summaries {
        assert!(
            s.loss_after.is_finite(),
            "client {} reported non-finite loss_after",
            s.client_id
        );
        state.push(s.loss_after);
    }
    let total: f32 = summaries.iter().map(|s| s.n_samples as f32).sum();
    for s in summaries {
        state.push(s.n_samples as f32 / total.max(1.0));
    }
    z_normalize(&mut state[..k]);
    z_normalize(&mut state[k..2 * k]);
    state
}

/// Squash a staleness count into `[0, 1)`: `s / (1 + s)`. Exactly `0` for
/// a fresh update, approaching `1` for arbitrarily stale ones — bounded,
/// so a pathological straggler cannot blow up the observation scale.
pub fn staleness_feature(staleness: usize) -> f32 {
    staleness as f32 / (1.0 + staleness as f32)
}

/// Build the `4K` state vector: [`build_state`]'s three blocks plus one
/// block of [`staleness_feature`]s, in the same client order. An empty
/// `staleness` slice means "all fresh" (a zero block).
///
/// # Panics
/// Panics if `staleness` is non-empty with a length different from
/// `summaries`, or on [`build_state`]'s conditions.
pub fn build_state_with_staleness(summaries: &[ClientSummary], staleness: &[usize]) -> Vec<f32> {
    assert!(
        staleness.is_empty() || staleness.len() == summaries.len(),
        "{} staleness entries for {} summaries",
        staleness.len(),
        summaries.len()
    );
    let mut state = build_state(summaries);
    if staleness.is_empty() {
        state.extend(std::iter::repeat_n(0.0, summaries.len()));
    } else {
        state.extend(staleness.iter().map(|&s| staleness_feature(s)));
    }
    state
}

/// The availability observation of one update: the fraction of the model
/// it did *not* train under adaptive structured dropout, `1 − mask_ratio`
/// clamped to `[0, 1]`. Exactly `0` for a full-model update, so the block
/// degenerates to zeros whenever structured dropout is off — the same
/// degeneration contract as [`staleness_feature`].
pub fn availability_feature(mask_ratio: f32) -> f32 {
    (1.0 - mask_ratio).clamp(0.0, 1.0)
}

/// Append one `K`-block of [`availability_feature`]s to a state vector, in
/// the same client order as the existing blocks. An empty `mask_ratios`
/// slice means "all full-model" (a zero block).
///
/// # Panics
/// Panics if `mask_ratios` is non-empty with a length different from `k`.
pub fn append_availability_block(state: &mut Vec<f32>, k: usize, mask_ratios: &[f32]) {
    assert!(
        mask_ratios.is_empty() || mask_ratios.len() == k,
        "{} mask ratios for {} summaries",
        mask_ratios.len(),
        k
    );
    if mask_ratios.is_empty() {
        state.extend(std::iter::repeat_n(0.0, k));
    } else {
        state.extend(mask_ratios.iter().map(|&r| availability_feature(r)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(id: usize, n: usize, before: f32, after: f32) -> ClientSummary {
        ClientSummary {
            client_id: id,
            n_samples: n,
            loss_before: before,
            loss_after: after,
        }
    }

    #[test]
    fn state_has_3k_entries() {
        let s = build_state(&[
            summary(0, 100, 2.0, 1.0),
            summary(1, 300, 3.0, 0.5),
            summary(2, 100, 1.0, 0.2),
        ]);
        assert_eq!(s.len(), 9);
    }

    #[test]
    fn loss_blocks_are_z_normalized() {
        let s = build_state(&[
            summary(0, 10, 1.0, 5.0),
            summary(1, 10, 2.0, 6.0),
            summary(2, 10, 3.0, 7.0),
        ]);
        let before = &s[0..3];
        let after = &s[3..6];
        for block in [before, after] {
            let mean: f32 = block.iter().sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-6, "block mean {mean}");
            let var: f32 = block.iter().map(|x| x * x).sum::<f32>() / 3.0;
            assert!((var - 1.0).abs() < 1e-5, "block variance {var}");
        }
    }

    #[test]
    fn sample_counts_become_fractions() {
        let s = build_state(&[summary(0, 100, 1.0, 1.0), summary(1, 300, 2.0, 2.0)]);
        assert!((s[4] - 0.25).abs() < 1e-6);
        assert!((s[5] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn identical_losses_collapse_to_zero_block() {
        let s = build_state(&[summary(0, 10, 2.0, 2.0), summary(1, 20, 2.0, 2.0)]);
        assert_eq!(&s[0..4], &[0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn ordering_follows_input_not_client_id() {
        let a = build_state(&[summary(9, 10, 1.0, 0.0), summary(2, 30, 5.0, 0.0)]);
        // First position belongs to client 9 (lower loss → negative z).
        assert!(a[0] < a[1]);
    }

    #[test]
    fn staleness_feature_is_bounded_and_monotone() {
        assert_eq!(staleness_feature(0), 0.0);
        let mut prev = -1.0f32;
        for s in 0..100 {
            let f = staleness_feature(s);
            assert!((0.0..1.0).contains(&f));
            assert!(f > prev);
            prev = f;
        }
        assert!((staleness_feature(1) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn staleness_block_appends_without_touching_the_3k_prefix() {
        let sums = [summary(0, 10, 1.0, 0.5), summary(1, 30, 2.0, 0.7)];
        let base = build_state(&sums);
        let with = build_state_with_staleness(&sums, &[2, 0]);
        assert_eq!(with.len(), 8);
        assert_eq!(&with[..6], &base[..], "3K prefix must be unchanged");
        assert!((with[6] - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(with[7], 0.0);
        // Empty staleness means an all-fresh (zero) block.
        let fresh = build_state_with_staleness(&sums, &[]);
        assert_eq!(&fresh[6..], &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "staleness entries")]
    fn rejects_misaligned_staleness() {
        let _ = build_state_with_staleness(&[summary(0, 10, 1.0, 0.5)], &[1, 2]);
    }

    #[test]
    fn availability_feature_is_zero_for_full_models_and_bounded() {
        assert_eq!(availability_feature(1.0), 0.0);
        assert!((availability_feature(0.25) - 0.75).abs() < 1e-6);
        assert_eq!(availability_feature(2.0), 0.0, "over-full ratios clamp");
        assert_eq!(availability_feature(-1.0), 1.0, "negative ratios clamp");
    }

    #[test]
    fn availability_block_appends_without_touching_the_prefix() {
        let sums = [summary(0, 10, 1.0, 0.5), summary(1, 30, 2.0, 0.7)];
        let base = build_state(&sums);
        let mut with = base.clone();
        append_availability_block(&mut with, 2, &[0.5, 1.0]);
        assert_eq!(with.len(), 8);
        assert_eq!(&with[..6], &base[..], "3K prefix must be unchanged");
        assert!((with[6] - 0.5).abs() < 1e-6);
        assert_eq!(with[7], 0.0);
        // Empty ratios mean an all-full (zero) block.
        let mut fresh = base.clone();
        append_availability_block(&mut fresh, 2, &[]);
        assert_eq!(&fresh[6..], &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "mask ratios")]
    fn rejects_misaligned_mask_ratios() {
        let mut state = vec![0.0; 3];
        append_availability_block(&mut state, 1, &[0.5, 0.25]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan_loss() {
        let _ = build_state(&[summary(0, 10, f32::NAN, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty() {
        let _ = build_state(&[]);
    }
}
