//! The two-stage training strategy (paper §3.4.2, Figure 3(b)).
//!
//! *Stage 1 (online):* `m` initially-identical worker agents each drive
//! their own federated-learning environment replica (same partition,
//! different seeds), acting with exploration noise and learning online.
//! Because their streams diverge, their experience buffers end up covering
//! different parts of the state-action space.
//!
//! *Stage 2 (offline):* the workers' buffers are merged into a centralized
//! buffer and a fresh *main agent* is trained purely by replay, without
//! touching the environment. The trained main agent is then used for the
//! actual aggregation decisions.

use crate::config::FedDrlConfig;
use crate::strategy::FedDrl;
use feddrl_data::dataset::Dataset;
use feddrl_data::partition::Partition;
use feddrl_drl::ddpg::DdpgAgent;
#[cfg(test)]
use feddrl_fl::executor::ExecutorConfig;
use feddrl_fl::server::FlConfig;
#[cfg(test)]
use feddrl_fl::server::Selection;
use feddrl_fl::session::SessionBuilder;
use feddrl_nn::parallel::par_map;
use feddrl_nn::zoo::ModelSpec;
use serde::{Deserialize, Serialize};

/// Two-stage training parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TwoStageConfig {
    /// Number of online workers `m` (paper §4.1.3 uses 2).
    pub workers: usize,
    /// Federated rounds each worker interacts for (stage 1).
    pub online_rounds: usize,
    /// `DdpgAgent::train` invocations on the merged buffer (stage 2).
    pub offline_updates: usize,
    /// Seed governing worker divergence and the main agent's init.
    pub seed: u64,
}

impl Default for TwoStageConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            online_rounds: 30,
            offline_updates: 50,
            seed: 0x25A6E,
        }
    }
}

/// Diagnostics of a two-stage run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TwoStageReport {
    /// Experiences collected per worker.
    pub worker_experiences: Vec<usize>,
    /// Size of the merged buffer handed to the main agent.
    pub merged_experiences: usize,
    /// Offline updates actually performed.
    pub offline_updates: usize,
}

/// Run the two-stage procedure and return the trained main agent plus a
/// report. Workers execute in parallel (each already parallelizes its own
/// clients internally).
pub fn two_stage_train(
    spec: &ModelSpec,
    train: &Dataset,
    test: &Dataset,
    partition: &Partition,
    fl_cfg: &FlConfig,
    feddrl_cfg: &FedDrlConfig,
    ts_cfg: &TwoStageConfig,
) -> (DdpgAgent, TwoStageReport) {
    assert!(ts_cfg.workers > 0, "need at least one worker");
    assert!(
        ts_cfg.online_rounds >= 2,
        "workers need >= 2 rounds to record a transition"
    );

    // --- Stage 1: online workers.
    let worker_ids: Vec<usize> = (0..ts_cfg.workers).collect();
    let agents: Vec<DdpgAgent> = par_map(&worker_ids, |_, &w| {
        let mut worker_feddrl = feddrl_cfg.clone();
        worker_feddrl.explore = true;
        worker_feddrl.online_training = true;
        worker_feddrl.seed = feddrl_cfg.seed ^ (0x1111 * (w as u64 + 1));
        worker_feddrl.ddpg.seed = feddrl_cfg.ddpg.seed ^ (0x2222 * (w as u64 + 1));
        let mut strategy = FedDrl::new(fl_cfg.participants, &worker_feddrl);
        let mut worker_fl = fl_cfg.clone();
        worker_fl.rounds = ts_cfg.online_rounds;
        worker_fl.seed = fl_cfg.seed ^ (0x3333 * (w as u64 + 1));
        let _ = SessionBuilder::new(spec, train, test, partition, &mut strategy)
            .config(&worker_fl)
            .build()
            .unwrap_or_else(|e| panic!("worker {w}: {e}"))
            .run()
            .unwrap_or_else(|e| panic!("worker {w}: {e}"));
        strategy.into_agent()
    });

    // --- Stage 2: merge buffers, train a fresh main agent offline.
    let mut main_cfg = feddrl_cfg.ddpg_for(fl_cfg.participants);
    main_cfg.seed = ts_cfg.seed;
    let mut main = DdpgAgent::new(main_cfg);
    let worker_experiences: Vec<usize> = agents.iter().map(|a| a.buffer.len()).collect();
    for agent in &agents {
        main.buffer.absorb(&agent.buffer);
    }
    let merged = main.buffer.len();
    let mut performed = 0;
    for _ in 0..ts_cfg.offline_updates {
        if main.train().is_some() {
            performed += 1;
        }
    }
    (
        main,
        TwoStageReport {
            worker_experiences,
            merged_experiences: merged,
            offline_updates: performed,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use feddrl_data::partition::PartitionMethod;
    use feddrl_data::synth::SynthSpec;
    use feddrl_fl::client::LocalTrainConfig;
    use feddrl_nn::rng::Rng64;

    fn quick_env() -> (ModelSpec, Dataset, Dataset, Partition, FlConfig) {
        let (train, test) = SynthSpec {
            train_size: 600,
            test_size: 150,
            ..SynthSpec::mnist_like()
        }
        .generate(3);
        let partition = PartitionMethod::ce(0.6)
            .partition(&train, 6, &mut Rng64::new(4))
            .unwrap();
        let spec = ModelSpec::Mlp {
            in_dim: train.feature_dim(),
            hidden: vec![16],
            out_dim: train.num_classes(),
        };
        let fl_cfg = FlConfig {
            rounds: 5,
            participants: 6,
            local: LocalTrainConfig {
                epochs: 1,
                batch_size: 16,
                lr: 0.05,
                ..Default::default()
            },
            eval_batch: 128,
            seed: 11,
            log_every: 0,
            selection: Selection::Uniform,
            executor: ExecutorConfig::Ideal,
            server_opt: feddrl_fl::server_opt::ServerOptConfig::Plain,
        };
        (spec, train, test, partition, fl_cfg)
    }

    fn small_feddrl() -> FedDrlConfig {
        let mut cfg = FedDrlConfig::default();
        cfg.ddpg.hidden = 32;
        cfg.ddpg.batch_size = 4;
        cfg.ddpg.warmup = 4;
        cfg.ddpg.updates_per_round = 1;
        cfg
    }

    #[test]
    fn workers_fill_merged_buffer() {
        let (spec, train, test, partition, fl_cfg) = quick_env();
        let ts = TwoStageConfig {
            workers: 2,
            online_rounds: 4,
            offline_updates: 3,
            seed: 5,
        };
        let (main, report) = two_stage_train(
            &spec,
            &train,
            &test,
            &partition,
            &fl_cfg,
            &small_feddrl(),
            &ts,
        );
        // Each worker records rounds−1 transitions.
        assert_eq!(report.worker_experiences, vec![3, 3]);
        assert_eq!(report.merged_experiences, 6);
        assert_eq!(main.buffer.len(), 6);
        assert_eq!(report.offline_updates, 3);
    }

    #[test]
    fn workers_diverge() {
        let (spec, train, test, partition, fl_cfg) = quick_env();
        let ts = TwoStageConfig {
            workers: 2,
            online_rounds: 3,
            offline_updates: 1,
            seed: 6,
        };
        let (main, _) = two_stage_train(
            &spec,
            &train,
            &test,
            &partition,
            &fl_cfg,
            &small_feddrl(),
            &ts,
        );
        // The two workers' experiences must not be identical: compare the
        // stored rewards pairwise.
        let rewards: Vec<f32> = main.buffer.iter().map(|e| e.reward).collect();
        let (first_half, second_half) = rewards.split_at(rewards.len() / 2);
        assert_ne!(
            first_half, second_half,
            "worker streams identical — seeds not diverging"
        );
    }

    #[test]
    fn offline_training_changes_main_policy() {
        let (spec, train, test, partition, fl_cfg) = quick_env();
        let feddrl = small_feddrl();
        let ts_no = TwoStageConfig {
            workers: 1,
            online_rounds: 6,
            offline_updates: 0,
            seed: 7,
        };
        let ts_yes = TwoStageConfig {
            offline_updates: 10,
            ..ts_no.clone()
        };
        let (main_no, _) =
            two_stage_train(&spec, &train, &test, &partition, &fl_cfg, &feddrl, &ts_no);
        let (main_yes, _) =
            two_stage_train(&spec, &train, &test, &partition, &fl_cfg, &feddrl, &ts_yes);
        assert_ne!(
            main_no.policy_params(),
            main_yes.policy_params(),
            "offline updates had no effect on the main policy"
        );
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn rejects_zero_workers() {
        let (spec, train, test, partition, fl_cfg) = quick_env();
        let ts = TwoStageConfig {
            workers: 0,
            ..Default::default()
        };
        let _ = two_stage_train(
            &spec,
            &train,
            &test,
            &partition,
            &fl_cfg,
            &small_feddrl(),
            &ts,
        );
    }
}
