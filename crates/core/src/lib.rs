//! # feddrl — Deep Reinforcement Learning-based Adaptive Aggregation for
//! Non-IID Federated Learning
//!
//! Rust reproduction of *FedDRL* (Nguyen et al., ICPP 2022,
//! arXiv:2208.02442). The server's aggregation weights — the *impact
//! factors* of paper Eq. 4 — are chosen by a DDPG agent instead of a fixed
//! rule, letting the federation adapt to arbitrary non-IID structure, in
//! particular the paper's novel *cluster-skew* distributions.
//!
//! This crate composes the substrates into the paper's system:
//!
//! * [`state`] — the `3K` observation of §3.3.2 (losses before/after local
//!   training + sample counts);
//! * [`strategy::FedDrl`] — the aggregation strategy (Figure 2 steps 4–5)
//!   implementing `feddrl_fl::strategy::Strategy`;
//! * [`two_stage`] — the §3.4.2 two-stage (online workers → offline main
//!   agent) training procedure;
//! * [`runner`] — end-to-end orchestration used by the experiment harness.
//!
//! ## Quickstart
//!
//! ```
//! use feddrl::prelude::*;
//!
//! // Synthetic cluster-skew federation: 6 clients, main group δ = 0.6.
//! let (train, test) = SynthSpec { train_size: 600, test_size: 150,
//!     ..SynthSpec::mnist_like() }.generate(1);
//! let partition = PartitionMethod::ce(0.6)
//!     .partition(&train, 6, &mut Rng64::new(2)).unwrap();
//! let spec = ModelSpec::Mlp { in_dim: train.feature_dim(),
//!     hidden: vec![16], out_dim: train.num_classes() };
//! let fl = FlConfig { rounds: 3, participants: 6, ..Default::default() };
//! let run = run_feddrl(&spec, &train, &test, &partition, &fl,
//!     &FedDrlRunConfig::default());
//! assert_eq!(run.history.records.len(), 3);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod runner;
pub mod state;
pub mod strategy;
pub mod two_stage;

/// One-stop import for applications: FedDRL types plus the substrate
/// preludes they are used with.
pub mod prelude {
    pub use crate::config::FedDrlConfig;
    pub use crate::runner::{run_feddrl, try_run_feddrl, FedDrlRun, FedDrlRunConfig};
    pub use crate::state::build_state;
    pub use crate::strategy::FedDrl;
    pub use crate::two_stage::{two_stage_train, TwoStageConfig, TwoStageReport};
    pub use feddrl_data::prelude::*;
    pub use feddrl_drl::prelude::*;
    pub use feddrl_fl::prelude::*;
    pub use feddrl_nn::prelude::*;
}
