//! Seeded fleet churn: clients arriving and departing on the virtual clock.
//!
//! [`ChurnProcess`] turns a [`ChurnConfig`]'s two mean gaps into a
//! deterministic, time-ordered stream of [`EventKind::ClientJoin`] /
//! [`EventKind::ClientLeave`] events (exponential inter-event gaps — two
//! independent Poisson processes sharing one timeline). Executors advance
//! the process alongside their own clocks, so the active client set
//! changes *between and within* rounds while every run stays
//! bit-reproducible.
//!
//! The active set is held implicitly — the contiguous id universe
//! `[0, universe)` minus a sparse departed set — so churn over a
//! million-client fleet costs memory proportional to the clients that
//! actually left, never the fleet size. Arrivals mint monotonically
//! increasing ids past the initial fleet size; a grown
//! [`crate::device::FleetView`] then derives each joiner's profile on
//! demand, and departed ids are never reissued (their server-side
//! telemetry must be allowed to go stale, not be silently inherited by a
//! stranger).

use std::collections::BTreeSet;

use feddrl_nn::rng::Rng64;

use crate::device::ChurnConfig;
use crate::event::{Event, EventKind};

/// Salt separating the churn RNG from every other stream derived from a
/// run's master seed.
pub const CHURN_SALT: u64 = 0xC4_A91;

/// A deterministic arrival/departure process over the virtual timeline.
///
/// Conservation law (pinned by `tests/dynamics_props.rs`):
/// `initial_n + joins - leaves == active_count` at every instant.
#[derive(Debug, Clone)]
pub struct ChurnProcess {
    cfg: ChurnConfig,
    initial_n: usize,
    /// One past the largest id ever minted (ids `[0, universe)` exist).
    universe: usize,
    departed: BTreeSet<usize>,
    joins: usize,
    leaves: usize,
    arrivals: Rng64,
    departures: Rng64,
    targets: Rng64,
    next_arrival_s: f64,
    next_departure_s: f64,
    now_s: f64,
}

/// Draw an exponential gap with the given mean from `rng`.
fn exp_gap(rng: &mut Rng64, mean_s: f64) -> f64 {
    // next_f64 is in [0, 1): 1 - u is in (0, 1], so ln stays finite.
    -mean_s * (1.0 - rng.next_f64()).ln()
}

impl ChurnProcess {
    /// Start a churn process over an initial fleet of `initial_n` clients,
    /// deriving its streams from `seed` (pass the run's master seed; the
    /// process salts it).
    ///
    /// # Panics
    /// Panics on an empty initial fleet or a degenerate config.
    pub fn new(initial_n: usize, cfg: &ChurnConfig, seed: u64) -> Self {
        assert!(initial_n > 0, "churn needs at least one initial client");
        if let Err(reason) = cfg.validate() {
            panic!("{reason}");
        }
        let master = Rng64::new(seed ^ CHURN_SALT);
        let mut arrivals = master.derive(0);
        let mut departures = master.derive(1);
        let targets = master.derive(2);
        let next_arrival_s = exp_gap(&mut arrivals, cfg.mean_arrival_gap_s);
        let next_departure_s = exp_gap(&mut departures, cfg.mean_departure_gap_s);
        Self {
            cfg: *cfg,
            initial_n,
            universe: initial_n,
            departed: BTreeSet::new(),
            joins: 0,
            leaves: 0,
            arrivals,
            departures,
            targets,
            next_arrival_s,
            next_departure_s,
            now_s: 0.0,
        }
    }

    /// Advance the process to virtual time `t_s`, returning every churn
    /// event in `(now, t_s]` in time order (arrival before departure on an
    /// exact tie). Advancing to the past is a no-op returning no events.
    pub fn advance_to(&mut self, t_s: f64) -> Vec<Event> {
        assert!(t_s.is_finite(), "churn cannot advance to {t_s}");
        let mut events = Vec::new();
        while self.next_arrival_s.min(self.next_departure_s) <= t_s {
            if self.next_arrival_s <= self.next_departure_s {
                let client_id = self.universe;
                self.universe += 1;
                self.joins += 1;
                events.push(Event {
                    time_s: self.next_arrival_s,
                    kind: EventKind::ClientJoin { client_id },
                });
                self.next_arrival_s += exp_gap(&mut self.arrivals, self.cfg.mean_arrival_gap_s);
            } else {
                // A departure aimed at the last active client is skipped —
                // the fleet never empties — but the gap stream advances
                // regardless, so timing stays independent of fleet state.
                if self.active_count() > 1 {
                    let client_id = self.pick_departure_target();
                    self.departed.insert(client_id);
                    self.leaves += 1;
                    events.push(Event {
                        time_s: self.next_departure_s,
                        kind: EventKind::ClientLeave { client_id },
                    });
                }
                self.next_departure_s +=
                    exp_gap(&mut self.departures, self.cfg.mean_departure_gap_s);
            }
        }
        self.now_s = self.now_s.max(t_s);
        events
    }

    /// Uniformly pick an active client to depart. Rejection sampling over
    /// the id universe: deterministic given the stream, O(1) expected
    /// while departures are a minority, and never O(universe) memory.
    fn pick_departure_target(&mut self) -> usize {
        loop {
            let id = self.targets.below(self.universe);
            if !self.departed.contains(&id) {
                return id;
            }
        }
    }

    /// Whether `client_id` exists and has not departed.
    pub fn is_active(&self, client_id: usize) -> bool {
        client_id < self.universe && !self.departed.contains(&client_id)
    }

    /// One past the largest client id ever minted.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Clients currently active.
    pub fn active_count(&self) -> usize {
        self.universe - self.departed.len()
    }

    /// Total arrivals so far.
    pub fn joins(&self) -> usize {
        self.joins
    }

    /// Total departures so far.
    pub fn leaves(&self) -> usize {
        self.leaves
    }

    /// The initial fleet size the process started from.
    pub fn initial_n(&self) -> usize {
        self.initial_n
    }

    /// Virtual time the process has been advanced to.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// The departed client ids, ascending (sparse: one entry per client
    /// that actually left, regardless of fleet size).
    pub fn departed_ids(&self) -> Vec<usize> {
        self.departed.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ChurnProcess {
        ChurnProcess::new(
            10,
            &ChurnConfig {
                mean_arrival_gap_s: 5.0,
                mean_departure_gap_s: 7.0,
            },
            0xFEED,
        )
    }

    #[test]
    fn replay_is_deterministic_and_time_ordered() {
        let (mut a, mut b) = (quick(), quick());
        let (ea, eb) = (a.advance_to(500.0), b.advance_to(500.0));
        assert_eq!(ea, eb, "same seed must replay the same churn");
        assert!(!ea.is_empty(), "500 s at ~5/7 s gaps produced no events");
        let mut last = 0.0;
        for e in &ea {
            assert!(e.time_s >= last, "events out of order");
            assert!(e.time_s <= 500.0, "event past the advance horizon");
            last = e.time_s;
            assert!(matches!(
                e.kind,
                EventKind::ClientJoin { .. } | EventKind::ClientLeave { .. }
            ));
        }
        // Incremental advancement sees the identical stream.
        let mut c = quick();
        let mut incremental = Vec::new();
        for step in 1..=50 {
            incremental.extend(c.advance_to(step as f64 * 10.0));
        }
        assert_eq!(ea, incremental);
        assert_eq!(a.universe(), c.universe());
        assert_eq!(a.departed_ids(), c.departed_ids());
    }

    #[test]
    fn conservation_closes_at_every_step() {
        let mut p = quick();
        for step in 1..=200 {
            p.advance_to(step as f64 * 3.3);
            assert_eq!(
                p.initial_n() + p.joins() - p.leaves(),
                p.active_count(),
                "conservation broken at step {step}"
            );
            assert!(p.active_count() >= 1, "fleet emptied");
        }
        assert!(p.joins() > 10 && p.leaves() > 10, "processes barely fired");
    }

    #[test]
    fn arrivals_mint_fresh_monotone_ids_and_departures_never_rejoin() {
        let mut p = quick();
        let events = p.advance_to(1000.0);
        let mut next_expected = 10;
        let mut seen_leaves = BTreeSet::new();
        for e in &events {
            match e.kind {
                EventKind::ClientJoin { client_id } => {
                    assert_eq!(client_id, next_expected, "ids must mint monotonically");
                    next_expected += 1;
                }
                EventKind::ClientLeave { client_id } => {
                    assert!(client_id < p.universe());
                    assert!(
                        seen_leaves.insert(client_id),
                        "client {client_id} departed twice"
                    );
                    assert!(!p.is_active(client_id));
                }
                _ => unreachable!("churn emitted a non-churn event"),
            }
        }
        assert_eq!(p.universe(), next_expected);
        assert_eq!(
            p.departed_ids(),
            seen_leaves.into_iter().collect::<Vec<_>>()
        );
        assert!(!p.is_active(p.universe()), "unminted id counted active");
    }

    #[test]
    fn rewind_is_a_no_op() {
        let mut p = quick();
        let _ = p.advance_to(100.0);
        let (universe, departed) = (p.universe(), p.departed_ids());
        assert!(p.advance_to(50.0).is_empty());
        assert_eq!(p.universe(), universe);
        assert_eq!(p.departed_ids(), departed);
        assert_eq!(p.now_s(), 100.0);
    }

    #[test]
    fn lone_survivor_cannot_depart() {
        // Arrivals essentially never fire; departures every ~1 s. The
        // last active client must survive arbitrary advancement.
        let mut p = ChurnProcess::new(
            3,
            &ChurnConfig {
                mean_arrival_gap_s: 1e18,
                mean_departure_gap_s: 1.0,
            },
            7,
        );
        let _ = p.advance_to(10_000.0);
        assert_eq!(p.active_count(), 1);
        assert_eq!(p.leaves(), 2, "only n-1 departures may materialize");
    }

    #[test]
    #[should_panic(expected = "at least one initial client")]
    fn rejects_empty_initial_fleet() {
        let _ = ChurnProcess::new(0, &ChurnConfig::default(), 1);
    }

    #[test]
    #[should_panic(expected = "mean_departure_gap_s")]
    fn rejects_degenerate_gap() {
        let _ = ChurnProcess::new(
            4,
            &ChurnConfig {
                mean_arrival_gap_s: 1.0,
                mean_departure_gap_s: 0.0,
            },
            1,
        );
    }
}
