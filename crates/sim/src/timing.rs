//! Server-side computation timing (paper §5.3, Figure 9).
//!
//! Figure 9 compares the server's two per-round costs: computing the DRL
//! impact factors ("DRL", ~3 ms, model-independent) and performing the
//! weighted aggregation ("Aggregation", model-size dependent: ~45 ms for
//! VGG-11 vs ~3 ms for the small CNN). These helpers measure both stages
//! in isolation on real-size parameter vectors.

use feddrl::config::FedDrlConfig;
use feddrl::strategy::FedDrl;
use feddrl_fl::client::ClientSummary;
use feddrl_fl::strategy::{normalize_factors, weighted_average, Strategy};
use feddrl_nn::rng::Rng64;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One measured stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Mean wall-clock per invocation, microseconds.
    pub mean_micros: f64,
    /// Invocations measured (after one warmup).
    pub iters: usize,
}

/// Measure `f` over `iters` invocations (plus one untimed warmup).
pub fn measure(mut f: impl FnMut(), iters: usize) -> StageTiming {
    assert!(iters > 0, "need at least one iteration");
    f(); // warmup
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    StageTiming {
        mean_micros: t0.elapsed().as_micros() as f64 / iters as f64,
        iters,
    }
}

/// Time the DRL impact-factor computation (policy inference + Gaussian
/// sampling + softmax) for `k` participating clients.
pub fn time_drl_inference(k: usize, iters: usize) -> StageTiming {
    let cfg = FedDrlConfig {
        online_training: false,
        ..Default::default()
    };
    let mut strategy = FedDrl::new(k, &cfg);
    let summaries: Vec<ClientSummary> = (0..k)
        .map(|i| ClientSummary {
            client_id: i,
            n_samples: 100 + i,
            loss_before: 1.0 + i as f32 * 0.01,
            loss_after: 0.5,
        })
        .collect();
    let mut round = 0;
    measure(
        || {
            let alpha = strategy.impact_factors(round, &summaries);
            round += 1;
            std::hint::black_box(alpha);
        },
        iters,
    )
}

/// Time the weighted aggregation of `k` client models with `param_count`
/// parameters each.
pub fn time_aggregation(param_count: usize, k: usize, iters: usize) -> StageTiming {
    let mut rng = Rng64::new(42);
    let models: Vec<Vec<f32>> = (0..k)
        .map(|_| {
            let mut w = vec![0.0f32; param_count];
            rng.fill_uniform(&mut w, -1.0, 1.0);
            w
        })
        .collect();
    let alphas = normalize_factors(&vec![1.0; k]);
    measure(
        || {
            let refs: Vec<&[f32]> = models.iter().map(|m| m.as_slice()).collect();
            let out = weighted_average(&refs, &alphas);
            std::hint::black_box(out);
        },
        iters,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_iterations() {
        let mut calls = 0;
        let t = measure(|| calls += 1, 5);
        assert_eq!(calls, 6); // warmup + 5
        assert_eq!(t.iters, 5);
        assert!(t.mean_micros >= 0.0);
    }

    #[test]
    fn drl_inference_is_fast_and_model_size_independent() {
        let t = time_drl_inference(10, 5);
        // Paper reports ~3 ms; allow a generous envelope for CI machines.
        assert!(
            t.mean_micros < 50_000.0,
            "DRL inference too slow: {} µs",
            t.mean_micros
        );
    }

    #[test]
    fn aggregation_scales_with_model_size() {
        let small = time_aggregation(10_000, 10, 5);
        let large = time_aggregation(1_000_000, 10, 5);
        assert!(
            large.mean_micros > small.mean_micros * 3.0,
            "aggregation cost did not scale: {} vs {} µs",
            small.mean_micros,
            large.mean_micros
        );
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn measure_rejects_zero_iters() {
        let _ = measure(|| {}, 0);
    }
}
