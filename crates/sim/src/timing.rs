//! Wall-clock stage measurement (paper §5.3, Figure 9).
//!
//! Figure 9 compares the server's two per-round costs: computing the DRL
//! impact factors ("DRL", ~3 ms, model-independent) and performing the
//! weighted aggregation ("Aggregation", model-size dependent). [`measure`]
//! is the generic harness; the stage-specific drivers
//! (`time_drl_inference`, `time_aggregation`) live in `feddrl_bench` with
//! the rest of the experiment machinery, keeping this crate free of
//! strategy dependencies so the federated simulator can build on it.

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One measured stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Mean wall-clock per invocation, microseconds.
    pub mean_micros: f64,
    /// Median wall-clock per invocation, microseconds. Robust to the
    /// scheduler-noise outliers that skew the mean on shared CI machines;
    /// prefer it when comparing against the paper's numbers.
    pub median_micros: f64,
    /// Invocations measured (after one warmup).
    pub iters: usize,
}

/// Measure `f` over `iters` invocations (plus one untimed warmup), timing
/// each invocation individually so both mean and median are available.
pub fn measure(mut f: impl FnMut(), iters: usize) -> StageTiming {
    assert!(iters > 0, "need at least one iteration");
    f(); // warmup
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos() as f64 / 1_000.0);
    }
    let mean_micros = samples.iter().sum::<f64>() / iters as f64;
    samples.sort_by(f64::total_cmp);
    let median_micros = if iters % 2 == 1 {
        samples[iters / 2]
    } else {
        (samples[iters / 2 - 1] + samples[iters / 2]) / 2.0
    };
    StageTiming {
        mean_micros,
        median_micros,
        iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_iterations() {
        let mut calls = 0;
        let t = measure(|| calls += 1, 5);
        assert_eq!(calls, 6); // warmup + 5
        assert_eq!(t.iters, 5);
        assert!(t.mean_micros >= 0.0);
        assert!(t.median_micros >= 0.0);
    }

    #[test]
    fn median_resists_a_single_outlier() {
        // One invocation sleeps; four are near-instant. The mean absorbs
        // the sleep, the median must not.
        let mut call = 0;
        let t = measure(
            || {
                call += 1;
                if call == 3 {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
            },
            5,
        );
        assert!(
            t.median_micros < t.mean_micros / 2.0,
            "median {} should sit far below outlier-skewed mean {}",
            t.median_micros,
            t.mean_micros
        );
    }

    #[test]
    fn even_iteration_counts_average_the_middle_pair() {
        let t = measure(|| std::hint::black_box(()), 4);
        assert_eq!(t.iters, 4);
        assert!(t.median_micros.is_finite());
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn measure_rejects_zero_iters() {
        let _ = measure(|| {}, 0);
    }
}
