//! Discrete-event core: a virtual clock and a deterministic event queue.
//!
//! The heterogeneity engine models a federated round as a sequence of
//! timestamped events on a *virtual* timeline (client uploads completing,
//! the server's deadline firing), fully decoupled from wall-clock time.
//! [`EventQueue`] pops events in nondecreasing virtual-time order with a
//! FIFO tie-break, so simulations are bit-reproducible regardless of host
//! scheduling — the same guarantee the rest of the reproduction makes for
//! its RNG streams.
//!
//! Asynchronous (buffered) aggregation keeps *multiple model versions* in
//! flight at once: a slow client may still be uploading an update trained
//! against version `v` while the server has already aggregated versions
//! `v+1..`. Each upload event therefore records the `version` it was
//! trained against ([`EventKind::UploadComplete`]), so a consumer popping
//! the event can compute the update's staleness (current version minus
//! trained version) without any side tables — the queue itself is the
//! version bookkeeping.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A client's locally-trained model finished uploading.
    UploadComplete {
        /// Federation-wide client index.
        client_id: usize,
        /// Global-model version (round for round-based executors) the
        /// uploaded update was trained against. A synchronous executor
        /// drains its queue every round, so the version equals the current
        /// round; a buffered executor keeps events from several versions
        /// in flight and derives staleness from this field at pop time.
        version: usize,
    },
    /// The server's round deadline fired.
    Deadline,
    /// A new client joined the fleet (churn arrival). The id is minted by
    /// the churn process — monotonically increasing past the initial fleet
    /// size, so a joiner's profile derives on demand like any other index.
    ClientJoin {
        /// Federation-wide client index of the arrival.
        client_id: usize,
    },
    /// A client left the fleet (churn departure). Departed clients never
    /// rejoin; their telemetry persists server-side but goes stale.
    ClientLeave {
        /// Federation-wide client index of the departure.
        client_id: usize,
    },
}

/// A scheduled event on the virtual timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Virtual time of the event, in simulated seconds.
    pub time_s: f64,
    /// What happens.
    pub kind: EventKind,
}

/// Heap entry; ordered so the `BinaryHeap` max-heap pops the *earliest*
/// time first, breaking ties by insertion order (FIFO).
struct Entry {
    time_s: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed on both keys: earliest time wins, then lowest seq.
        other
            .time_s
            .total_cmp(&self.time_s)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-queue of virtual-time events.
///
/// Every operation is O(log *active*) in the number of *pending* events —
/// never in the fleet size: a round that schedules `K` uploads against a
/// million-device fleet costs the same as against a forty-device one. The
/// queue allocates only for what is scheduled (use
/// [`EventQueue::with_capacity`] to pre-size for a known dispatch width
/// and avoid heap regrowth in steady state).
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty queue pre-sized for `capacity` pending events.
    ///
    /// Executors dispatch at most `participants` uploads (plus a deadline)
    /// per round, so sizing to the dispatch width makes steady-state
    /// scheduling allocation-free — independent of fleet size.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Number of events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Schedule `kind` at virtual time `time_s`.
    ///
    /// # Panics
    /// Panics if `time_s` is negative or not finite — an event "at NaN"
    /// would silently corrupt the heap order.
    pub fn schedule(&mut self, time_s: f64, kind: EventKind) {
        assert!(
            time_s.is_finite() && time_s >= 0.0,
            "event time must be finite and non-negative, got {time_s}"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time_s, seq, kind });
    }

    /// Pop the earliest event (FIFO among equal times).
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|e| Event {
            time_s: e.time_s,
            kind: e.kind,
        })
    }

    /// Virtual time of the next event without removing it.
    pub fn peek_time_s(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time_s)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Monotone virtual clock (simulated seconds since round start).
#[derive(Debug, Clone, Copy, Default)]
pub struct VirtualClock {
    now_s: f64,
}

impl VirtualClock {
    /// A clock at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in seconds.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Advance to `t` seconds.
    ///
    /// # Panics
    /// Panics if `t` would move the clock backwards — a discrete-event
    /// simulation consuming an out-of-order event is a logic error.
    pub fn advance_to(&mut self, t: f64) {
        assert!(
            t.is_finite() && t >= self.now_s,
            "virtual clock cannot move backwards ({} -> {t})",
            self.now_s
        );
        self.now_s = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_nondecreasing_time_order() {
        let mut q = EventQueue::new();
        for (i, t) in [5.0, 1.0, 3.0, 2.0, 4.0].into_iter().enumerate() {
            q.schedule(
                t,
                EventKind::UploadComplete {
                    client_id: i,
                    version: 0,
                },
            );
        }
        let mut last = f64::NEG_INFINITY;
        while let Some(e) = q.pop() {
            assert!(e.time_s >= last, "queue popped out of order");
            last = e.time_s;
        }
        assert_eq!(last, 5.0);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        // Interleave model versions: FIFO must follow insertion order, not
        // the version an upload was trained against.
        for i in 0..8 {
            q.schedule(
                1.0,
                EventKind::UploadComplete {
                    client_id: i,
                    version: i % 3,
                },
            );
        }
        q.schedule(1.0, EventKind::Deadline);
        for i in 0..8 {
            assert_eq!(
                q.pop().unwrap().kind,
                EventKind::UploadComplete {
                    client_id: i,
                    version: i % 3
                },
                "FIFO tie-break violated"
            );
        }
        assert_eq!(q.pop().unwrap().kind, EventKind::Deadline);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_matches_next_pop() {
        let mut q = EventQueue::new();
        q.schedule(2.5, EventKind::Deadline);
        q.schedule(
            0.5,
            EventKind::UploadComplete {
                client_id: 3,
                version: 7,
            },
        );
        assert_eq!(q.peek_time_s(), Some(0.5));
        assert_eq!(q.len(), 2);
        let e = q.pop().unwrap();
        assert_eq!(e.time_s, 0.5);
        assert_eq!(
            e.kind,
            EventKind::UploadComplete {
                client_id: 3,
                version: 7
            }
        );
    }

    #[test]
    fn churn_events_order_against_uploads_and_deadlines() {
        // Fleet-dynamics events share the queue's ordering guarantees:
        // time-ordered, FIFO among equal times, regardless of kind.
        let mut q = EventQueue::new();
        q.schedule(2.0, EventKind::ClientLeave { client_id: 4 });
        q.schedule(1.0, EventKind::ClientJoin { client_id: 9 });
        q.schedule(
            1.0,
            EventKind::UploadComplete {
                client_id: 0,
                version: 0,
            },
        );
        q.schedule(1.0, EventKind::ClientLeave { client_id: 0 });
        q.schedule(3.0, EventKind::Deadline);
        assert_eq!(
            q.pop().unwrap().kind,
            EventKind::ClientJoin { client_id: 9 }
        );
        assert_eq!(
            q.pop().unwrap().kind,
            EventKind::UploadComplete {
                client_id: 0,
                version: 0
            }
        );
        assert_eq!(
            q.pop().unwrap().kind,
            EventKind::ClientLeave { client_id: 0 }
        );
        assert_eq!(
            q.pop().unwrap().kind,
            EventKind::ClientLeave { client_id: 4 }
        );
        assert_eq!(q.pop().unwrap().kind, EventKind::Deadline);
        assert!(q.is_empty());
    }

    #[test]
    fn with_capacity_presizes_and_behaves_like_new() {
        let mut q = EventQueue::with_capacity(16);
        assert!(q.capacity() >= 16);
        let before = q.capacity();
        for i in 0..16 {
            q.schedule(i as f64, EventKind::Deadline);
        }
        assert_eq!(q.capacity(), before, "pre-sized queue reallocated");
        assert_eq!(q.len(), 16);
        assert_eq!(q.pop().unwrap().time_s, 0.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_nan_time() {
        EventQueue::new().schedule(f64::NAN, EventKind::Deadline);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative_time() {
        EventQueue::new().schedule(-1.0, EventKind::Deadline);
    }

    #[test]
    fn clock_is_monotone() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now_s(), 0.0);
        c.advance_to(1.5);
        c.advance_to(1.5); // same instant is fine
        c.advance_to(7.0);
        assert_eq!(c.now_s(), 7.0);
    }

    #[test]
    #[should_panic(expected = "cannot move backwards")]
    fn clock_rejects_rewind() {
        let mut c = VirtualClock::new();
        c.advance_to(3.0);
        c.advance_to(2.0);
    }
}
