//! # feddrl-sim — overhead models for the FedDRL reproduction
//!
//! Quantifies the paper's §3.5 practicality claims:
//!
//! * [`comm`] — analytic per-round communication traffic for
//!   FedAvg/FedProx/FedDRL, showing FedDRL's extra cost is two floats per
//!   client per round;
//! * [`timing`] — wall-clock measurement of the two server-side stages
//!   (DRL impact-factor inference vs weighted aggregation) that Figure 9
//!   compares across model sizes.

#![warn(missing_docs)]

pub mod comm;
pub mod timing;

/// Convenient glob import.
pub mod prelude {
    pub use crate::comm::{CommModel, RoundTraffic};
    pub use crate::timing::{measure, time_aggregation, time_drl_inference, StageTiming};
}
