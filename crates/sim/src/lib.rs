//! # feddrl-sim — system models for the FedDRL reproduction
//!
//! Quantifies the paper's §3.5 practicality claims and models the device
//! heterogeneity real federated deployments face:
//!
//! * [`comm`] — analytic per-round communication traffic for
//!   FedAvg/FedProx/FedDRL, showing FedDRL's extra cost is two floats per
//!   client per round;
//! * [`timing`] — wall-clock measurement of server-side stages (Figure 9);
//! * [`device`] — seeded per-client device profiles: compute speed,
//!   uplink bandwidth/latency, and a per-device dropout rate (spread
//!   around the fleet's base rate, optionally correlated with compute
//!   speed — the reliability model), served either eagerly
//!   ([`device::Fleet`]) or lazily per index ([`device::FleetView`]) so
//!   fleet size is a free variable;
//! * [`event`] — the discrete-event core (virtual clock + deterministic
//!   event queue) that schedules upload completions against round
//!   deadlines;
//! * [`churn`] — the fleet-dynamics layer: seeded arrival/departure
//!   processes emitting `ClientJoin`/`ClientLeave` events on the virtual
//!   clock, composing with the per-device diurnal availability cycle
//!   ([`device::DiurnalConfig`]) so fleets breathe instead of standing
//!   still.
//!
//! The device and event modules form the *heterogeneity engine* the
//! federated simulator's deadline-bounded round executor
//! (`feddrl_fl::executor`) is built on: `feddrl_fl` depends on this crate,
//! so everything here is strategy-agnostic by design.

#![warn(missing_docs)]

pub mod churn;
pub mod comm;
pub mod device;
pub mod event;
pub mod timing;

/// Convenient glob import.
pub mod prelude {
    pub use crate::churn::{ChurnProcess, CHURN_SALT};
    pub use crate::comm::{CommModel, RoundTraffic};
    pub use crate::device::{
        ChurnConfig, DeviceProfile, DiurnalConfig, DropoutCorrelation, Fleet, FleetConfig,
        FleetView, ReliabilityConfig,
    };
    pub use crate::event::{Event, EventKind, EventQueue, VirtualClock};
    pub use crate::timing::{measure, StageTiming};
}
