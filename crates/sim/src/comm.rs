//! Communication-overhead model (paper §3.5).
//!
//! The paper argues FedDRL's communication overhead over FedAvg is "some
//! extra floating point numbers for the inference loss". This module makes
//! that claim quantitative: an analytic per-round byte count for each
//! method, parameterized by model size and participation, so the §3.5
//! discussion becomes a reproducible table (printed by `exp_fig9`).

use serde::{Deserialize, Serialize};

/// Bytes in one serialized `f32` model parameter.
const BYTES_PER_PARAM: u64 = 4;
/// Bytes for one scalar loss value.
const BYTES_PER_LOSS: u64 = 4;
/// Bytes for one sample-count integer.
const BYTES_PER_COUNT: u64 = 8;

/// Federation shape for the communication model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommModel {
    /// Trainable parameters of the exchanged model.
    pub param_count: u64,
    /// Participating clients per round `K`.
    pub participants: u64,
}

/// Per-round traffic breakdown in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundTraffic {
    /// Server → clients: global model broadcast.
    pub downlink: u64,
    /// Clients → server: locally trained models.
    pub uplink_models: u64,
    /// Clients → server: scalar metadata (losses, sample counts).
    pub uplink_metadata: u64,
}

impl RoundTraffic {
    /// Total bytes on the wire for the round.
    pub fn total(&self) -> u64 {
        self.downlink + self.uplink_models + self.uplink_metadata
    }
}

impl CommModel {
    /// Create a model for a `param_count`-parameter DNN and `K` clients.
    pub fn new(param_count: u64, participants: u64) -> Self {
        assert!(param_count > 0 && participants > 0);
        Self {
            param_count,
            participants,
        }
    }

    /// FedAvg traffic: model down, model + `n_k` up.
    pub fn fedavg_round(&self) -> RoundTraffic {
        let model = self.param_count * BYTES_PER_PARAM;
        RoundTraffic {
            downlink: model * self.participants,
            uplink_models: model * self.participants,
            uplink_metadata: BYTES_PER_COUNT * self.participants,
        }
    }

    /// FedProx traffic equals FedAvg's (the proximal term is local).
    pub fn fedprox_round(&self) -> RoundTraffic {
        self.fedavg_round()
    }

    /// FedDRL traffic: FedAvg plus the two inference losses
    /// (`l_before`, `l_after`) each client reports (§3.3.2).
    pub fn feddrl_round(&self) -> RoundTraffic {
        let base = self.fedavg_round();
        RoundTraffic {
            uplink_metadata: base.uplink_metadata + 2 * BYTES_PER_LOSS * self.participants,
            ..base
        }
    }

    /// FedDRL's relative traffic overhead vs FedAvg (fraction, e.g.
    /// `2.2e-7` for VGG-11).
    pub fn feddrl_overhead_ratio(&self) -> f64 {
        let a = self.fedavg_round().total() as f64;
        let d = self.feddrl_round().total() as f64;
        (d - a) / a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fedavg_round_is_symmetric_in_models() {
        let m = CommModel::new(1000, 10);
        let t = m.fedavg_round();
        assert_eq!(t.downlink, 1000 * 4 * 10);
        assert_eq!(t.uplink_models, t.downlink);
        assert_eq!(t.uplink_metadata, 80);
    }

    #[test]
    fn feddrl_adds_exactly_two_floats_per_client() {
        let m = CommModel::new(1000, 10);
        let avg = m.fedavg_round();
        let drl = m.feddrl_round();
        assert_eq!(drl.total() - avg.total(), 2 * 4 * 10);
        assert_eq!(drl.downlink, avg.downlink);
        assert_eq!(drl.uplink_models, avg.uplink_models);
    }

    #[test]
    fn fedprox_matches_fedavg() {
        let m = CommModel::new(5_000_000, 10);
        assert_eq!(m.fedprox_round(), m.fedavg_round());
    }

    #[test]
    fn overhead_ratio_is_negligible_for_real_models() {
        // VGG-11-sized model: overhead must be below one part per million,
        // confirming the paper's "trivial overhead" claim.
        let m = CommModel::new(9_500_000, 10);
        let ratio = m.feddrl_overhead_ratio();
        assert!(ratio > 0.0);
        assert!(ratio < 1e-6, "overhead ratio {ratio} not trivial");
    }

    #[test]
    #[should_panic]
    fn rejects_zero_params() {
        let _ = CommModel::new(0, 10);
    }
}
