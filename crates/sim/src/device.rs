//! Seeded per-client device profiles (compute speed, network, dropout).
//!
//! Real federated deployments are dominated by device heterogeneity: some
//! clients train on flagship phones over Wi-Fi, others on throttled
//! hardware behind slow uplinks, and a fraction silently churns every
//! round (see the non-IID FL survey arXiv:2401.00809). [`Fleet`] generates
//! a deterministic population of [`DeviceProfile`]s from a single seed, so
//! entire heterogeneity scenarios reproduce bit-for-bit, like every other
//! random stream in this workspace.

use feddrl_nn::rng::Rng64;
use serde::{Deserialize, Serialize};

/// One client's (simulated) device characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Wall-clock seconds this device needs for one local training round.
    pub compute_s: f64,
    /// Uplink bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// Fixed per-upload latency in seconds (connection setup, RTT).
    pub latency_s: f64,
    /// Per-round probability that this client drops out of a round it was
    /// sampled for (in `[0, 1)`).
    pub dropout: f64,
}

impl DeviceProfile {
    /// Virtual time from round start until this device's update has fully
    /// arrived at the server: local compute, then upload of
    /// `upload_bytes` over its link.
    pub fn completion_time_s(&self, upload_bytes: u64) -> f64 {
        self.compute_s + self.latency_s + upload_bytes as f64 / self.bandwidth_bps
    }
}

/// Knobs for generating a device fleet.
///
/// Skew factors are log-uniform spreads: a device's compute time is
/// `compute_s * m` with `m` drawn uniformly in log-space from
/// `[1/compute_skew, compute_skew]` (and likewise for bandwidth), so
/// `skew = 1` yields a homogeneous fleet and `skew = 4` a 16× spread
/// between the fastest and slowest device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Reference local-round compute time in seconds.
    pub compute_s: f64,
    /// Log-uniform compute-time spread (`>= 1`; 1 = homogeneous).
    pub compute_skew: f64,
    /// Reference uplink bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// Log-uniform bandwidth spread (`>= 1`; 1 = homogeneous).
    pub bandwidth_skew: f64,
    /// Fixed per-upload latency in seconds.
    pub latency_s: f64,
    /// Per-round dropout probability shared by every device (in `[0, 1)`).
    pub dropout: f64,
    /// Seed for the fleet draw; profiles derive per client index, so
    /// client `i`'s device is independent of the fleet size.
    pub seed: u64,
}

impl Default for FleetConfig {
    /// Mid-range phone over residential broadband: 10 s local rounds,
    /// 1 MB/s uplink, 50 ms latency, homogeneous, no dropout.
    fn default() -> Self {
        Self {
            compute_s: 10.0,
            compute_skew: 1.0,
            bandwidth_bps: 1e6,
            bandwidth_skew: 1.0,
            latency_s: 0.05,
            dropout: 0.0,
            seed: 0xDE1CE,
        }
    }
}

impl FleetConfig {
    /// Check every invariant [`Fleet::generate`] enforces, as a result —
    /// the single source of truth for what makes a fleet config valid
    /// (callers wanting typed errors wrap the message; `generate` panics
    /// with it).
    ///
    /// # Errors
    /// A human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.compute_s > 0.0 && self.bandwidth_bps > 0.0) {
            return Err("compute_s and bandwidth_bps must be positive".into());
        }
        if !(self.compute_skew >= 1.0 && self.bandwidth_skew >= 1.0) {
            return Err("skew factors must be >= 1 (1 = homogeneous)".into());
        }
        if self.latency_s < 0.0 {
            return Err("latency must be non-negative".into());
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return Err(format!(
                "dropout probability must be in [0, 1), got {}",
                self.dropout
            ));
        }
        Ok(())
    }
}

/// A generated population of device profiles, indexed by client id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fleet {
    profiles: Vec<DeviceProfile>,
}

impl Fleet {
    /// Deterministically generate `n` device profiles.
    ///
    /// # Panics
    /// Panics on a degenerate config: `n == 0`, non-positive reference
    /// compute/bandwidth, skews below 1, negative latency, or a dropout
    /// probability outside `[0, 1)` (a certain dropout would make every
    /// round empty).
    pub fn generate(n: usize, cfg: &FleetConfig) -> Self {
        assert!(n > 0, "fleet needs at least one device");
        if let Err(reason) = cfg.validate() {
            panic!("{reason}");
        }
        let master = Rng64::new(cfg.seed);
        let profiles = (0..n)
            .map(|i| {
                let mut rng = master.derive(i as u64);
                // skew^u with u ~ U(-1, 1): log-uniform in [1/skew, skew].
                let cm = cfg.compute_skew.powf(rng.uniform(-1.0, 1.0) as f64);
                let bm = cfg.bandwidth_skew.powf(rng.uniform(-1.0, 1.0) as f64);
                DeviceProfile {
                    compute_s: cfg.compute_s * cm,
                    bandwidth_bps: cfg.bandwidth_bps * bm,
                    latency_s: cfg.latency_s,
                    dropout: cfg.dropout,
                }
            })
            .collect();
        Self { profiles }
    }

    /// Profile of client `client_id`.
    ///
    /// # Panics
    /// Panics if `client_id` is out of range.
    pub fn profile(&self, client_id: usize) -> &DeviceProfile {
        &self.profiles[client_id]
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the fleet is empty (never true for generated fleets).
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The `pct`-percentile (in `[0, 1]`) of the fleet's completion times
    /// for an `upload_bytes` payload — a principled way to pick a round
    /// deadline ("wait for the fastest 70%").
    pub fn completion_percentile_s(&self, upload_bytes: u64, pct: f64) -> f64 {
        assert!((0.0..=1.0).contains(&pct), "percentile must be in [0, 1]");
        let mut times: Vec<f64> = self
            .profiles
            .iter()
            .map(|p| p.completion_time_s(upload_bytes))
            .collect();
        times.sort_by(f64::total_cmp);
        let idx = ((times.len() - 1) as f64 * pct).round() as usize;
        times[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = FleetConfig {
            compute_skew: 3.0,
            bandwidth_skew: 2.0,
            ..Default::default()
        };
        let a = Fleet::generate(12, &cfg);
        let b = Fleet::generate(12, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn profiles_are_stable_under_fleet_growth() {
        let cfg = FleetConfig {
            compute_skew: 4.0,
            ..Default::default()
        };
        let small = Fleet::generate(5, &cfg);
        let big = Fleet::generate(50, &cfg);
        for i in 0..5 {
            assert_eq!(small.profile(i), big.profile(i));
        }
    }

    #[test]
    fn homogeneous_fleet_has_identical_devices() {
        let fleet = Fleet::generate(8, &FleetConfig::default());
        let first = *fleet.profile(0);
        for i in 1..8 {
            assert_eq!(*fleet.profile(i), first);
        }
        assert_eq!(first.compute_s, 10.0);
    }

    #[test]
    fn skew_spreads_within_bounds() {
        let cfg = FleetConfig {
            compute_skew: 4.0,
            bandwidth_skew: 4.0,
            ..Default::default()
        };
        let fleet = Fleet::generate(64, &cfg);
        let (mut min_c, mut max_c) = (f64::INFINITY, 0.0f64);
        for i in 0..fleet.len() {
            let p = fleet.profile(i);
            assert!(p.compute_s >= 10.0 / 4.0 && p.compute_s <= 10.0 * 4.0);
            assert!(p.bandwidth_bps >= 1e6 / 4.0 && p.bandwidth_bps <= 1e6 * 4.0);
            min_c = min_c.min(p.compute_s);
            max_c = max_c.max(p.compute_s);
        }
        assert!(
            max_c / min_c > 2.0,
            "skew 4 fleet too uniform: {min_c}..{max_c}"
        );
    }

    #[test]
    fn completion_time_decomposes() {
        let p = DeviceProfile {
            compute_s: 10.0,
            bandwidth_bps: 1e6,
            latency_s: 0.5,
            dropout: 0.0,
        };
        // 2 MB at 1 MB/s = 2 s of upload.
        assert!((p.completion_time_s(2_000_000) - 12.5).abs() < 1e-9);
    }

    #[test]
    fn percentile_brackets_extremes() {
        let cfg = FleetConfig {
            compute_skew: 4.0,
            ..Default::default()
        };
        let fleet = Fleet::generate(32, &cfg);
        let lo = fleet.completion_percentile_s(1_000, 0.0);
        let mid = fleet.completion_percentile_s(1_000, 0.5);
        let hi = fleet.completion_percentile_s(1_000, 1.0);
        assert!(lo <= mid && mid <= hi);
        assert!(hi > lo, "skewed fleet must spread percentiles");
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn rejects_certain_dropout() {
        let cfg = FleetConfig {
            dropout: 1.0,
            ..Default::default()
        };
        let _ = Fleet::generate(4, &cfg);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn rejects_empty_fleet() {
        let _ = Fleet::generate(0, &FleetConfig::default());
    }
}
