//! Seeded per-client device profiles (compute speed, network, dropout).
//!
//! Real federated deployments are dominated by device heterogeneity: some
//! clients train on flagship phones over Wi-Fi, others on throttled
//! hardware behind slow uplinks, and a fraction silently churns every
//! round (see the non-IID FL survey arXiv:2401.00809). [`Fleet`] generates
//! a deterministic population of [`DeviceProfile`]s from a single seed, so
//! entire heterogeneity scenarios reproduce bit-for-bit, like every other
//! random stream in this workspace.
//!
//! Reliability is a *per-device* property: each profile carries its own
//! per-round dropout rate, spread log-uniformly around the fleet's base
//! rate ([`ReliabilityConfig::dropout_skew`]) and optionally *correlated
//! with compute speed* ([`DropoutCorrelation::SpeedCorrelated`]) — the
//! adaptive-dropout observation (arXiv:2507.10430) that slow devices fail
//! disproportionately often. Rates derive per client index, so a device's
//! reliability is stable under fleet growth, and the legacy fleet-wide
//! scalar is exactly the `dropout_skew = 1` special case.

use std::sync::atomic::{AtomicU64, Ordering};

use feddrl_nn::rng::Rng64;
use serde::{Deserialize, Serialize};

/// One client's (simulated) device characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Wall-clock seconds this device needs for one local training round.
    pub compute_s: f64,
    /// Uplink bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// Fixed per-upload latency in seconds (connection setup, RTT).
    pub latency_s: f64,
    /// Per-round probability that this client drops out of a round it was
    /// sampled for (in `[0, 1)`).
    pub dropout: f64,
    /// Phase offset (radians) of this device's diurnal availability cycle.
    /// Drawn only when the fleet has a [`DiurnalConfig`]; stays exactly 0
    /// (and absent from serialized profiles) otherwise, so dynamics-free
    /// fleets keep their historical byte representation.
    #[serde(default, skip_serializing_if = "f64_is_zero")]
    pub phase: f64,
}

fn f64_is_zero(x: &f64) -> bool {
    *x == 0.0
}

impl DeviceProfile {
    /// Virtual time from round start until this device's update has fully
    /// arrived at the server: local compute, then upload of
    /// `upload_bytes` over its link.
    pub fn completion_time_s(&self, upload_bytes: u64) -> f64 {
        self.compute_s + self.latency_s + upload_bytes as f64 / self.bandwidth_bps
    }

    /// The diurnal multiplier `1 + amplitude * sin(2π t / period + phase)`
    /// for this device at virtual time `now_s`.
    fn diurnal_factor(&self, amplitude: f64, period_s: f64, now_s: f64) -> f64 {
        1.0 + amplitude * (std::f64::consts::TAU * now_s / period_s + self.phase).sin()
    }

    /// Per-round dropout probability at virtual time `now_s`: the raw rate
    /// modulated by the device's diurnal cycle. With no [`DiurnalConfig`]
    /// this returns the raw `dropout` field bit-for-bit; with one, the
    /// validated amplitude bound (`< 1`, and the peak rate below 1) keeps
    /// the result a probability without clamping.
    pub fn effective_dropout(&self, diurnal: Option<&DiurnalConfig>, now_s: f64) -> f64 {
        match diurnal {
            None => self.dropout,
            Some(d) => self.dropout * self.diurnal_factor(d.dropout_amplitude, d.period_s, now_s),
        }
    }

    /// Per-upload latency at virtual time `now_s` under the diurnal cycle
    /// (congested hours stretch connection setup). Bit-identical to the
    /// raw `latency_s` when `diurnal` is `None`.
    pub fn effective_latency_s(&self, diurnal: Option<&DiurnalConfig>, now_s: f64) -> f64 {
        match diurnal {
            None => self.latency_s,
            Some(d) => self.latency_s * self.diurnal_factor(d.latency_amplitude, d.period_s, now_s),
        }
    }

    /// [`DeviceProfile::completion_time_s`] evaluated at virtual time
    /// `now_s` under the diurnal cycle, with local compute scaled by
    /// `compute_scale` (structured-dropout sub-models train proportionally
    /// faster; `1` = full model). `None` + scale 1 reproduces
    /// [`DeviceProfile::completion_time_s`] bit-for-bit.
    pub fn completion_time_at(
        &self,
        upload_bytes: u64,
        compute_scale: f64,
        diurnal: Option<&DiurnalConfig>,
        now_s: f64,
    ) -> f64 {
        self.compute_s * compute_scale
            + self.effective_latency_s(diurnal, now_s)
            + upload_bytes as f64 / self.bandwidth_bps
    }
}

/// Periodic (time-of-day) availability modulation: every device's dropout
/// rate and upload latency oscillate sinusoidally around their profile
/// values, with a per-device phase drawn in the profile's reliability
/// block — so two fleets differing only in `diurnal` share identical
/// compute/bandwidth/dropout draws, and the whole feature is byte-inert
/// when absent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalConfig {
    /// Cycle length in simulated seconds (e.g. 86 400 for a literal day).
    pub period_s: f64,
    /// Relative swing of the dropout rate, in `[0, 1)`: the effective rate
    /// ranges over `dropout * (1 ± amplitude)`.
    pub dropout_amplitude: f64,
    /// Relative swing of the upload latency, in `[0, 1)`.
    pub latency_amplitude: f64,
}

impl Default for DiurnalConfig {
    /// A gentle day: 1-hour period (sweep-friendly), ±50% dropout swing,
    /// ±30% latency swing.
    fn default() -> Self {
        Self {
            period_s: 3600.0,
            dropout_amplitude: 0.5,
            latency_amplitude: 0.3,
        }
    }
}

impl DiurnalConfig {
    /// Check the modulation's own invariants (the peak-rate bound lives in
    /// [`FleetConfig::validate_dynamics`], which also knows the rates).
    ///
    /// # Errors
    /// A human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.period_s.is_finite() && self.period_s > 0.0) {
            return Err(format!(
                "diurnal period must be positive and finite, got {}",
                self.period_s
            ));
        }
        for (name, a) in [
            ("dropout_amplitude", self.dropout_amplitude),
            ("latency_amplitude", self.latency_amplitude),
        ] {
            if !(a.is_finite() && (0.0..1.0).contains(&a)) {
                return Err(format!("diurnal {name} must be in [0, 1), got {a}"));
            }
        }
        Ok(())
    }
}

/// Fleet churn: seeded Poisson arrival/departure processes on the virtual
/// clock. Consumed by [`crate::churn::ChurnProcess`], which turns the two
/// mean gaps into time-ordered [`crate::event::EventKind::ClientJoin`] /
/// [`crate::event::EventKind::ClientLeave`] events.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Mean simulated seconds between client arrivals (exponential gaps).
    pub mean_arrival_gap_s: f64,
    /// Mean simulated seconds between departure attempts (exponential
    /// gaps; a departure targeting the last active client is skipped, so
    /// the fleet never empties).
    pub mean_departure_gap_s: f64,
}

impl Default for ChurnConfig {
    /// One arrival and one departure attempt per minute of virtual time.
    fn default() -> Self {
        Self {
            mean_arrival_gap_s: 60.0,
            mean_departure_gap_s: 60.0,
        }
    }
}

impl ChurnConfig {
    /// Check the churn process's invariants.
    ///
    /// # Errors
    /// A human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        for (name, gap) in [
            ("mean_arrival_gap_s", self.mean_arrival_gap_s),
            ("mean_departure_gap_s", self.mean_departure_gap_s),
        ] {
            if !(gap.is_finite() && gap > 0.0) {
                return Err(format!(
                    "churn {name} must be positive and finite, got {gap}"
                ));
            }
        }
        Ok(())
    }
}

/// How a device's dropout-rate multiplier relates to its compute speed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum DropoutCorrelation {
    /// Each device's multiplier is drawn independently of its speed (its
    /// own per-index stream) — flaky devices are scattered uniformly over
    /// the speed spectrum.
    #[default]
    Independent,
    /// Slower devices drop out more, as the adaptive-dropout system
    /// (arXiv:2507.10430) observes in real fleets: `strength ∈ [0, 1]`
    /// interpolates the multiplier's log-exponent between an independent
    /// draw (`0`, identical to [`DropoutCorrelation::Independent`]) and
    /// the device's normalized compute slowness (`1`, fully determined —
    /// the slowest device gets the full `dropout_skew` multiplier, the
    /// fastest gets `1 / dropout_skew`).
    SpeedCorrelated {
        /// Correlation strength in `[0, 1]`.
        strength: f64,
    },
}

/// The per-device reliability model: how individual dropout rates spread
/// around [`FleetConfig::dropout`] (the fleet's base rate).
///
/// The default — no spread, no correlation — reproduces the legacy
/// fleet-wide scalar exactly: every device drops at the base rate, so
/// configs serialized before this model existed deserialize to identical
/// behavior.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityConfig {
    /// Log-uniform spread of per-device dropout multipliers (`>= 1`;
    /// `1` = every device at the base rate, the legacy behavior). A
    /// device's rate is `dropout * m` with `m` in
    /// `[1/dropout_skew, dropout_skew]`.
    pub dropout_skew: f64,
    /// Whether the multiplier is tied to the device's compute speed.
    pub correlation: DropoutCorrelation,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        Self {
            dropout_skew: 1.0,
            correlation: DropoutCorrelation::Independent,
        }
    }
}

impl ReliabilityConfig {
    /// Check the reliability model's own invariants (the base-rate bound
    /// lives in [`FleetConfig::validate`], which also knows `dropout`).
    ///
    /// # Errors
    /// A human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.dropout_skew.is_finite() && self.dropout_skew >= 1.0) {
            return Err(format!(
                "dropout_skew must be finite and >= 1 (1 = homogeneous), got {}",
                self.dropout_skew
            ));
        }
        if let DropoutCorrelation::SpeedCorrelated { strength } = self.correlation {
            if !(strength.is_finite() && (0.0..=1.0).contains(&strength)) {
                return Err(format!(
                    "speed-correlation strength must be in [0, 1], got {strength}"
                ));
            }
        }
        Ok(())
    }
}

/// Knobs for generating a device fleet.
///
/// Skew factors are log-uniform spreads: a device's compute time is
/// `compute_s * m` with `m` drawn uniformly in log-space from
/// `[1/compute_skew, compute_skew]` (and likewise for bandwidth), so
/// `skew = 1` yields a homogeneous fleet and `skew = 4` a 16× spread
/// between the fastest and slowest device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Reference local-round compute time in seconds.
    pub compute_s: f64,
    /// Log-uniform compute-time spread (`>= 1`; 1 = homogeneous).
    pub compute_skew: f64,
    /// Reference uplink bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// Log-uniform bandwidth spread (`>= 1`; 1 = homogeneous).
    pub bandwidth_skew: f64,
    /// Fixed per-upload latency in seconds.
    pub latency_s: f64,
    /// Base per-round dropout probability (in `[0, 1)`; the product with
    /// `reliability.dropout_skew` must also stay below 1). With the
    /// default [`ReliabilityConfig`] this is every device's exact rate —
    /// the legacy fleet-wide scalar, kept serde-compatible.
    pub dropout: f64,
    /// Per-device reliability model spreading individual dropout rates
    /// around the base `dropout` (defaults to the legacy no-spread
    /// behavior, so old configs deserialize unchanged).
    #[serde(default)]
    pub reliability: ReliabilityConfig,
    /// Optional diurnal availability cycle (absent = static availability,
    /// the historical behavior; absent from serialized configs too).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub diurnal: Option<DiurnalConfig>,
    /// Optional fleet churn process (absent = the client set is fixed for
    /// the run, the historical behavior).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub churn: Option<ChurnConfig>,
    /// Seed for the fleet draw; profiles derive per client index, so
    /// client `i`'s device is independent of the fleet size.
    pub seed: u64,
}

impl Default for FleetConfig {
    /// Mid-range phone over residential broadband: 10 s local rounds,
    /// 1 MB/s uplink, 50 ms latency, homogeneous, no dropout.
    fn default() -> Self {
        Self {
            compute_s: 10.0,
            compute_skew: 1.0,
            bandwidth_bps: 1e6,
            bandwidth_skew: 1.0,
            latency_s: 0.05,
            dropout: 0.0,
            reliability: ReliabilityConfig::default(),
            diurnal: None,
            churn: None,
            seed: 0xDE1CE,
        }
    }
}

impl FleetConfig {
    /// Check every invariant [`Fleet::generate`] enforces, as a result —
    /// the single source of truth for what makes a fleet config valid
    /// (callers wanting typed errors wrap the message; `generate` panics
    /// with it).
    ///
    /// # Errors
    /// A human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.validate_base()?;
        self.validate_reliability()?;
        self.validate_dynamics()
    }

    /// The device/network/base-rate invariants alone (everything except
    /// the reliability model) — split out so callers wanting *distinct*
    /// typed errors for the two halves (see `feddrl_fl`'s
    /// `InvalidFleet` vs `InvalidReliability`) can check them separately.
    ///
    /// # Errors
    /// A human-readable description of the first violated constraint.
    pub fn validate_base(&self) -> Result<(), String> {
        if !(self.compute_s > 0.0 && self.bandwidth_bps > 0.0) {
            return Err("compute_s and bandwidth_bps must be positive".into());
        }
        if !(self.compute_skew >= 1.0 && self.bandwidth_skew >= 1.0) {
            return Err("skew factors must be >= 1 (1 = homogeneous)".into());
        }
        if self.latency_s < 0.0 {
            return Err("latency must be non-negative".into());
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return Err(format!(
                "dropout probability must be in [0, 1), got {}",
                self.dropout
            ));
        }
        Ok(())
    }

    /// The reliability-model invariants: a well-formed
    /// [`ReliabilityConfig`] whose spread keeps every per-device rate
    /// below 1 (`dropout * dropout_skew < 1` — the worst-case multiplier
    /// is exactly `dropout_skew`, so this bound is tight, not a
    /// heuristic).
    ///
    /// # Errors
    /// A human-readable description of the first violated constraint.
    pub fn validate_reliability(&self) -> Result<(), String> {
        self.reliability.validate()?;
        if self.dropout * self.reliability.dropout_skew >= 1.0 {
            return Err(format!(
                "dropout * dropout_skew must stay below 1 so every per-device \
                 rate is a probability, got {} * {} = {}",
                self.dropout,
                self.reliability.dropout_skew,
                self.dropout * self.reliability.dropout_skew
            ));
        }
        Ok(())
    }

    /// The fleet-dynamics invariants: well-formed diurnal/churn blocks
    /// whose modulation keeps every *effective* per-device rate a
    /// probability — the worst case is the worst reliability multiplier at
    /// the diurnal peak, so the bound is
    /// `dropout * dropout_skew * (1 + dropout_amplitude) < 1` (tight, like
    /// the static bound it generalizes).
    ///
    /// # Errors
    /// A human-readable description of the first violated constraint.
    pub fn validate_dynamics(&self) -> Result<(), String> {
        if let Some(d) = &self.diurnal {
            d.validate()?;
            let peak = self.dropout * self.reliability.dropout_skew * (1.0 + d.dropout_amplitude);
            if peak >= 1.0 {
                return Err(format!(
                    "dropout * dropout_skew * (1 + dropout_amplitude) must stay \
                     below 1 so every effective rate is a probability, got {peak}"
                ));
            }
        }
        if let Some(c) = &self.churn {
            c.validate()?;
        }
        Ok(())
    }
}

/// Derive client `i`'s profile from the fleet config alone.
///
/// This is *the* profile format: both the lazy [`FleetView`] and the eager
/// [`Fleet`] call it, so the two are identical by construction at every
/// index. skew^u with u ~ U(-1, 1): log-uniform in [1/skew, skew]. The
/// draw order (compute, bandwidth, reliability) is part of the format: it
/// keeps compute/bandwidth profiles byte-identical to fleets generated
/// before the per-device reliability model existed, and the per-index
/// `derive(i)` stream keeps every profile stable under fleet growth.
fn derive_profile(cfg: &FleetConfig, master: &Rng64, i: usize) -> DeviceProfile {
    let mut rng = master.derive(i as u64);
    let cm = cfg.compute_skew.powf(rng.uniform(-1.0, 1.0) as f64);
    let bm = cfg.bandwidth_skew.powf(rng.uniform(-1.0, 1.0) as f64);
    let w = rng.uniform(-1.0, 1.0) as f64;
    // Normalized compute slowness in [-1, 1]: the log-uniform exponent
    // that produced `cm` (0 on a homogeneous fleet, where speed carries
    // no information to correlate with).
    let slowness = if cfg.compute_skew > 1.0 {
        cm.ln() / cfg.compute_skew.ln()
    } else {
        0.0
    };
    let exponent = match cfg.reliability.correlation {
        DropoutCorrelation::Independent => w,
        DropoutCorrelation::SpeedCorrelated { strength } => {
            strength * slowness + (1.0 - strength) * w
        }
    };
    // The diurnal phase is drawn *after* the compute/bandwidth/reliability
    // block (and only when the cycle exists), so enabling dynamics leaves
    // every pre-existing profile field byte-identical.
    let phase = match cfg.diurnal {
        None => 0.0,
        Some(_) => std::f64::consts::TAU * rng.next_f64(),
    };
    DeviceProfile {
        compute_s: cfg.compute_s * cm,
        bandwidth_bps: cfg.bandwidth_bps * bm,
        latency_s: cfg.latency_s,
        dropout: cfg.dropout * cfg.reliability.dropout_skew.powf(exponent),
        phase,
    }
}

/// A lazy fleet: derives [`DeviceProfile`]s on demand per index instead of
/// materializing all `n` up front, so fleet size is a free variable —
/// a million-device view costs a config plus a counter, and only the
/// devices a round actually touches are ever derived.
///
/// Profile derivation is pure (a handful of `powf`s off the per-index RNG
/// stream), so the view memoizes nothing: profile memory is O(1) and the
/// view is identical to [`Fleet::generate`] profile-for-profile at every
/// index by construction (both call the same derivation).
///
/// The view counts derivations ([`FleetView::derivations`]) so callers can
/// *assert* — not just claim — that a code path touches O(candidates)
/// profiles rather than O(N).
#[derive(Debug)]
pub struct FleetView {
    cfg: FleetConfig,
    master: Rng64,
    n: usize,
    derived: AtomicU64,
}

impl FleetView {
    /// Build a lazy view over `n` devices.
    ///
    /// # Panics
    /// Panics on the same degenerate configs as [`Fleet::generate`], with
    /// the same messages.
    pub fn new(n: usize, cfg: &FleetConfig) -> Self {
        assert!(n > 0, "fleet needs at least one device");
        if let Err(reason) = cfg.validate() {
            panic!("{reason}");
        }
        Self {
            master: Rng64::new(cfg.seed),
            cfg: cfg.clone(),
            n,
            derived: AtomicU64::new(0),
        }
    }

    /// Derive the profile of client `client_id` (by value — nothing is
    /// stored).
    ///
    /// # Panics
    /// Panics if `client_id` is out of range.
    pub fn profile(&self, client_id: usize) -> DeviceProfile {
        assert!(
            client_id < self.n,
            "client id {client_id} out of range for fleet of {}",
            self.n
        );
        self.derived.fetch_add(1, Ordering::Relaxed);
        derive_profile(&self.cfg, &self.master, client_id)
    }

    /// Number of devices in the view.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Widen the view to cover `n` devices (no-op when already that wide).
    /// Churn arrivals mint monotonically increasing ids, so growing the
    /// view is all a late joiner needs: its profile derives on demand from
    /// the same per-index stream, making every pre-existing profile stable
    /// under growth by construction.
    pub fn grow(&mut self, n: usize) {
        self.n = self.n.max(n);
    }

    /// Whether the view is empty (never true: construction requires n > 0).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The config the view derives from.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// How many profile derivations this view has served — the observable
    /// that lets tests pin selection/dispatch cost to O(candidates)
    /// instead of O(N).
    pub fn derivations(&self) -> u64 {
        self.derived.load(Ordering::Relaxed)
    }

    /// Mean per-round dropout rate over the fleet. O(n) compute, O(1)
    /// memory; does not count toward [`FleetView::derivations`] (it is a
    /// whole-fleet summary, not a per-candidate touch).
    pub fn mean_dropout(&self) -> f64 {
        (0..self.n)
            .map(|i| derive_profile(&self.cfg, &self.master, i).dropout)
            .sum::<f64>()
            / self.n.max(1) as f64
    }

    /// The `pct`-percentile (in `[0, 1]`) of the fleet's completion times
    /// for an `upload_bytes` payload — nearest-rank on the sorted times
    /// (index `⌈pct · N⌉ − 1`, matching [`Fleet::completion_percentile_s`]
    /// and `feddrl_net`'s RTT percentiles). O(n log n) compute with an
    /// O(n) *transient* buffer — a setup-time helper for deadline
    /// placement, not a per-round operation; does not count toward
    /// [`FleetView::derivations`].
    pub fn completion_percentile_s(&self, upload_bytes: u64, pct: f64) -> f64 {
        assert!((0.0..=1.0).contains(&pct), "percentile must be in [0, 1]");
        let mut times: Vec<f64> = (0..self.n)
            .map(|i| derive_profile(&self.cfg, &self.master, i).completion_time_s(upload_bytes))
            .collect();
        times.sort_by(f64::total_cmp);
        times[nearest_rank(times.len(), pct)]
    }

    /// Materialize the view into an eager [`Fleet`] (derives all `n`
    /// profiles once).
    pub fn materialize(&self) -> Fleet {
        Fleet {
            profiles: (0..self.n)
                .map(|i| derive_profile(&self.cfg, &self.master, i))
                .collect(),
        }
    }
}

impl Clone for FleetView {
    fn clone(&self) -> Self {
        Self {
            cfg: self.cfg.clone(),
            master: self.master.clone(),
            n: self.n,
            derived: AtomicU64::new(self.derived.load(Ordering::Relaxed)),
        }
    }
}

/// A generated population of device profiles, indexed by client id.
///
/// This is the eager form: a thin cache over [`FleetView`] that derives
/// every profile once up front. Use it when the whole fleet will be
/// touched anyway (small-N experiments, percentile scans in a loop); use
/// [`FleetView`] when N is large and rounds only touch a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fleet {
    profiles: Vec<DeviceProfile>,
}

impl Fleet {
    /// Deterministically generate `n` device profiles — equivalent to
    /// `FleetView::new(n, cfg).materialize()`, and identical to the view
    /// profile-for-profile at every index.
    ///
    /// # Panics
    /// Panics on a degenerate config: `n == 0`, non-positive reference
    /// compute/bandwidth, skews below 1, negative latency, a dropout
    /// probability outside `[0, 1)` (a certain dropout would make every
    /// round empty), or a reliability model whose spread would push a
    /// per-device rate to 1 or beyond.
    pub fn generate(n: usize, cfg: &FleetConfig) -> Self {
        FleetView::new(n, cfg).materialize()
    }

    /// Profile of client `client_id`.
    ///
    /// # Panics
    /// Panics if `client_id` is out of range.
    pub fn profile(&self, client_id: usize) -> &DeviceProfile {
        &self.profiles[client_id]
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the fleet is empty (never true for generated fleets).
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Mean per-round dropout rate over the fleet — the expected fraction
    /// of a uniformly sampled round lost to device failures.
    pub fn mean_dropout(&self) -> f64 {
        self.profiles.iter().map(|p| p.dropout).sum::<f64>() / self.profiles.len().max(1) as f64
    }

    /// The `pct`-percentile (in `[0, 1]`) of the fleet's completion times
    /// for an `upload_bytes` payload — a principled way to pick a round
    /// deadline ("wait for the fastest 70%"). Nearest-rank on the sorted
    /// times (index `⌈pct · N⌉ − 1`, matching
    /// [`FleetView::completion_percentile_s`] and `feddrl_net`'s RTT
    /// percentiles).
    pub fn completion_percentile_s(&self, upload_bytes: u64, pct: f64) -> f64 {
        assert!((0.0..=1.0).contains(&pct), "percentile must be in [0, 1]");
        let mut times: Vec<f64> = self
            .profiles
            .iter()
            .map(|p| p.completion_time_s(upload_bytes))
            .collect();
        times.sort_by(f64::total_cmp);
        times[nearest_rank(times.len(), pct)]
    }
}

/// Nearest-rank percentile index over `n` sorted samples for a quantile
/// `pct ∈ [0, 1]`: the smallest index whose rank covers `pct` of the
/// samples, `⌈pct · n⌉ − 1` (clamped so `pct = 0` reads the minimum and
/// `pct = 1` the maximum). `feddrl_net`'s `rtt_percentile_ms` implements
/// the identical definition on the identical `[0, 1]` input — measured
/// RTTs read against predicted completion times with no conversion.
fn nearest_rank(n: usize, pct: f64) -> usize {
    ((n as f64 * pct).ceil() as usize)
        .saturating_sub(1)
        .min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = FleetConfig {
            compute_skew: 3.0,
            bandwidth_skew: 2.0,
            ..Default::default()
        };
        let a = Fleet::generate(12, &cfg);
        let b = Fleet::generate(12, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn profiles_are_stable_under_fleet_growth() {
        let cfg = FleetConfig {
            compute_skew: 4.0,
            ..Default::default()
        };
        let small = Fleet::generate(5, &cfg);
        let big = Fleet::generate(50, &cfg);
        for i in 0..5 {
            assert_eq!(small.profile(i), big.profile(i));
        }
    }

    #[test]
    fn homogeneous_fleet_has_identical_devices() {
        let fleet = Fleet::generate(8, &FleetConfig::default());
        let first = *fleet.profile(0);
        for i in 1..8 {
            assert_eq!(*fleet.profile(i), first);
        }
        assert_eq!(first.compute_s, 10.0);
    }

    #[test]
    fn skew_spreads_within_bounds() {
        let cfg = FleetConfig {
            compute_skew: 4.0,
            bandwidth_skew: 4.0,
            ..Default::default()
        };
        let fleet = Fleet::generate(64, &cfg);
        let (mut min_c, mut max_c) = (f64::INFINITY, 0.0f64);
        for i in 0..fleet.len() {
            let p = fleet.profile(i);
            assert!(p.compute_s >= 10.0 / 4.0 && p.compute_s <= 10.0 * 4.0);
            assert!(p.bandwidth_bps >= 1e6 / 4.0 && p.bandwidth_bps <= 1e6 * 4.0);
            min_c = min_c.min(p.compute_s);
            max_c = max_c.max(p.compute_s);
        }
        assert!(
            max_c / min_c > 2.0,
            "skew 4 fleet too uniform: {min_c}..{max_c}"
        );
    }

    #[test]
    fn completion_time_decomposes() {
        let p = DeviceProfile {
            compute_s: 10.0,
            bandwidth_bps: 1e6,
            latency_s: 0.5,
            dropout: 0.0,
            phase: 0.0,
        };
        // 2 MB at 1 MB/s = 2 s of upload.
        assert!((p.completion_time_s(2_000_000) - 12.5).abs() < 1e-9);
        // The dynamics-aware form at scale 1 with no cycle is the same sum
        // in the same order — bit-identical, not merely close.
        assert_eq!(
            p.completion_time_at(2_000_000, 1.0, None, 123.0),
            p.completion_time_s(2_000_000)
        );
    }

    #[test]
    fn percentile_brackets_extremes() {
        let cfg = FleetConfig {
            compute_skew: 4.0,
            ..Default::default()
        };
        let fleet = Fleet::generate(32, &cfg);
        let lo = fleet.completion_percentile_s(1_000, 0.0);
        let mid = fleet.completion_percentile_s(1_000, 0.5);
        let hi = fleet.completion_percentile_s(1_000, 1.0);
        assert!(lo <= mid && mid <= hi);
        assert!(hi > lo, "skewed fleet must spread percentiles");
    }

    /// Regression for the nearest-rank fix: on a 100-device fleet, p50
    /// must read the 50th-fastest completion time (index 49 — the old
    /// `((N−1)·p).round()` indexing read index 50) and p99 the
    /// 99th-fastest (index 98), bit-identically in `Fleet` and
    /// `FleetView`. Same definition as `feddrl_net`'s RTT percentiles.
    #[test]
    fn percentile_is_true_nearest_rank() {
        let cfg = FleetConfig {
            compute_skew: 6.0,
            bandwidth_skew: 3.0,
            seed: 42,
            ..Default::default()
        };
        let fleet = Fleet::generate(100, &cfg);
        let view = FleetView::new(100, &cfg);
        let mut times: Vec<f64> = (0..100)
            .map(|i| fleet.profile(i).completion_time_s(1_000_000))
            .collect();
        times.sort_by(f64::total_cmp);
        for (pct, idx) in [(0.5, 49), (0.99, 98), (0.0, 0), (1.0, 99)] {
            let want = times[idx];
            assert_eq!(
                fleet.completion_percentile_s(1_000_000, pct).to_bits(),
                want.to_bits(),
                "Fleet p{pct} must read sorted index {idx}"
            );
            assert_eq!(
                view.completion_percentile_s(1_000_000, pct).to_bits(),
                want.to_bits(),
                "FleetView p{pct} must read sorted index {idx}"
            );
        }
    }

    #[test]
    fn default_reliability_reproduces_the_fleet_wide_scalar() {
        let cfg = FleetConfig {
            compute_skew: 4.0,
            dropout: 0.3,
            ..Default::default()
        };
        let fleet = Fleet::generate(16, &cfg);
        for i in 0..16 {
            assert_eq!(
                fleet.profile(i).dropout,
                0.3,
                "device {i} left the base rate"
            );
        }
        assert!((fleet.mean_dropout() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn reliability_model_does_not_perturb_speed_or_bandwidth() {
        let base = FleetConfig {
            compute_skew: 4.0,
            bandwidth_skew: 2.0,
            dropout: 0.2,
            ..Default::default()
        };
        let spread = FleetConfig {
            reliability: ReliabilityConfig {
                dropout_skew: 3.0,
                correlation: DropoutCorrelation::SpeedCorrelated { strength: 0.8 },
            },
            ..base.clone()
        };
        let (a, b) = (Fleet::generate(12, &base), Fleet::generate(12, &spread));
        for i in 0..12 {
            assert_eq!(a.profile(i).compute_s, b.profile(i).compute_s);
            assert_eq!(a.profile(i).bandwidth_bps, b.profile(i).bandwidth_bps);
        }
    }

    #[test]
    fn spread_rates_stay_within_the_validated_bounds() {
        let cfg = FleetConfig {
            compute_skew: 4.0,
            dropout: 0.2,
            reliability: ReliabilityConfig {
                dropout_skew: 4.0,
                correlation: DropoutCorrelation::Independent,
            },
            ..Default::default()
        };
        let fleet = Fleet::generate(64, &cfg);
        let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
        for i in 0..64 {
            let d = fleet.profile(i).dropout;
            assert!(
                (0.2 / 4.0..=0.2 * 4.0).contains(&d),
                "rate {d} out of bounds"
            );
            lo = lo.min(d);
            hi = hi.max(d);
        }
        assert!(hi / lo > 2.0, "skew-4 reliability too uniform: {lo}..{hi}");
    }

    #[test]
    fn full_speed_correlation_ties_dropout_to_slowness() {
        let cfg = FleetConfig {
            compute_skew: 4.0,
            dropout: 0.2,
            reliability: ReliabilityConfig {
                dropout_skew: 3.0,
                correlation: DropoutCorrelation::SpeedCorrelated { strength: 1.0 },
            },
            ..Default::default()
        };
        let fleet = Fleet::generate(32, &cfg);
        let mut devices: Vec<&DeviceProfile> = (0..32).map(|i| fleet.profile(i)).collect();
        devices.sort_by(|a, b| a.compute_s.total_cmp(&b.compute_s));
        for pair in devices.windows(2) {
            assert!(
                pair[0].dropout <= pair[1].dropout,
                "slower device ({} s) drops less ({} vs {})",
                pair[1].compute_s,
                pair[1].dropout,
                pair[0].dropout
            );
        }
    }

    #[test]
    fn rejects_reliability_spread_reaching_certainty() {
        let cfg = FleetConfig {
            dropout: 0.5,
            reliability: ReliabilityConfig {
                dropout_skew: 2.0,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(cfg
            .validate()
            .unwrap_err()
            .contains("dropout * dropout_skew"));
    }

    #[test]
    fn rejects_out_of_range_correlation_strength() {
        for strength in [-0.1, 1.5, f64::NAN] {
            let cfg = FleetConfig {
                dropout: 0.1,
                reliability: ReliabilityConfig {
                    dropout_skew: 2.0,
                    correlation: DropoutCorrelation::SpeedCorrelated { strength },
                },
                ..Default::default()
            };
            assert!(
                cfg.validate_reliability()
                    .unwrap_err()
                    .contains("strength must be in [0, 1]"),
                "strength {strength} accepted"
            );
            assert!(
                cfg.validate_base().is_ok(),
                "base checks must not see strength"
            );
        }
    }

    #[test]
    fn legacy_fleet_config_json_deserializes_with_default_reliability() {
        // A config serialized before the reliability model existed has no
        // `reliability` key; it must deserialize to the legacy behavior.
        let legacy = r#"{
            "compute_s": 10.0, "compute_skew": 2.0,
            "bandwidth_bps": 1e6, "bandwidth_skew": 1.0,
            "latency_s": 0.05, "dropout": 0.25, "seed": 7
        }"#;
        let cfg: FleetConfig = serde_json::from_str(legacy).unwrap();
        assert_eq!(cfg.reliability, ReliabilityConfig::default());
        let fleet = Fleet::generate(4, &cfg);
        for i in 0..4 {
            assert_eq!(fleet.profile(i).dropout, 0.25);
        }
    }

    #[test]
    fn diurnal_phase_draw_leaves_static_profile_fields_byte_identical() {
        let base = FleetConfig {
            compute_skew: 4.0,
            bandwidth_skew: 2.0,
            dropout: 0.2,
            reliability: ReliabilityConfig {
                dropout_skew: 2.0,
                correlation: DropoutCorrelation::SpeedCorrelated { strength: 0.7 },
            },
            ..Default::default()
        };
        let cycling = FleetConfig {
            diurnal: Some(DiurnalConfig::default()),
            ..base.clone()
        };
        let (a, b) = (Fleet::generate(16, &base), Fleet::generate(16, &cycling));
        let mut phases = Vec::new();
        for i in 0..16 {
            let (p, q) = (a.profile(i), b.profile(i));
            assert_eq!(p.compute_s, q.compute_s);
            assert_eq!(p.bandwidth_bps, q.bandwidth_bps);
            assert_eq!(p.latency_s, q.latency_s);
            assert_eq!(p.dropout, q.dropout);
            assert_eq!(p.phase, 0.0, "static fleet drew a phase");
            assert!(
                (0.0..std::f64::consts::TAU).contains(&q.phase),
                "phase {} out of [0, 2pi)",
                q.phase
            );
            phases.push(q.phase);
        }
        phases.sort_by(f64::total_cmp);
        phases.dedup();
        assert!(phases.len() > 8, "per-device phases collapsed");
    }

    #[test]
    fn effective_rates_modulate_within_bounds_and_periodically() {
        let cfg = FleetConfig {
            dropout: 0.3,
            diurnal: Some(DiurnalConfig {
                period_s: 100.0,
                dropout_amplitude: 0.8,
                latency_amplitude: 0.5,
            }),
            ..Default::default()
        };
        let fleet = Fleet::generate(4, &cfg);
        let d = cfg.diurnal.as_ref();
        for i in 0..4 {
            let p = fleet.profile(i);
            for step in 0..200 {
                let t = step as f64 * 1.7;
                let rate = p.effective_dropout(d, t);
                assert!(
                    (0.0..1.0).contains(&rate),
                    "effective rate {rate} not a probability"
                );
                assert!((rate - p.effective_dropout(d, t + 100.0)).abs() < 1e-9);
                let lat = p.effective_latency_s(d, t);
                assert!(lat >= 0.0);
                assert!((lat - p.effective_latency_s(d, t + 100.0)).abs() < 1e-9);
            }
            // The cycle actually moves the rate.
            let spread: Vec<f64> = (0..50)
                .map(|s| p.effective_dropout(d, s as f64 * 2.0))
                .collect();
            let (lo, hi) = spread
                .iter()
                .fold((f64::INFINITY, 0.0f64), |(l, h), &r| (l.min(r), h.max(r)));
            assert!(hi > lo * 2.0, "amplitude 0.8 cycle too flat: {lo}..{hi}");
        }
    }

    #[test]
    fn absent_and_zero_amplitude_cycles_are_bit_inert() {
        let p = DeviceProfile {
            compute_s: 3.0,
            bandwidth_bps: 1e6,
            latency_s: 0.25,
            dropout: 0.4,
            phase: 1.0,
        };
        let flat = DiurnalConfig {
            period_s: 60.0,
            dropout_amplitude: 0.0,
            latency_amplitude: 0.0,
        };
        for t in [0.0, 17.3, 1e6] {
            assert_eq!(p.effective_dropout(None, t), p.dropout);
            assert_eq!(p.effective_latency_s(None, t), p.latency_s);
            assert_eq!(p.effective_dropout(Some(&flat), t), p.dropout);
            assert_eq!(p.effective_latency_s(Some(&flat), t), p.latency_s);
        }
    }

    #[test]
    fn validate_dynamics_bounds_the_effective_peak_rate() {
        // 0.4 * 2.0 * (1 + 0.3) = 1.04 >= 1: rejected even though the
        // static bound (0.8) passes.
        let cfg = FleetConfig {
            dropout: 0.4,
            reliability: ReliabilityConfig {
                dropout_skew: 2.0,
                ..Default::default()
            },
            diurnal: Some(DiurnalConfig {
                period_s: 60.0,
                dropout_amplitude: 0.3,
                latency_amplitude: 0.0,
            }),
            ..Default::default()
        };
        assert!(cfg.validate_reliability().is_ok());
        assert!(cfg
            .validate_dynamics()
            .unwrap_err()
            .contains("dropout_amplitude"));

        for bad in [
            DiurnalConfig {
                period_s: 0.0,
                ..Default::default()
            },
            DiurnalConfig {
                period_s: f64::NAN,
                ..Default::default()
            },
            DiurnalConfig {
                dropout_amplitude: 1.0,
                ..Default::default()
            },
            DiurnalConfig {
                latency_amplitude: -0.1,
                ..Default::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} accepted");
        }
        for bad_gap in [0.0, -1.0, f64::INFINITY, f64::NAN] {
            let churn = ChurnConfig {
                mean_arrival_gap_s: bad_gap,
                ..Default::default()
            };
            assert!(churn.validate().is_err(), "gap {bad_gap} accepted");
        }
        ChurnConfig::default().validate().unwrap();
        DiurnalConfig::default().validate().unwrap();
    }

    #[test]
    fn grown_view_serves_late_joiners_without_disturbing_old_profiles() {
        let cfg = FleetConfig {
            compute_skew: 4.0,
            dropout: 0.1,
            reliability: ReliabilityConfig {
                dropout_skew: 3.0,
                ..Default::default()
            },
            diurnal: Some(DiurnalConfig::default()),
            ..Default::default()
        };
        let fixed = FleetView::new(40, &cfg);
        let mut grown = FleetView::new(8, &cfg);
        let before: Vec<DeviceProfile> = (0..8).map(|i| grown.profile(i)).collect();
        grown.grow(40);
        assert_eq!(grown.len(), 40);
        for (i, b) in before.iter().enumerate() {
            assert_eq!(grown.profile(i), *b, "growth disturbed profile {i}");
        }
        for i in 0..40 {
            assert_eq!(grown.profile(i), fixed.profile(i), "late joiner {i}");
        }
        grown.grow(10);
        assert_eq!(grown.len(), 40, "grow must never shrink");
    }

    #[test]
    fn dynamics_free_config_and_profile_json_stay_byte_identical() {
        // No `diurnal`/`churn`/`phase` keys appear unless the features are
        // on — saved PR-6 configs and fixtures stay untouched.
        let cfg = FleetConfig {
            compute_skew: 2.0,
            dropout: 0.1,
            ..Default::default()
        };
        let json = serde_json::to_string(&cfg).unwrap();
        assert!(!json.contains("diurnal") && !json.contains("churn"));
        let profile_json = serde_json::to_string(&Fleet::generate(2, &cfg)).unwrap();
        assert!(!profile_json.contains("phase"));
        let back: FleetConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);

        let dynamic = FleetConfig {
            diurnal: Some(DiurnalConfig::default()),
            churn: Some(ChurnConfig::default()),
            ..cfg
        };
        let json = serde_json::to_string(&dynamic).unwrap();
        assert!(json.contains("diurnal") && json.contains("churn"));
        let back: FleetConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, dynamic);
        let profile_json = serde_json::to_string(&Fleet::generate(2, &dynamic)).unwrap();
        assert!(profile_json.contains("phase"));
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn rejects_certain_dropout() {
        let cfg = FleetConfig {
            dropout: 1.0,
            ..Default::default()
        };
        let _ = Fleet::generate(4, &cfg);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn rejects_empty_fleet() {
        let _ = Fleet::generate(0, &FleetConfig::default());
    }
}
