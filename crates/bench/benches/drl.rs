//! DDPG agent costs: acting (policy inference + head) and one training
//! invocation (TD prioritization + batch updates) at Table 1 scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use feddrl_drl::buffer::Experience;
use feddrl_drl::config::DdpgConfig;
use feddrl_drl::ddpg::DdpgAgent;
use feddrl_nn::rng::Rng64;

fn filled_agent(k: usize, experiences: usize) -> DdpgAgent {
    let cfg = DdpgConfig::for_clients(k);
    let mut agent = DdpgAgent::new(cfg);
    let mut rng = Rng64::new(3);
    for _ in 0..experiences {
        let state: Vec<f32> = (0..3 * k).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let next: Vec<f32> = (0..3 * k).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let action = agent.act(&state, true);
        agent.remember(Experience {
            state,
            action,
            reward: rng.uniform(-2.0, 0.0),
            next_state: next,
        });
    }
    agent
}

fn bench_act(c: &mut Criterion) {
    let mut group = c.benchmark_group("ddpg_act");
    for k in [10usize, 50] {
        let mut agent = filled_agent(k, 4);
        let state = vec![0.1f32; 3 * k];
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| std::hint::black_box(agent.act(&state, true)))
        });
    }
    group.finish();
}

fn bench_train(c: &mut Criterion) {
    let mut group = c.benchmark_group("ddpg_train");
    group.sample_size(10);
    for buffer_size in [64usize, 512] {
        let mut agent = filled_agent(10, buffer_size);
        group.bench_with_input(
            BenchmarkId::from_parameter(buffer_size),
            &buffer_size,
            |b, _| b.iter(|| std::hint::black_box(agent.train())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_act, bench_train);
criterion_main!(benches);
