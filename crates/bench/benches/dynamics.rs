//! Criterion harness for the fleet-dynamics layer.
//!
//! `churn_advance/*` prices the seeded arrival/departure process against
//! the simulated horizon — the executors advance it at every round start
//! (and the buffered executor inside its drain loop), so it must stay
//! cheap even over long virtual spans. `diurnal_modulation/*` compares a
//! completion-time prediction with and without the availability cycle:
//! the per-dispatch cost of the sinusoidal modulation. `mask_derive/*`
//! measures structured-mask derivation against model size — paid once per
//! sub-model dispatch. `dynamic_deadline_round/*` runs a full
//! `DeadlineExecutor::execute` with churn, diurnal availability, and
//! structured dropout all on: the end-to-end dynamics overhead per round.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use feddrl_fl::client::ClientUpdate;
use feddrl_fl::executor::{
    DeadlineExecutor, Dispatch, HeteroConfig, LatePolicy, RoundExecutor, StructuredDropoutConfig,
};
use feddrl_nn::rng::Rng64;
use feddrl_nn::zoo::build_mlp;
use feddrl_sim::churn::ChurnProcess;
use feddrl_sim::device::{ChurnConfig, DiurnalConfig, Fleet, FleetConfig};

fn bench_churn_advance(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn_advance");
    let cfg = ChurnConfig {
        mean_arrival_gap_s: 30.0,
        mean_departure_gap_s: 40.0,
    };
    for horizon_s in [1e3, 1e5] {
        // ~horizon/gap events of each kind per iteration.
        let events =
            (horizon_s / cfg.mean_arrival_gap_s + horizon_s / cfg.mean_departure_gap_s) as u64;
        group.throughput(Throughput::Elements(events.max(1)));
        group.bench_with_input(
            BenchmarkId::new("advance_to", horizon_s as u64),
            &horizon_s,
            |b, &t| {
                b.iter(|| {
                    let mut churn = ChurnProcess::new(64, &cfg, 7);
                    let events = churn.advance_to(t);
                    std::hint::black_box((events.len(), churn.active_count()))
                })
            },
        );
    }
    group.finish();
}

fn bench_diurnal_modulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("diurnal_modulation");
    const N: usize = 1024;
    let diurnal = DiurnalConfig {
        period_s: 3600.0,
        dropout_amplitude: 0.4,
        latency_amplitude: 0.3,
    };
    let fleet = Fleet::generate(
        N,
        &FleetConfig {
            compute_skew: 4.0,
            bandwidth_skew: 2.0,
            dropout: 0.2,
            diurnal: Some(diurnal),
            ..Default::default()
        },
    );
    for (label, cycle) in [("static", None), ("diurnal", Some(diurnal))] {
        group.throughput(Throughput::Elements(N as u64));
        group.bench_function(BenchmarkId::new("completion", label), |b| {
            let mut now = 0.0f64;
            b.iter(|| {
                now += 17.0;
                let total: f64 = (0..N)
                    .map(|i| {
                        fleet
                            .profile(i)
                            .completion_time_at(1_000_000, 1.0, cycle.as_ref(), now)
                    })
                    .sum();
                std::hint::black_box(total)
            })
        });
    }
    group.finish();
}

fn bench_mask_derive(c: &mut Criterion) {
    let mut group = c.benchmark_group("mask_derive");
    for hidden in [64usize, 256] {
        let model = build_mlp(784, &[hidden], 10, &mut Rng64::new(3));
        let mut rng = Rng64::new(11);
        group.throughput(Throughput::Elements(model.param_count() as u64));
        group.bench_with_input(BenchmarkId::new("mlp", hidden), &hidden, |b, _| {
            b.iter(|| {
                let mask = feddrl_nn::mask::StructuredMask::derive(&model, 0.5, &mut rng);
                std::hint::black_box(mask.keep_fraction())
            })
        });
    }
    group.finish();
}

fn bench_dynamic_deadline_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic_deadline_round");
    for k in [10usize, 100] {
        let cfg = HeteroConfig {
            fleet: FleetConfig {
                compute_skew: 4.0,
                bandwidth_skew: 2.0,
                dropout: 0.1,
                diurnal: Some(DiurnalConfig {
                    period_s: 600.0,
                    dropout_amplitude: 0.4,
                    latency_amplitude: 0.3,
                }),
                churn: Some(ChurnConfig {
                    mean_arrival_gap_s: 90.0,
                    mean_departure_gap_s: 120.0,
                }),
                ..Default::default()
            },
            deadline_s: Some(60.0),
            late_policy: LatePolicy::Drop,
            structured_dropout: Some(StructuredDropoutConfig::default()),
            ..Default::default()
        };
        let mut ex = DeadlineExecutor::new(cfg, k, 100_000, k, 7);
        let selected: Vec<usize> = (0..k).collect();
        // Pre-built updates: the bench isolates the engine, not training.
        let updates: Vec<ClientUpdate> = (0..k).map(stub_update).collect();
        let train = |dispatches: &[Dispatch]| -> Vec<ClientUpdate> {
            dispatches
                .iter()
                .map(|d| updates[d.client_id].clone())
                .collect()
        };
        let mut round = 0usize;
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::new("execute", k), &k, |b, _| {
            b.iter(|| {
                let out = ex.execute(round, &selected, &train);
                round += 1;
                std::hint::black_box(out.hetero)
            })
        });
    }
    group.finish();
}

fn stub_update(client_id: usize) -> ClientUpdate {
    ClientUpdate {
        client_id,
        weights: vec![0.0; 64],
        n_samples: 100,
        loss_before: 1.0,
        loss_after: 0.5,
        staleness: 0,
        mask: None,
    }
}

criterion_group!(
    benches,
    bench_churn_advance,
    bench_diurnal_modulation,
    bench_mask_derive,
    bench_dynamic_deadline_round
);
criterion_main!(benches);
