//! Criterion harness for the heterogeneity engine's hot paths.
//!
//! `event_queue/*` measures the discrete-event core in isolation
//! (schedule + drain of n upload-completion events); `deadline_round/*`
//! measures a full `DeadlineExecutor::execute` over pre-trained updates —
//! the per-round overhead the engine adds on top of local training.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use feddrl_fl::client::ClientUpdate;
use feddrl_fl::executor::{DeadlineExecutor, HeteroConfig, LatePolicy, RoundExecutor};
use feddrl_nn::rng::Rng64;
use feddrl_sim::device::FleetConfig;
use feddrl_sim::event::{EventKind, EventQueue};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for n in [64usize, 1024, 16384] {
        let mut rng = Rng64::new(11);
        let times: Vec<f64> = (0..n).map(|_| rng.next_f64() * 1e4).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("schedule_drain", n), &n, |b, _| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.schedule(t, EventKind::UploadComplete { client_id: i });
                }
                let mut last = 0.0f64;
                while let Some(e) = q.pop() {
                    last = e.time_s;
                }
                std::hint::black_box(last)
            })
        });
    }
    group.finish();
}

fn bench_deadline_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("deadline_round");
    for k in [10usize, 100] {
        let cfg = HeteroConfig {
            fleet: FleetConfig {
                compute_skew: 4.0,
                bandwidth_skew: 2.0,
                dropout: 0.1,
                ..Default::default()
            },
            deadline_s: Some(60.0),
            late_policy: LatePolicy::CarryOver,
        };
        let mut ex = DeadlineExecutor::new(cfg, k, 100_000, k, 7);
        let selected: Vec<usize> = (0..k).collect();
        // Pre-built updates: the bench isolates the engine, not training.
        let updates: Vec<ClientUpdate> = (0..k)
            .map(|client_id| ClientUpdate {
                client_id,
                weights: vec![0.0; 64],
                n_samples: 100,
                loss_before: 1.0,
                loss_after: 0.5,
            })
            .collect();
        let train = |ids: &[usize]| -> Vec<ClientUpdate> {
            ids.iter().map(|&i| updates[i].clone()).collect()
        };
        let mut round = 0usize;
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::new("execute", k), &k, |b, _| {
            b.iter(|| {
                let out = ex.execute(round, &selected, &train);
                round += 1;
                std::hint::black_box(out.hetero)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_deadline_round);
criterion_main!(benches);
