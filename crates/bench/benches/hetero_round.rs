//! Criterion harness for the heterogeneity engine's hot paths.
//!
//! `event_queue/*` measures the discrete-event core in isolation
//! (schedule + drain of n upload-completion events); `deadline_round/*`
//! measures a full `DeadlineExecutor::execute` over pre-trained updates —
//! the per-round overhead the engine adds on top of local training;
//! `buffered_round/*` does the same for the asynchronous
//! `BufferedExecutor`, whose event queue persists across rounds (in-flight
//! bookkeeping plus the partial drain to a filled buffer).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use feddrl_fl::client::ClientUpdate;
use feddrl_fl::executor::{
    BufferedConfig, BufferedExecutor, DeadlineExecutor, Dispatch, HeteroConfig, LatePolicy,
    RoundExecutor, StalenessDiscount,
};
use feddrl_nn::rng::Rng64;
use feddrl_sim::device::FleetConfig;
use feddrl_sim::event::{EventKind, EventQueue};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for n in [64usize, 1024, 16384] {
        let mut rng = Rng64::new(11);
        let times: Vec<f64> = (0..n).map(|_| rng.next_f64() * 1e4).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("schedule_drain", n), &n, |b, _| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.schedule(
                        t,
                        EventKind::UploadComplete {
                            client_id: i,
                            version: i % 8,
                        },
                    );
                }
                let mut last = 0.0f64;
                while let Some(e) = q.pop() {
                    last = e.time_s;
                }
                std::hint::black_box(last)
            })
        });
    }
    group.finish();
}

fn bench_deadline_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("deadline_round");
    for k in [10usize, 100] {
        let cfg = HeteroConfig {
            fleet: FleetConfig {
                compute_skew: 4.0,
                bandwidth_skew: 2.0,
                dropout: 0.1,
                ..Default::default()
            },
            deadline_s: Some(60.0),
            late_policy: LatePolicy::CarryOver,
            staleness: StalenessDiscount::Polynomial { alpha: 1.0 },
            ..Default::default()
        };
        let mut ex = DeadlineExecutor::new(cfg, k, 100_000, k, 7);
        let selected: Vec<usize> = (0..k).collect();
        // Pre-built updates: the bench isolates the engine, not training.
        let updates: Vec<ClientUpdate> = (0..k).map(stub_update).collect();
        let train = |dispatches: &[Dispatch]| -> Vec<ClientUpdate> {
            dispatches
                .iter()
                .map(|d| updates[d.client_id].clone())
                .collect()
        };
        let mut round = 0usize;
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::new("execute", k), &k, |b, _| {
            b.iter(|| {
                let out = ex.execute(round, &selected, &train);
                round += 1;
                std::hint::black_box(out.hetero)
            })
        });
    }
    group.finish();
}

fn stub_update(client_id: usize) -> ClientUpdate {
    ClientUpdate {
        client_id,
        weights: vec![0.0; 64],
        n_samples: 100,
        loss_before: 1.0,
        loss_after: 0.5,
        staleness: 0,
        mask: None,
    }
}

fn bench_buffered_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffered_round");
    for k in [10usize, 100] {
        let cfg = BufferedConfig {
            fleet: FleetConfig {
                compute_skew: 4.0,
                bandwidth_skew: 2.0,
                dropout: 0.1,
                ..Default::default()
            },
            buffer_size: k / 2,
            staleness: StalenessDiscount::Polynomial { alpha: 0.5 },
            ..Default::default()
        };
        let mut ex = BufferedExecutor::new(cfg, k, 100_000, k, 7);
        let selected: Vec<usize> = (0..k).collect();
        let updates: Vec<ClientUpdate> = (0..k).map(stub_update).collect();
        let train = |dispatches: &[Dispatch]| -> Vec<ClientUpdate> {
            dispatches
                .iter()
                .map(|d| updates[d.client_id].clone())
                .collect()
        };
        let mut round = 0usize;
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::new("execute", k), &k, |b, _| {
            b.iter(|| {
                let out = ex.execute(round, &selected, &train);
                round += 1;
                std::hint::black_box(out.hetero)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_deadline_round,
    bench_buffered_round
);
criterion_main!(benches);
