//! Criterion version of Figure 9: server-side per-round costs.
//!
//! `drl_inference` measures the FedDRL impact-factor computation (policy
//! forward + Gaussian sampling + softmax) — the paper reports ~3 ms,
//! independent of the client model. `aggregation/*` measures the weighted
//! averaging for the paper's two model sizes plus the scaled MLP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use feddrl::config::FedDrlConfig;
use feddrl::strategy::FedDrl;
use feddrl_fl::client::ClientSummary;
use feddrl_fl::strategy::{normalize_factors, weighted_average, Strategy};
use feddrl_nn::rng::Rng64;
use feddrl_nn::zoo::ModelSpec;

fn summaries(k: usize) -> Vec<ClientSummary> {
    (0..k)
        .map(|i| ClientSummary {
            client_id: i,
            n_samples: 100 + i,
            loss_before: 1.0 + 0.01 * i as f32,
            loss_after: 0.5,
        })
        .collect()
}

fn bench_drl_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_drl_inference");
    for k in [10usize, 20, 50] {
        let cfg = FedDrlConfig {
            online_training: false,
            ..Default::default()
        };
        let mut strategy = FedDrl::new(k, &cfg);
        let sums = summaries(k);
        let mut round = 0;
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let alpha = strategy.impact_factors(round, &sums);
                round += 1;
                std::hint::black_box(alpha)
            })
        });
    }
    group.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_aggregation");
    group.sample_size(10);
    let k = 10;
    let sizes = [
        (
            "mlp",
            ModelSpec::Mlp {
                in_dim: 64,
                hidden: vec![128],
                out_dim: 100,
            }
            .build(1)
            .param_count(),
        ),
        (
            "cnn_mnist",
            ModelSpec::CnnMnist { num_classes: 10 }
                .build(1)
                .param_count(),
        ),
        (
            "vgg11",
            ModelSpec::Vgg11 { num_classes: 100 }.build(1).param_count(),
        ),
    ];
    for (name, params) in sizes {
        let mut rng = Rng64::new(7);
        let models: Vec<Vec<f32>> = (0..k)
            .map(|_| {
                let mut w = vec![0.0f32; params];
                rng.fill_uniform(&mut w, -1.0, 1.0);
                w
            })
            .collect();
        let alphas = normalize_factors(&vec![1.0f32; k]);
        group.throughput(Throughput::Elements(params as u64));
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let refs: Vec<&[f32]> = models.iter().map(|m| m.as_slice()).collect();
                std::hint::black_box(weighted_average(&refs, &alphas))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_drl_inference, bench_aggregation);
criterion_main!(benches);
