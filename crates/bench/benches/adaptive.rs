//! Criterion harness for the server-optimizer layer.
//!
//! `server_opt/*` prices one `ServerOpt::apply` call per optimizer over
//! model-sized parameter vectors — the per-round cost an adaptive server
//! step adds on top of plain replacement (which must stay a move, not a
//! loop). The adaptive optimizers run one fused pass over the
//! parameters (moment update + step), so their cost is a small constant
//! factor over a dense weighted average of the same width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use feddrl_fl::server_opt::{AdaptiveParams, ServerOptConfig};
use feddrl_nn::rng::Rng64;

fn bench_server_opt(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_opt");
    for dim in [10_000usize, 100_000] {
        let mut rng = Rng64::new(0xADA);
        let global: Vec<f32> = (0..dim).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let aggregate: Vec<f32> = global.iter().map(|&w| w + rng.uniform(-0.1, 0.1)).collect();
        group.throughput(Throughput::Elements(dim as u64));
        for cfg in [
            ServerOptConfig::Plain,
            ServerOptConfig::FedAdam(AdaptiveParams::default()),
            ServerOptConfig::FedYogi(AdaptiveParams::default()),
            ServerOptConfig::FedAMSGrad(AdaptiveParams::default()),
        ] {
            group.bench_with_input(BenchmarkId::new(cfg.name(), dim), &dim, |b, _| {
                // State building stays outside the timed loop; the timed
                // body is the steady-state per-round apply.
                let mut opt = cfg.build();
                opt.apply(&global, aggregate.clone());
                b.iter(|| std::hint::black_box(opt.apply(&global, aggregate.clone())))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_server_opt);
criterion_main!(benches);
