//! Criterion harness for the `feddrl_net` transport layer.
//!
//! `codec/*` prices the binary wire codec on a full-model `Update`
//! payload — encode and decode are on the per-update critical path of
//! every networked round, so both must stay memcpy-bound. `frame/*`
//! pushes the same frame through a real loopback TCP socket pair
//! (`write_frame` one end, `read_frame` the other): the end-to-end
//! serialize → syscall → deserialize cost of one message. `registry/*`
//! processes a heartbeat burst plus a TTL sweep for 10^4 clients — the
//! server does this bookkeeping on every message of every connection, so
//! it must stay far below frame costs even at fleet scale.

use std::io::Read;
use std::net::{TcpListener, TcpStream};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use feddrl_net::registry::Registry;
use feddrl_net::wire::{read_frame, write_frame, Message, UpdateMsg};

/// A full-model update for an MLP-784-64-10 (the MNIST-like client
/// model): the realistic worst-case frame of a federated round.
fn full_model_update(weights: usize) -> Message {
    Message::Update(UpdateMsg {
        client_id: 7,
        round: 42,
        model_version: 41,
        staleness: 1,
        n_samples: 600,
        loss_before: 1.25,
        loss_after: 0.75,
        weights: (0..weights).map(|i| (i as f32).sin()).collect(),
    })
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    for weights in [50_890usize, 203_530] {
        let msg = full_model_update(weights);
        let encoded = msg.encode();
        group.throughput(Throughput::Bytes(encoded.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode", weights), &weights, |b, _| {
            b.iter(|| std::hint::black_box(msg.encode().len()))
        });
        group.bench_with_input(BenchmarkId::new("decode", weights), &weights, |b, _| {
            b.iter(|| {
                let (decoded, used) = Message::decode(&encoded).expect("valid frame");
                std::hint::black_box((decoded.kind(), used))
            })
        });
    }
    group.finish();
}

fn bench_frame_loopback(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame");
    // A connected loopback pair: the bench thread holds both ends, so a
    // written frame is immediately readable on the peer (the payloads
    // stay within the kernel socket buffer).
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let mut tx = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
    let (mut rx, _) = listener.accept().expect("accept");
    tx.set_nodelay(true).expect("nodelay");
    for weights in [0usize, 2_048] {
        let msg = if weights == 0 {
            Message::Heartbeat { client_id: 7 }
        } else {
            full_model_update(weights)
        };
        let bytes = msg.encode().len();
        group.throughput(Throughput::Bytes(bytes as u64));
        group.bench_with_input(
            BenchmarkId::new("loopback_round_trip", bytes),
            &bytes,
            |b, _| {
                b.iter(|| {
                    write_frame(&mut tx, &msg).expect("write frame");
                    let got = read_frame(&mut rx).expect("read frame").expect("one frame");
                    std::hint::black_box(got.kind())
                })
            },
        );
    }
    // Drain anything left so the sockets close cleanly.
    let _ = rx.set_nonblocking(true);
    let mut sink = Vec::new();
    let _ = rx.read_to_end(&mut sink);
    group.finish();
}

fn bench_registry(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry");
    const N: usize = 10_000;
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function(BenchmarkId::new("heartbeat_burst", N), |b| {
        let mut registry = Registry::new(1_000);
        for id in 0..N {
            registry.touch(id, 0);
        }
        let mut now = 0u64;
        b.iter(|| {
            now += 10;
            for id in 0..N {
                registry.touch(id, now);
            }
            std::hint::black_box(registry.len())
        })
    });
    group.bench_function(BenchmarkId::new("sweep_live", N), |b| {
        let mut registry = Registry::new(u64::MAX >> 1);
        for id in 0..N {
            registry.touch(id, 0);
        }
        let mut now = 0u64;
        b.iter(|| {
            now += 10;
            std::hint::black_box(registry.sweep(now).len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_codec, bench_frame_loopback, bench_registry);
criterion_main!(benches);
