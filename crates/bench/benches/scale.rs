//! Criterion harness for the million-client scale machinery.
//!
//! `scale/round` prices one full buffered round (selection → parallel
//! dispatch → event queue → aggregation, stub training) against fleet
//! size: with the lazy `FleetView`, sparse `ReliabilityTable` and the
//! O(log active) event queue, per-round cost must track the dispatch
//! width, not N — the group is the rounds/sec gate behind the `exp_scale`
//! sweep. `scale/fleet_view` prices lazy executor construction (O(1) in
//! N) and single-profile derivation; `scale/event_queue` prices a
//! push/pop cycle at a large active-entry count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use feddrl_fl::client::ClientUpdate;
use feddrl_fl::executor::{BufferedConfig, BufferedExecutor, Dispatch, RoundExecutor};
use feddrl_fl::selection::{Selection, SelectionContext};
use feddrl_nn::rng::Rng64;
use feddrl_sim::device::{FleetConfig, FleetView};
use feddrl_sim::event::{EventKind, EventQueue};

const K: usize = 64;
const BUFFER: usize = 16;
const CANDIDATES: usize = 256;

fn stub_train(dispatches: &[Dispatch]) -> Vec<ClientUpdate> {
    dispatches
        .iter()
        .map(|&Dispatch { client_id, .. }| ClientUpdate {
            client_id,
            weights: vec![0.0; 4],
            n_samples: 10,
            loss_before: 1.0,
            loss_after: 0.5,
            staleness: 0,
            mask: None,
        })
        .collect()
}

fn bench_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale");
    for n in [10_000usize, 1_000_000] {
        let cfg = BufferedConfig {
            fleet: FleetConfig {
                compute_skew: 4.0,
                dropout: 0.1,
                seed: 0x5CA1E,
                ..Default::default()
            },
            buffer_size: BUFFER,
            ..Default::default()
        };
        let mut ex = BufferedExecutor::new(cfg, n, 1_000, K, 7);
        let mut policy = Selection::StalenessBalanced {
            candidates: CANDIDATES,
        }
        .build();
        let known_loss: Vec<Option<f32>> = vec![None; n];
        let master = Rng64::new(21);
        let mut round = 0usize;
        group.throughput(Throughput::Elements(K as u64));
        group.bench_function(BenchmarkId::new("round", n), |b| {
            b.iter(|| {
                let mut rng = master.derive(round as u64);
                let in_flight = RoundExecutor::in_flight_clients(&ex);
                let selected = {
                    let ctx = SelectionContext {
                        round,
                        n_clients: n,
                        participants: K,
                        known_loss: &known_loss,
                        participation: &[],
                        fleet: RoundExecutor::fleet(&ex),
                        upload_bytes: RoundExecutor::upload_bytes(&ex),
                        deadline_s: RoundExecutor::deadline_s(&ex),
                        in_flight: &in_flight,
                        reliability: RoundExecutor::reliability(&ex),
                        departed: &RoundExecutor::departed_clients(&ex),
                    };
                    policy.select(&ctx, &mut rng)
                };
                let out = ex.execute(round, &selected, &stub_train);
                round += 1;
                std::hint::black_box(out.updates.len())
            })
        });
    }
    group.finish();
}

fn bench_fleet_view(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale");
    let cfg = FleetConfig {
        compute_skew: 4.0,
        bandwidth_skew: 2.0,
        dropout: 0.1,
        ..Default::default()
    };
    for n in [10_000usize, 1_000_000] {
        group.bench_with_input(BenchmarkId::new("fleet_view_new", n), &n, |b, &n| {
            b.iter(|| std::hint::black_box(FleetView::new(n, &cfg)))
        });
    }
    let view = FleetView::new(1_000_000, &cfg);
    let mut i = 0usize;
    group.bench_function("fleet_view_profile", |b| {
        b.iter(|| {
            i = (i + 7919) % view.len();
            std::hint::black_box(view.profile(i))
        })
    });
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale");
    const ACTIVE: usize = 100_000;
    let mut q = EventQueue::with_capacity(ACTIVE + 1);
    for i in 0..ACTIVE {
        q.schedule(
            (i % 997) as f64,
            EventKind::UploadComplete {
                client_id: i,
                version: 0,
            },
        );
    }
    let mut t = 0.0f64;
    group.bench_function("event_queue_cycle", |b| {
        b.iter(|| {
            let e = q.pop().expect("queue is kept full");
            t += 0.25;
            q.schedule(e.time_s + t.rem_euclid(997.0), e.kind);
            std::hint::black_box(e.time_s)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_round, bench_fleet_view, bench_event_queue);
criterion_main!(benches);
