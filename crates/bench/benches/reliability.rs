//! Criterion harness for the reliability model and the async-aware
//! selection policies.
//!
//! `fleet_generate/*` prices the per-device reliability draw (three
//! log-uniform exponents per profile) against fleet size — generation sits
//! on every executor construction, so it must stay linear and cheap.
//! `selection/*` measures one `select` call per policy over a large
//! candidate pool with full telemetry visible: the per-round cost a
//! smarter policy adds on top of uniform sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use feddrl_fl::executor::{ClientReliability, ReliabilityTable};
use feddrl_fl::selection::{Selection, SelectionContext};
use feddrl_nn::rng::Rng64;
use feddrl_sim::device::{DropoutCorrelation, Fleet, FleetConfig, FleetView, ReliabilityConfig};

fn bench_fleet_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_generate");
    for n in [100usize, 10_000] {
        let cfg = FleetConfig {
            compute_skew: 4.0,
            bandwidth_skew: 2.0,
            dropout: 0.2,
            reliability: ReliabilityConfig {
                dropout_skew: 3.0,
                correlation: DropoutCorrelation::SpeedCorrelated { strength: 0.8 },
            },
            ..Default::default()
        };
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("speed_correlated", n), &n, |b, &n| {
            b.iter(|| std::hint::black_box(Fleet::generate(n, &cfg)))
        });
    }
    group.finish();
}

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    const N: usize = 2048;
    const K: usize = 64;
    const D: usize = 256;

    let fleet = FleetView::new(
        N,
        &FleetConfig {
            compute_skew: 4.0,
            dropout: 0.2,
            reliability: ReliabilityConfig {
                dropout_skew: 3.0,
                correlation: DropoutCorrelation::SpeedCorrelated { strength: 1.0 },
            },
            ..Default::default()
        },
    );
    let mut rng = Rng64::new(17);
    let known_loss: Vec<Option<f32>> = (0..N)
        .map(|_| rng.chance(0.8).then(|| rng.uniform(0.1, 3.0)))
        .collect();
    let participation: Vec<usize> = (0..N).map(|_| rng.below(50)).collect();
    // Sparse telemetry, as the executors produce it: entries only for
    // clients the server has actually dispatched (here ~half the fleet).
    let reliability: ReliabilityTable = (0..N)
        .filter_map(|i| {
            if !rng.chance(0.5) {
                return None;
            }
            let dropouts = rng.below(10);
            let dispatches = rng.below(40);
            Some((
                i,
                ClientReliability {
                    dropouts,
                    dispatches,
                    aggregated: dispatches,
                    staleness_sum: rng.below(5) * dispatches,
                },
            ))
        })
        .collect();
    let in_flight = rng.sample_indices(N, N / 4);

    for (label, selection) in [
        ("uniform", Selection::Uniform),
        (
            "power_of_choice",
            Selection::PowerOfChoice { candidates: D },
        ),
        (
            "bandwidth_aware",
            Selection::BandwidthAware { candidates: D },
        ),
        (
            "reliability_aware",
            Selection::ReliabilityAware { candidates: D },
        ),
        (
            "staleness_balanced",
            Selection::StalenessBalanced { candidates: D },
        ),
    ] {
        let mut policy = selection.build();
        let mut round = 0usize;
        group.throughput(Throughput::Elements(K as u64));
        group.bench_function(BenchmarkId::new("select", label), |b| {
            b.iter(|| {
                let ctx = SelectionContext {
                    round,
                    n_clients: N,
                    participants: K,
                    known_loss: &known_loss,
                    participation: &participation,
                    fleet: Some(&fleet),
                    upload_bytes: 1_000_000,
                    deadline_s: None,
                    in_flight: &in_flight,
                    reliability: Some(&reliability),
                    departed: &[],
                };
                let picked = policy.select(&ctx, &mut Rng64::new(7).derive(round as u64));
                round += 1;
                std::hint::black_box(picked)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fleet_generate, bench_selection);
criterion_main!(benches);
