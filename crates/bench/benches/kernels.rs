//! Micro-benchmarks of the numeric kernels underpinning the simulation:
//! matmul (the training hot loop), row softmax, and the client local
//! round itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use feddrl_data::synth::SynthSpec;
use feddrl_fl::client::{run_local_round, LocalTrainConfig};
use feddrl_nn::rng::Rng64;
use feddrl_nn::tensor::Tensor;
use feddrl_nn::zoo::ModelSpec;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [64usize, 128, 256] {
        let mut rng = Rng64::new(1);
        let a = Tensor::randn(&[n, n], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[n, n], 0.0, 1.0, &mut rng);
        group.throughput(Throughput::Elements((n * n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul(&b)))
        });
    }
    group.finish();
}

fn bench_softmax_rows(c: &mut Criterion) {
    let mut rng = Rng64::new(2);
    let x = Tensor::randn(&[256, 100], 0.0, 3.0, &mut rng);
    c.bench_function("softmax_rows_256x100", |b| {
        b.iter(|| std::hint::black_box(x.softmax_rows()))
    });
}

fn bench_client_round(c: &mut Criterion) {
    let (train, _) = SynthSpec {
        train_size: 800,
        test_size: 100,
        ..SynthSpec::mnist_like()
    }
    .generate(3);
    let spec = ModelSpec::Mlp {
        in_dim: train.feature_dim(),
        hidden: vec![64],
        out_dim: train.num_classes(),
    };
    let model = spec.build(1);
    let indices: Vec<usize> = (0..400).collect();
    let cfg = LocalTrainConfig::default();
    let mut group = c.benchmark_group("client_local_round");
    group.sample_size(10);
    group.bench_function("E5_b10_400samples", |b| {
        b.iter(|| {
            let mut rng = Rng64::new(9);
            std::hint::black_box(run_local_round(
                model.clone(),
                &train,
                &indices,
                0,
                &cfg,
                &mut rng,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_softmax_rows,
    bench_client_round
);
criterion_main!(benches);
