//! Partitioner throughput: how fast each non-IID scheme splits a
//! 100-client federation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use feddrl_data::partition::PartitionMethod;
use feddrl_data::synth::SynthSpec;
use feddrl_nn::rng::Rng64;

fn bench_partitioners(c: &mut Criterion) {
    let (train, _) = SynthSpec::cifar100_like().generate(11);
    let mut group = c.benchmark_group("partition_100_clients");
    let methods = [
        ("IID", PartitionMethod::Iid),
        ("PA", PartitionMethod::pa_cifar100()),
        ("CE", PartitionMethod::ce_cifar100(0.6)),
        ("CN", PartitionMethod::cn_cifar100(0.6)),
        ("Equal", PartitionMethod::shards_equal()),
        ("Non-equal", PartitionMethod::shards_non_equal()),
    ];
    for (name, method) in methods {
        group.bench_with_input(BenchmarkId::from_parameter(name), &method, |b, m| {
            b.iter(|| {
                let mut rng = Rng64::new(5);
                std::hint::black_box(m.partition(&train, 100, &mut rng).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
