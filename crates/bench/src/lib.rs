//! # feddrl-bench — experiment harness
//!
//! Shared machinery for the binaries that regenerate every table and
//! figure of the FedDRL paper (see DESIGN.md §5 for the experiment index).
//! Each binary accepts `--quick` (CI-sized), the default scaled profile,
//! or `--full` (paper-scale parameters) plus overrides like `--rounds`.

#![warn(missing_docs)]

pub mod stage_timing;

use feddrl::prelude::*;
use std::io::Write;
use std::path::PathBuf;

/// Experiment scale profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale smoke profile.
    Quick,
    /// Minutes-scale default used for EXPERIMENTS.md.
    Default,
    /// Paper-scale parameters (hours on CPU).
    Full,
}

impl Scale {
    /// Communication rounds for federated runs.
    pub fn rounds(self) -> usize {
        match self {
            Scale::Quick => 15,
            Scale::Default => 60,
            Scale::Full => 1000,
        }
    }

    /// SingleSet epochs.
    pub fn singleset_epochs(self) -> usize {
        match self {
            Scale::Quick => 10,
            Scale::Default => 40,
            Scale::Full => 120,
        }
    }

    /// Hidden width of the DDPG networks (Table 1 uses 256; the quick
    /// profile shrinks it to keep CI fast).
    pub fn drl_hidden(self) -> usize {
        match self {
            Scale::Quick => 64,
            Scale::Default => 256,
            Scale::Full => 256,
        }
    }
}

/// Parsed command-line options shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Scale profile.
    pub scale: Scale,
    /// Override for the number of rounds.
    pub rounds: Option<usize>,
    /// Master seed.
    pub seed: u64,
    /// Output directory for CSV/JSON artifacts.
    pub out_dir: PathBuf,
    /// Spawn real worker *processes* (not threads) where the binary
    /// supports it (`exp_net`): exercises discovery, heartbeat TTLs and
    /// mid-run process death over loopback.
    pub processes: bool,
}

impl ExpOptions {
    /// Parse from `std::env::args` (skipping the binary name).
    pub fn from_args() -> Self {
        let mut opts = Self {
            scale: Scale::Default,
            rounds: None,
            seed: 2022,
            out_dir: PathBuf::from("results"),
            processes: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => opts.scale = Scale::Quick,
                "--full" => opts.scale = Scale::Full,
                "--processes" => opts.processes = true,
                "--rounds" => {
                    let v = args.next().expect("--rounds needs a value");
                    opts.rounds = Some(v.parse().expect("--rounds must be an integer"));
                }
                "--seed" => {
                    let v = args.next().expect("--seed needs a value");
                    opts.seed = v.parse().expect("--seed must be an integer");
                }
                "--out" => {
                    opts.out_dir = PathBuf::from(args.next().expect("--out needs a value"));
                }
                other => panic!(
                    "unknown argument: {other} (try --quick/--full/--rounds N/--seed N/--out DIR/\
                     --processes)"
                ),
            }
        }
        opts
    }

    /// Rounds to run (override or scale default).
    pub fn rounds(&self) -> usize {
        self.rounds.unwrap_or_else(|| self.scale.rounds())
    }

    /// Ensure the output directory exists and return `out_dir/name`.
    pub fn out_path(&self, name: &str) -> PathBuf {
        std::fs::create_dir_all(&self.out_dir).expect("create results dir");
        self.out_dir.join(name)
    }
}

/// The three federated datasets of the paper (§4.1.1), in their synthetic
/// stand-in form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// MNIST stand-in.
    MnistLike,
    /// Fashion-MNIST stand-in.
    FashionLike,
    /// CIFAR-100 stand-in.
    Cifar100Like,
}

impl DatasetKind {
    /// All three datasets in paper order.
    pub fn all() -> [DatasetKind; 3] {
        [
            DatasetKind::Cifar100Like,
            DatasetKind::FashionLike,
            DatasetKind::MnistLike,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::MnistLike => "mnist-like",
            DatasetKind::FashionLike => "fashion-like",
            DatasetKind::Cifar100Like => "cifar100-like",
        }
    }

    /// Synthetic spec (the full-scale profile enlarges sample counts
    /// toward the real datasets' sizes).
    pub fn synth_spec(self, scale: Scale) -> SynthSpec {
        let mut spec = match self {
            DatasetKind::MnistLike => SynthSpec::mnist_like(),
            DatasetKind::FashionLike => SynthSpec::fashion_like(),
            DatasetKind::Cifar100Like => SynthSpec::cifar100_like(),
        };
        match scale {
            Scale::Quick => {
                spec.train_size /= 2;
                spec.test_size /= 2;
            }
            Scale::Default => {}
            Scale::Full => {
                spec.train_size *= 4;
                spec.test_size *= 4;
            }
        }
        spec
    }

    /// Client model for this dataset (MLP profiles; see DESIGN.md §4 for
    /// why the default profile does not train the CNN/VGG-11 end-to-end).
    pub fn model_spec(self, train: &Dataset) -> ModelSpec {
        let hidden = match self {
            DatasetKind::MnistLike | DatasetKind::FashionLike => vec![64],
            DatasetKind::Cifar100Like => vec![128],
        };
        ModelSpec::Mlp {
            in_dim: train.feature_dim(),
            hidden,
            out_dim: train.num_classes(),
        }
    }

    /// Partition method for a paper code ("PA", "CE", "CN", "Equal",
    /// "Non-equal"), sized for this dataset's label space.
    pub fn partition_method(self, code: &str, delta: f64) -> PartitionMethod {
        let many_labels = matches!(self, DatasetKind::Cifar100Like);
        match code {
            "PA" => {
                if many_labels {
                    PartitionMethod::pa_cifar100()
                } else {
                    PartitionMethod::pa()
                }
            }
            "CE" => {
                if many_labels {
                    PartitionMethod::ce_cifar100(delta)
                } else {
                    PartitionMethod::ce(delta)
                }
            }
            "CN" => {
                if many_labels {
                    PartitionMethod::cn_cifar100(delta)
                } else {
                    PartitionMethod::cn(delta)
                }
            }
            "Equal" => PartitionMethod::shards_equal(),
            "Non-equal" => PartitionMethod::shards_non_equal(),
            "IID" => PartitionMethod::Iid,
            other => panic!("unknown partition code {other}"),
        }
    }
}

/// The compared methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodKind {
    /// Centralized reference.
    SingleSet,
    /// FedAvg baseline.
    FedAvg,
    /// FedProx baseline (μ = 0.01).
    FedProx,
    /// The paper's contribution.
    FedDrl,
}

impl MethodKind {
    /// The Table 3/4 method column, in paper order.
    pub fn all() -> [MethodKind; 4] {
        [
            MethodKind::SingleSet,
            MethodKind::FedAvg,
            MethodKind::FedProx,
            MethodKind::FedDrl,
        ]
    }

    /// Federated methods only.
    pub fn federated() -> [MethodKind; 3] {
        [MethodKind::FedAvg, MethodKind::FedProx, MethodKind::FedDrl]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            MethodKind::SingleSet => "SingleSet",
            MethodKind::FedAvg => "FedAvg",
            MethodKind::FedProx => "FedProx",
            MethodKind::FedDrl => "FedDRL",
        }
    }
}

/// A fully-specified federated experiment.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Dataset family.
    pub dataset: DatasetKind,
    /// Partition code ("PA", "CE", …).
    pub partition_code: String,
    /// Cluster-skew level δ where applicable.
    pub delta: f64,
    /// Total clients `N`.
    pub n_clients: usize,
    /// Participants per round `K`.
    pub participants: usize,
    /// Communication rounds.
    pub rounds: usize,
    /// Master seed.
    pub seed: u64,
    /// DDPG hidden width (scale-dependent).
    pub drl_hidden: usize,
}

impl ExperimentSpec {
    /// Build from options with paper defaults (δ = 0.6, K = 10).
    pub fn new(
        dataset: DatasetKind,
        partition_code: &str,
        n_clients: usize,
        opts: &ExpOptions,
    ) -> Self {
        Self {
            dataset,
            partition_code: partition_code.to_string(),
            delta: 0.6,
            n_clients,
            participants: 10.min(n_clients),
            rounds: opts.rounds(),
            seed: opts.seed,
            drl_hidden: opts.scale.drl_hidden(),
        }
    }

    /// Generate data, partition, and model for this experiment.
    pub fn materialize(&self, scale: Scale) -> (Dataset, Dataset, Partition, ModelSpec) {
        let (train, test) = self.dataset.synth_spec(scale).generate(self.seed);
        let method = self
            .dataset
            .partition_method(&self.partition_code, self.delta);
        let partition = method
            .partition(&train, self.n_clients, &mut Rng64::new(self.seed ^ 0x9A27))
            .unwrap_or_else(|e| panic!("partition {} failed: {e}", self.partition_code));
        let model = self.dataset.model_spec(&train);
        (train, test, partition, model)
    }

    /// Federated loop configuration.
    pub fn fl_config(&self) -> FlConfig {
        FlConfig {
            rounds: self.rounds,
            participants: self.participants,
            local: LocalTrainConfig {
                epochs: 5,
                batch_size: 10,
                lr: 0.01,
                ..Default::default()
            },
            eval_batch: 512,
            seed: self.seed,
            log_every: 0,
            selection: Selection::Uniform,
            executor: ExecutorConfig::Ideal,
            server_opt: ServerOptConfig::Plain,
        }
    }

    /// FedDRL run configuration.
    ///
    /// The agent's learning-speed knobs are adapted to the scaled horizon
    /// (tens of rounds instead of the paper's 1000): more replay updates
    /// per round, a faster policy/value learning rate, and annealed
    /// exploration so the late rounds exploit what was learned. Network
    /// topology, buffer, gamma and tau stay at Table 1 values.
    pub fn feddrl_config(&self) -> FedDrlRunConfig {
        let mut cfg = FedDrlRunConfig::default();
        cfg.feddrl.ddpg.hidden = self.drl_hidden;
        cfg.feddrl.ddpg.seed = self.seed ^ 0xD41;
        cfg.feddrl.seed = self.seed ^ 0xA1;
        if self.rounds < 500 {
            cfg.feddrl.ddpg.updates_per_round = 8;
            cfg.feddrl.ddpg.policy_lr = 1e-3;
            cfg.feddrl.ddpg.value_lr = 5e-3;
            cfg.feddrl.ddpg.warmup = 8;
            cfg.feddrl.ddpg.exploration_noise = 0.2;
            // Anneal to ~10% noise by the final third of the run.
            cfg.feddrl.ddpg.exploration_decay =
                (0.1f32).powf(1.0 / (0.67 * self.rounds as f32).max(1.0));
        }
        cfg
    }

    /// Run one method on this experiment.
    pub fn run_method(&self, method: MethodKind, scale: Scale) -> RunHistory {
        let (train, test, partition, model) = self.materialize(scale);
        let name = self.dataset.name();
        let federated = |strategy: &mut dyn Strategy| -> RunHistory {
            SessionBuilder::new(&model, &train, &test, &partition, strategy)
                .config(&self.fl_config())
                .dataset_name(name)
                .build()
                .unwrap_or_else(|e| panic!("invalid experiment config: {e}"))
                .run()
                .unwrap_or_else(|e| panic!("federated run failed: {e}"))
        };
        match method {
            MethodKind::SingleSet => {
                let cfg = SingleSetConfig {
                    epochs: scale.singleset_epochs(),
                    seed: self.seed,
                    ..Default::default()
                };
                let mut history = run_singleset(&model, &train, &test, &cfg);
                history.dataset = name.to_string();
                history
            }
            MethodKind::FedAvg => federated(&mut FedAvg),
            MethodKind::FedProx => federated(&mut FedProx::default()),
            MethodKind::FedDrl => {
                try_run_feddrl(
                    &model,
                    &train,
                    &test,
                    &partition,
                    &self.fl_config(),
                    &self.feddrl_config(),
                    name,
                )
                .unwrap_or_else(|e| panic!("FedDRL run failed: {e}"))
                .history
            }
        }
    }
}

/// Stops a run once its cumulative simulated wall-clock crosses a budget
/// — the equal-virtual-time harness asynchronous sweep cells are compared
/// under (`exp_async`, `exp_reliability`): every cell may aggregate as
/// often as it likes but gets the same amount of simulated time. The
/// session maintains the cumulative clock in its
/// [`RoundSignals`], so the observer is
/// a pure threshold check.
pub struct SimTimeBudget {
    /// Budget in simulated seconds.
    pub budget_s: f64,
}

impl RoundObserver for SimTimeBudget {
    fn on_round_end(&mut self, signals: &RoundSignals<'_>) -> RoundControl {
        if signals.sim_time_s >= self.budget_s {
            RoundControl::Stop
        } else {
            RoundControl::Continue
        }
    }
}

/// Render an aligned plain-text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(widths.iter()) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    sep(&mut out);
    for row in rows {
        out.push('|');
        for (cell, w) in row.iter().zip(widths.iter()) {
            out.push_str(&format!(" {cell:<w$} |"));
        }
        out.push('\n');
    }
    sep(&mut out);
    out
}

/// Write `content` to `path`, creating parent dirs.
pub fn write_artifact(path: &std::path::Path, content: &str) {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).expect("create artifact dir");
    }
    let mut f = std::fs::File::create(path).expect("create artifact");
    f.write_all(content.as_bytes()).expect("write artifact");
    eprintln!("wrote {}", path.display());
}

/// The paper's improvement metrics: impr.(a) vs the best baseline and
/// impr.(b) vs the worst baseline, in relative percent (Table 3 caption).
pub fn improvements(feddrl: f32, baselines: &[f32]) -> (f32, f32) {
    assert!(!baselines.is_empty());
    let best = baselines.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let worst = baselines.iter().copied().fold(f32::INFINITY, f32::min);
    (
        (feddrl - best) / best * 100.0,
        (feddrl - worst) / worst * 100.0,
    )
}

/// Load a previously-saved table3-style history for `(exp, method)` if one
/// exists with at least `exp.rounds` records (truncating to the requested
/// horizon), otherwise run the method fresh. Lets the figure binaries
/// reuse `exp_table3`'s artifacts instead of re-running 30+ federated
/// trainings.
pub fn load_or_run(
    opts: &ExpOptions,
    exp: &ExperimentSpec,
    method: MethodKind,
    scale: Scale,
) -> RunHistory {
    let fname = format!(
        "table3_{}_{}_{}_{}.json",
        exp.dataset.name(),
        exp.partition_code,
        exp.n_clients,
        method.name()
    );
    let path = opts.out_dir.join(&fname);
    if path.exists() {
        if let Ok(mut h) = RunHistory::load_json(&path) {
            if h.records.len() >= exp.rounds
                && h.participants == exp.participants
                && h.seed == exp.seed
            {
                h.records.truncate(exp.rounds);
                eprintln!("reusing {}", path.display());
                return h;
            }
        }
    }
    exp.run_method(method, scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvements_match_definition() {
        let (a, b) = improvements(0.72, &[0.70, 0.68]);
        assert!((a - (0.72 - 0.70) / 0.70 * 100.0).abs() < 1e-4);
        assert!((b - (0.72 - 0.68) / 0.68 * 100.0).abs() < 1e-4);
    }

    #[test]
    fn render_table_aligns_columns() {
        let t = render_table(
            &["method", "acc"],
            &[
                vec!["FedAvg".into(), "0.61".into()],
                vec!["FedDRL".into(), "0.645".into()],
            ],
        );
        assert!(t.contains("| method | acc   |"));
        assert!(t.lines().count() >= 6);
    }

    #[test]
    fn partition_methods_resolve_for_all_codes() {
        for ds in DatasetKind::all() {
            for code in ["PA", "CE", "CN", "Equal", "Non-equal", "IID"] {
                let _ = ds.partition_method(code, 0.6);
            }
        }
    }

    #[test]
    fn quick_experiment_end_to_end() {
        let opts = ExpOptions {
            scale: Scale::Quick,
            rounds: Some(2),
            seed: 7,
            out_dir: std::env::temp_dir().join("feddrl_bench_test"),
            processes: false,
        };
        let exp = ExperimentSpec::new(DatasetKind::MnistLike, "CE", 6, &opts);
        let h = exp.run_method(MethodKind::FedAvg, Scale::Quick);
        assert_eq!(h.records.len(), 2);
        assert_eq!(h.dataset, "mnist-like");
        assert_eq!(h.partition, "CE");
    }
}
