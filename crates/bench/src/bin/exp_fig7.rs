//! Figure 7 — testing accuracy vs the number of participating clients
//! K ∈ {10, 20, 30, 40, 50} (CIFAR-100-like, N = 100 clients, CE).

use feddrl_bench::{
    render_table, write_artifact, DatasetKind, ExpOptions, ExperimentSpec, MethodKind, Scale,
};

fn main() {
    let opts = ExpOptions::from_args();
    let ks: &[usize] = match opts.scale {
        Scale::Quick => &[10, 30],
        _ => &[10, 20, 30, 40, 50],
    };
    let mut rows = Vec::new();
    let mut csv = String::from("k,FedAvg,FedProx,FedDRL\n");
    for &k in ks {
        let mut exp = ExperimentSpec::new(DatasetKind::Cifar100Like, "CE", 100, &opts);
        exp.participants = k;
        let mut row = vec![k.to_string()];
        let mut accs = Vec::new();
        for method in MethodKind::federated() {
            let history = exp.run_method(method, opts.scale);
            let best = history.best().best_accuracy * 100.0;
            row.push(format!("{best:.2}"));
            accs.push(best);
        }
        csv.push_str(&format!(
            "{k},{:.2},{:.2},{:.2}\n",
            accs[0], accs[1], accs[2]
        ));
        rows.push(row);
    }
    let table = render_table(&["K", "FedAvg", "FedProx", "FedDRL"], &rows);
    println!("Figure 7: accuracy vs participating clients (cifar100-like, N=100, CE)\n");
    println!("{table}");
    write_artifact(&opts.out_path("fig7_participation.csv"), &csv);
    write_artifact(&opts.out_path("fig7_participation.txt"), &table);
}
