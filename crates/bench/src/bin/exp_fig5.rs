//! Figure 5 — top-1 test accuracy vs communication round for every
//! (dataset, partition) pair and federated method.
//!
//! Writes one CSV per block with columns `round,FedAvg,FedProx,FedDRL`
//! (the paper smooths Fashion-MNIST over 10 rounds; we emit both raw and
//! smoothed series).

use feddrl_bench::{write_artifact, DatasetKind, ExpOptions, ExperimentSpec, MethodKind};

fn main() {
    let opts = ExpOptions::from_args();
    let n_clients = 10;
    for dataset in DatasetKind::all() {
        for code in ["PA", "CE", "CN"] {
            let exp = ExperimentSpec::new(dataset, code, n_clients, &opts);
            let histories: Vec<_> = MethodKind::federated()
                .iter()
                .map(|m| feddrl_bench::load_or_run(&opts, &exp, *m, opts.scale))
                .collect();
            let smooth = if dataset == DatasetKind::FashionLike {
                10
            } else {
                1
            };
            let mut csv = String::from("round,FedAvg,FedProx,FedDRL\n");
            let series: Vec<Vec<f32>> = histories
                .iter()
                .map(|h| h.smoothed_accuracies(smooth))
                .collect();
            for (round, ((a, p), d)) in series[0]
                .iter()
                .zip(&series[1])
                .zip(&series[2])
                .enumerate()
                .take(exp.rounds)
            {
                csv.push_str(&format!("{round},{a:.4},{p:.4},{d:.4}\n"));
            }
            let name = format!("fig5_{}_{}.csv", dataset.name(), code);
            write_artifact(&opts.out_path(&name), &csv);
            // Console summary: final-round and best accuracy per method.
            println!(
                "fig5 {} {}: final acc FedAvg {:.3} FedProx {:.3} FedDRL {:.3}",
                dataset.name(),
                code,
                series[0].last().unwrap(),
                series[1].last().unwrap(),
                series[2].last().unwrap()
            );
        }
    }
}
