//! Asynchronous aggregation sweep (beyond the paper): buffered
//! FedBuff-style execution vs the deadline-bounded round barrier.
//!
//! Sweeps buffer size × staleness discount × device skew on the MNIST-like
//! CE(0.6) federation. Every cell reports best accuracy, mean per-round
//! participation, mean staleness of the aggregated updates, total
//! simulated wall-clock, and — the headline metric — simulated hours until
//! the run first reaches a shared accuracy target (95% of the deadline
//! baseline's best). Runs are compared on an equal *simulated-time*
//! budget, the async-FL convention: every buffered cell may aggregate as
//! often as it likes but is stopped (by a `RoundObserver`) once it has
//! consumed the virtual time the deadline baseline needed for its rounds.
//! On a skewed fleet the deadline executor waits out its 70th-percentile
//! deadline every round, while the buffered executor aggregates as soon
//! as the fastest `m` uploads land — many more, cheaper aggregations per
//! virtual hour, so it reaches the target sooner at a staleness cost.
//!
//! A final pair of FedDRL rows (skewed fleet, one buffered cell) contrasts
//! `observe_staleness` off/on — the agent seeing each update's age as a
//! fourth state block.

use feddrl::prelude::*;
use feddrl_bench::{
    render_table, write_artifact, DatasetKind, ExpOptions, ExperimentSpec, MethodKind,
    SimTimeBudget,
};
use feddrl_sim::prelude::*;

/// Buffer sizes swept (`K = 10` participants per round).
const BUFFER_SIZES: [usize; 3] = [3, 5, 10];

fn discounts() -> [(&'static str, StalenessDiscount); 3] {
    [
        ("none", StalenessDiscount::None),
        ("poly(1)", StalenessDiscount::Polynomial { alpha: 1.0 }),
        ("hinge(2)", StalenessDiscount::Hinge { cutoff: 2 }),
    ]
}

fn main() {
    let opts = ExpOptions::from_args();
    let n_clients = 12;
    let exp = ExperimentSpec::new(DatasetKind::MnistLike, "CE", n_clients, &opts);
    let env = exp.materialize(opts.scale);
    let params = env.3.build(1).param_count();

    // Per-client upload payload for deadline placement — probed from a
    // DeadlineExecutor so it can never drift from what is simulated.
    let upload_bytes = DeadlineExecutor::new(
        HeteroConfig::default(),
        n_clients,
        params,
        exp.participants,
        opts.seed,
    )
    .upload_bytes();

    let mut rows = Vec::new();
    let mut csv = String::from(
        "method,executor,compute_skew,buffer,discount,best_acc,aggregations,\
         mean_participation,mean_staleness,sim_hours,hours_to_target\n",
    );
    let mut summary = Vec::new();
    for &skew in &[1.0f64, 4.0] {
        let fleet = FleetConfig {
            compute_skew: skew,
            seed: opts.seed ^ 0xA51C,
            ..Default::default()
        };
        // Baseline: the round barrier, cut at the fleet's 70th
        // completion-time percentile (the exp_hetero convention).
        let deadline =
            Fleet::generate(n_clients, &fleet).completion_percentile_s(upload_bytes, 0.7);
        let baseline_exec = ExecutorConfig::Deadline(HeteroConfig {
            fleet: fleet.clone(),
            deadline_s: Some(deadline),
            late_policy: LatePolicy::Drop,
            ..Default::default()
        });
        let baseline = run_cell(&exp, &env, MethodKind::FedAvg, &baseline_exec, false, None);
        let target = baseline.best().best_accuracy * 0.95;
        let budget_s = baseline.total_sim_time_s();
        let baseline_hours = baseline.sim_time_to_accuracy_s(target).map(|s| s / 3600.0);
        push_row(
            &mut rows,
            &mut csv,
            "FedAvg",
            &format!("deadline({deadline:.0}s)"),
            skew,
            "-",
            "-",
            &baseline,
            baseline_hours,
        );

        let mut best_buffered: Option<(usize, &'static str, f64)> = None;
        for &m in &BUFFER_SIZES {
            for (label, discount) in discounts() {
                let exec = ExecutorConfig::Buffered(BufferedConfig {
                    fleet: fleet.clone(),
                    buffer_size: m,
                    staleness: discount,
                    // η = m/K: a buffer covering the whole dispatch width
                    // replaces the global (the barrier semantics), a small
                    // one nudges it proportionally — FedBuff's server step
                    // with the rate tied to the swept buffer size.
                    server_mix: Some(m as f64 / exp.participants as f64),
                    ..Default::default()
                });
                let history =
                    run_cell(&exp, &env, MethodKind::FedAvg, &exec, false, Some(budget_s));
                let hours = history.sim_time_to_accuracy_s(target).map(|s| s / 3600.0);
                if let Some(h) = hours {
                    if best_buffered.is_none_or(|(_, _, b)| h < b) {
                        best_buffered = Some((m, label, h));
                    }
                }
                push_row(
                    &mut rows,
                    &mut csv,
                    "FedAvg",
                    "buffered",
                    skew,
                    &m.to_string(),
                    label,
                    &history,
                    hours,
                );
            }
        }
        if let (Some(b), Some((m, label, h))) = (baseline_hours, best_buffered) {
            summary.push(format!(
                "skew {skew:.0}: target acc {target:.4} — deadline barrier {b:.2} sim h, \
                 best buffered (m = {m}, {label}) {h:.2} sim h ({:.1}x faster)",
                b / h.max(1e-9)
            ));
        }
    }

    // FedDRL flavor: the same skewed buffered cell with the agent blind
    // to staleness vs observing it as a fourth state block.
    let skewed_fleet = FleetConfig {
        compute_skew: 4.0,
        seed: opts.seed ^ 0xA51C,
        ..Default::default()
    };
    for observe in [false, true] {
        let exec = ExecutorConfig::Buffered(BufferedConfig {
            fleet: skewed_fleet.clone(),
            buffer_size: 5,
            staleness: StalenessDiscount::Polynomial { alpha: 1.0 },
            server_mix: Some(0.5),
            ..Default::default()
        });
        let history = run_cell(&exp, &env, MethodKind::FedDrl, &exec, observe, None);
        let method = if observe { "FedDRL+stale" } else { "FedDRL" };
        push_row(
            &mut rows, &mut csv, method, "buffered", 4.0, "5", "poly(1)", &history, None,
        );
    }

    let table = render_table(
        &[
            "method",
            "executor",
            "skew",
            "buffer m",
            "discount",
            "best acc",
            "aggs",
            "mean K'",
            "mean stale",
            "sim hours",
            "h to target",
        ],
        &rows,
    );
    println!(
        "Async aggregation sweep: {} rounds, N = {n_clients}, K = {}, CE(0.6), \
         deadline baseline at the 70th completion percentile\n",
        opts.rounds(),
        exp.participants
    );
    println!("{table}");
    for line in &summary {
        println!("{line}");
    }
    println!(
        "reading guide: every buffered cell runs under the deadline \
         baseline's total simulated-time budget; an aggregation ends at \
         its m-th arrival, so smaller buffers fit many more (staler, \
         cheaper) aggregations into the same virtual time, while the \
         deadline row waits out stragglers every round. 'h to target' is \
         simulated hours until 95% of the deadline baseline's best \
         accuracy; 'aggs' counts non-empty aggregations."
    );
    write_artifact(&opts.out_path("async_sweep.txt"), &table);
    write_artifact(&opts.out_path("async_sweep.csv"), &csv);
}

#[allow(clippy::too_many_arguments)]
fn push_row(
    rows: &mut Vec<Vec<String>>,
    csv: &mut String,
    method: &str,
    executor: &str,
    skew: f64,
    buffer: &str,
    discount: &str,
    history: &RunHistory,
    hours_to_target: Option<f64>,
) {
    let best = history.best();
    let aggs = history
        .records
        .iter()
        .filter(|r| !r.impact_factors.is_empty())
        .count();
    let htt = hours_to_target.map_or("-".to_string(), |h| format!("{h:.2}"));
    rows.push(vec![
        method.to_string(),
        executor.to_string(),
        format!("{skew:.0}"),
        buffer.to_string(),
        discount.to_string(),
        format!("{:.4}", best.best_accuracy),
        aggs.to_string(),
        format!("{:.2}", history.mean_participation()),
        format!("{:.2}", history.mean_staleness()),
        format!("{:.2}", history.total_sim_time_s() / 3600.0),
        htt.clone(),
    ]);
    csv.push_str(&format!(
        "{method},{executor},{skew},{buffer},{discount},{},{aggs},{},{},{},{htt}\n",
        best.best_accuracy,
        history.mean_participation(),
        history.mean_staleness(),
        history.total_sim_time_s() / 3600.0,
    ));
}

fn run_cell(
    exp: &ExperimentSpec,
    env: &(Dataset, Dataset, Partition, ModelSpec),
    method: MethodKind,
    executor: &ExecutorConfig,
    observe_staleness: bool,
    sim_budget_s: Option<f64>,
) -> RunHistory {
    let (train, test, partition, model) = env;
    let mut fl_cfg = exp.fl_config();
    fl_cfg.executor = executor.clone();
    if let ExecutorConfig::Buffered(b) = executor {
        // Generous aggregation cap; the virtual-time budget (or, for the
        // FedDRL flavor rows, an equal accepted-update budget) is what
        // actually ends the run.
        fl_cfg.rounds = (exp.rounds * exp.participants).div_ceil(b.buffer_size);
        if sim_budget_s.is_some() {
            fl_cfg.rounds = exp.rounds * exp.participants;
        }
    }
    match method {
        MethodKind::FedAvg => {
            let mut strategy = FedAvg;
            let mut builder = SessionBuilder::new(model, train, test, partition, &mut strategy)
                .config(&fl_cfg)
                .dataset_name(exp.dataset.name());
            if let Some(budget_s) = sim_budget_s {
                builder = builder.observer(Box::new(SimTimeBudget { budget_s }));
            }
            builder
                .build()
                .unwrap_or_else(|e| panic!("invalid sweep cell: {e}"))
                .run()
                .unwrap_or_else(|e| panic!("sweep cell failed: {e}"))
        }
        MethodKind::FedDrl => {
            // `try_run_feddrl` has no observer hook, so a simulated-time
            // budget cannot be enforced on this arm — fail loudly rather
            // than silently break an equal-time comparison.
            assert!(
                sim_budget_s.is_none(),
                "FedDRL cells do not support a sim-time budget"
            );
            let mut run_cfg = exp.feddrl_config();
            run_cfg.feddrl.observe_staleness = observe_staleness;
            try_run_feddrl(
                model,
                train,
                test,
                partition,
                &fl_cfg,
                &run_cfg,
                exp.dataset.name(),
            )
            .unwrap_or_else(|e| panic!("sweep cell failed: {e}"))
            .history
        }
        other => panic!("exp_async does not sweep {}", other.name()),
    }
}
