//! Extended baseline comparison (paper §2.2.2's related-work landscape):
//! every aggregation strategy in the library — FedAvg, FedProx, Uniform,
//! LossProp (q-FFL/FedCav-style), FedAdp (\[25\]) and FedDRL — on one
//! cluster-skew block (mnist-like, CE 0.6, 10 clients).

use feddrl::prelude::*;
use feddrl_bench::{
    render_table, write_artifact, DatasetKind, ExpOptions, ExperimentSpec, MethodKind,
};

fn main() {
    let opts = ExpOptions::from_args();
    let exp = ExperimentSpec::new(DatasetKind::MnistLike, "CE", 10, &opts);
    let (train, test, partition, model) = exp.materialize(opts.scale);
    let fl_cfg = exp.fl_config();

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut push_row = |h: &RunHistory| {
        let best = h.best();
        rows.push(vec![
            h.method.clone(),
            format!("{:.2}", best.best_accuracy * 100.0),
            best.best_round.to_string(),
            format!("{:.4}", h.records.last().unwrap().test_loss),
        ]);
    };

    let mut strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(FedAvg),
        Box::new(FedProx::default()),
        Box::new(Uniform),
        Box::new(LossProportional::default()),
        Box::new(FedAdp::default()),
    ];
    for strategy in strategies.iter_mut() {
        let h = SessionBuilder::new(&model, &train, &test, &partition, strategy.as_mut())
            .config(&fl_cfg)
            .dataset_name(exp.dataset.name())
            .build()
            .expect("valid baseline config")
            .run()
            .expect("baseline run");
        println!("{}: best {:.2}%", h.method, h.best().best_accuracy * 100.0);
        push_row(&h);
    }
    let drl = exp.run_method(MethodKind::FedDrl, opts.scale);
    println!(
        "{}: best {:.2}%",
        drl.method,
        drl.best().best_accuracy * 100.0
    );
    push_row(&drl);

    let table = render_table(
        &["strategy", "best acc (%)", "best round", "final loss"],
        &rows,
    );
    println!(
        "\nExtended baselines (mnist-like, CE 0.6, 10 clients, {} rounds)\n",
        exp.rounds
    );
    println!("{table}");
    write_artifact(&opts.out_path("baselines.txt"), &table);
}
