//! Ablations of FedDRL's design choices (DESIGN.md §3.1/§5):
//!
//! * reward fairness weight λ ∈ {0, 1, 2} (Eq. 7's second term),
//! * σ-constraint β ∈ {0.05, 0.2, 0.5} (Eq. 6),
//! * TD-prioritized vs uniform replay (Algorithm 1 lines 1–2),
//! * two-stage pre-training vs pure online training (§3.4.2).
//!
//! All on the mnist-like CE(0.6) federation with 10 clients.

use feddrl::prelude::*;
use feddrl_bench::{render_table, write_artifact, DatasetKind, ExpOptions, ExperimentSpec};

fn run_variant(
    exp: &ExperimentSpec,
    scale: feddrl_bench::Scale,
    label: &str,
    mutate: impl FnOnce(&mut FedDrlRunConfig),
) -> Vec<String> {
    let (train, test, partition, model) = exp.materialize(scale);
    let mut cfg = exp.feddrl_config();
    mutate(&mut cfg);
    let run = run_feddrl(&model, &train, &test, &partition, &exp.fl_config(), &cfg);
    let best = run.history.best();
    let mean_reward_tail: f32 = {
        let r = &run.rewards;
        let tail = &r[r.len() / 2..];
        if tail.is_empty() {
            f32::NAN
        } else {
            tail.iter().sum::<f32>() / tail.len() as f32
        }
    };
    println!(
        "ablation {label}: best acc {:.2}% @ round {} (tail reward {:.3})",
        best.best_accuracy * 100.0,
        best.best_round,
        mean_reward_tail
    );
    vec![
        label.to_string(),
        format!("{:.2}", best.best_accuracy * 100.0),
        best.best_round.to_string(),
        format!("{mean_reward_tail:.3}"),
    ]
}

fn main() {
    let opts = ExpOptions::from_args();
    let exp = ExperimentSpec::new(DatasetKind::MnistLike, "CE", 10, &opts);
    let mut rows = Vec::new();

    rows.push(run_variant(
        &exp,
        opts.scale,
        "baseline (lambda=1, beta=0.2, TD, online)",
        |_| {},
    ));
    for lambda in [0.0f32, 2.0] {
        rows.push(run_variant(
            &exp,
            opts.scale,
            &format!("reward lambda={lambda}"),
            |c| c.feddrl.reward_lambda = lambda,
        ));
    }
    for beta in [0.05f32, 0.5] {
        rows.push(run_variant(
            &exp,
            opts.scale,
            &format!("sigma beta={beta}"),
            |c| c.feddrl.ddpg.sigma_beta = beta,
        ));
    }
    rows.push(run_variant(&exp, opts.scale, "uniform replay", |c| {
        c.feddrl.ddpg.prioritized_replay = false;
    }));
    rows.push(run_variant(
        &exp,
        opts.scale,
        "two-stage pretraining (m=2)",
        |c| {
            c.two_stage = Some(TwoStageConfig {
                workers: 2,
                online_rounds: (exp.rounds / 2).max(2),
                offline_updates: 20,
                seed: exp.seed ^ 0x25,
            });
        },
    ));

    let table = render_table(
        &["variant", "best acc (%)", "best round", "tail reward"],
        &rows,
    );
    println!(
        "\nAblation study (mnist-like, CE 0.6, 10 clients, rounds = {})\n",
        exp.rounds
    );
    println!("{table}");
    write_artifact(&opts.out_path("ablation.txt"), &table);
}
