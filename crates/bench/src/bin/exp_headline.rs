//! Headline experiment: the paper's central claim on one block.
//!
//! Runs FedAvg / FedProx / FedDRL on the CIFAR-100-like dataset under the
//! novel Clustered-Equal skew (δ = 0.6, 10 clients) — the configuration
//! where the paper reports FedDRL's largest wins — and prints best
//! accuracy, final-third mean accuracy, and per-client loss fairness.

use feddrl_bench::{
    render_table, write_artifact, DatasetKind, ExpOptions, ExperimentSpec, MethodKind,
};

fn main() {
    let opts = ExpOptions::from_args();
    let exp = ExperimentSpec::new(DatasetKind::Cifar100Like, "CE", 10, &opts);
    let mut rows = Vec::new();
    for method in MethodKind::federated() {
        let h = exp.run_method(method, opts.scale);
        let acc = h.accuracies();
        let tail = &acc[acc.len() * 2 / 3..];
        let tail_mean: f32 = tail.iter().sum::<f32>() / tail.len() as f32;
        // Fairness: mean of the per-round (max-min) client loss gap over
        // the final third.
        let gaps: Vec<f32> = h.records[h.records.len() * 2 / 3..]
            .iter()
            .map(|r| {
                let max = r
                    .client_losses_before
                    .iter()
                    .copied()
                    .fold(f32::NEG_INFINITY, f32::max);
                let min = r
                    .client_losses_before
                    .iter()
                    .copied()
                    .fold(f32::INFINITY, f32::min);
                max - min
            })
            .collect();
        let gap_mean: f32 = gaps.iter().sum::<f32>() / gaps.len() as f32;
        rows.push(vec![
            method.name().to_string(),
            format!("{:.2}", h.best().best_accuracy * 100.0),
            format!("{:.2}", tail_mean * 100.0),
            format!("{gap_mean:.3}"),
        ]);
    }
    let table = render_table(
        &["method", "best acc (%)", "tail acc (%)", "tail loss gap"],
        &rows,
    );
    println!(
        "Headline: cifar100-like, CE(0.6), 10 clients, {} rounds\n",
        exp.rounds
    );
    println!("{table}");
    write_artifact(&opts.out_path("headline.txt"), &table);
}
