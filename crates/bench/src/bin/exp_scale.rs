//! Scale sweep (beyond the paper): fleet size as a free variable.
//!
//! The paper simulates fleets of at most 100 clients; cross-device
//! deployments reach millions. This sweep drives the buffered
//! asynchronous executor over fleets of N ∈ {10^3, 10^4, 10^5} clients
//! (plus 10^6 outside `--quick`) with a stub training closure — the
//! point is the orchestration engine, not SGD — and measures how the
//! per-round machinery scales:
//!
//! * **rounds/sec** — wall-clock throughput of the full selection →
//!   dispatch → event-queue → aggregation loop;
//! * **select µs** — mean wall-clock of one policy `select` call over an
//!   oversampled candidate pool (must track the pool, not N);
//! * **telemetry** — resident `ReliabilityTable` entries after the run:
//!   sparse, so bounded by the distinct clients actually dispatched;
//! * **profiles** — device profiles derived by the lazy `FleetView`:
//!   selection and dispatch consult candidates only, so this stays
//!   proportional to candidate-pool draws, never to N.
//!
//! Client training runs through the executor's rayon-parallel dispatch
//! (`parallel_dispatch: true`), which `tests/scale_props.rs` proves
//! bit-identical to the serial path under a fixed seed.

use feddrl::prelude::*;
use feddrl_bench::{render_table, write_artifact, ExpOptions, Scale};
use feddrl_sim::prelude::*;
use std::time::Instant;

/// Dispatch width `K` per round.
const PARTICIPANTS: usize = 64;
/// Aggregation buffer `m`.
const BUFFER: usize = 16;
/// Candidate pool for the async-aware selection policy.
const CANDIDATES: usize = 256;
/// Model size driving the upload payload (weights are never materialized
/// per client beyond the stub update's small vector).
const PARAM_COUNT: usize = 1_000;

fn stub_train(dispatches: &[Dispatch]) -> Vec<ClientUpdate> {
    dispatches
        .iter()
        .map(|&Dispatch { client_id, .. }| ClientUpdate {
            client_id,
            weights: vec![0.0; 4],
            n_samples: 10,
            loss_before: 1.0,
            loss_after: 0.5,
            staleness: 0,
            mask: None,
        })
        .collect()
}

/// One tier of the sweep: drive `rounds` buffered rounds over an
/// N-client lazy fleet, mirroring the session's selection bookkeeping
/// (per-round derived RNG, participation counts), and report the scale
/// metrics.
struct TierStats {
    n: usize,
    rounds: usize,
    rounds_per_sec: f64,
    mean_select_us: f64,
    telemetry_entries: usize,
    profiles_derived: u64,
    distinct_dispatched: usize,
    aggregations: usize,
    mean_staleness: f64,
}

fn run_tier(n: usize, rounds: usize, seed: u64) -> TierStats {
    let cfg = BufferedConfig {
        fleet: FleetConfig {
            compute_skew: 4.0,
            bandwidth_skew: 2.0,
            dropout: 0.1,
            seed: seed ^ 0x5CA1E,
            ..Default::default()
        },
        buffer_size: BUFFER,
        parallel_dispatch: true,
        ..Default::default()
    };
    let mut ex = BufferedExecutor::new(cfg, n, PARAM_COUNT, PARTICIPANTS, seed);
    let mut policy = Selection::StalenessBalanced {
        candidates: CANDIDATES,
    }
    .build();

    // Sparse server-side bookkeeping, like the session's but without the
    // dense known-loss table (a 10^6-slot `Vec<Option<f32>>` is fine —
    // it is N machine words once, not per round — but the sweep keeps
    // the hot loop free of O(N) work to expose the engine's scaling).
    let known_loss: Vec<Option<f32>> = vec![None; n];
    let mut participation: std::collections::BTreeMap<usize, usize> = Default::default();
    let master = Rng64::new(seed);

    let mut select_ns = 0u128;
    let mut aggregations = 0usize;
    let (mut staleness_sum, mut staleness_count) = (0usize, 0usize);
    let t0 = Instant::now();
    for round in 0..rounds {
        let mut rng = master.derive(round as u64);
        let in_flight = RoundExecutor::in_flight_clients(&ex);
        let ts = Instant::now();
        let selected = {
            let ctx = SelectionContext {
                round,
                n_clients: n,
                participants: PARTICIPANTS,
                known_loss: &known_loss,
                participation: &[], // unused by the swept policy
                fleet: RoundExecutor::fleet(&ex),
                upload_bytes: RoundExecutor::upload_bytes(&ex),
                deadline_s: RoundExecutor::deadline_s(&ex),
                in_flight: &in_flight,
                reliability: RoundExecutor::reliability(&ex),
                departed: &RoundExecutor::departed_clients(&ex),
            };
            policy.select(&ctx, &mut rng)
        };
        select_ns += ts.elapsed().as_nanos();
        for &c in &selected {
            *participation.entry(c).or_insert(0) += 1;
        }
        let out = ex.execute(round, &selected, &stub_train);
        if !out.updates.is_empty() {
            aggregations += 1;
        }
        for u in &out.updates {
            staleness_sum += u.staleness;
            staleness_count += 1;
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();

    let stats = RoundExecutor::reliability(&ex).expect("buffered telemetry");
    TierStats {
        n,
        rounds,
        rounds_per_sec: rounds as f64 / elapsed.max(1e-9),
        mean_select_us: select_ns as f64 / 1e3 / rounds as f64,
        telemetry_entries: stats.observed(),
        profiles_derived: RoundExecutor::fleet(&ex)
            .expect("buffered executor has a fleet")
            .derivations(),
        distinct_dispatched: participation.len(),
        aggregations,
        mean_staleness: if staleness_count == 0 {
            0.0
        } else {
            staleness_sum as f64 / staleness_count as f64
        },
    }
}

fn main() {
    let opts = ExpOptions::from_args();
    let rounds = opts.rounds.unwrap_or(match opts.scale {
        Scale::Quick => 10,
        Scale::Default => 30,
        Scale::Full => 100,
    });
    let mut tiers: Vec<usize> = vec![1_000, 10_000, 100_000];
    if opts.scale != Scale::Quick {
        tiers.push(1_000_000);
    }

    let mut rows = Vec::new();
    let mut csv = String::from(
        "n_clients,rounds,rounds_per_sec,mean_select_us,telemetry_entries,\
         profiles_derived,distinct_dispatched,aggregations,mean_staleness\n",
    );
    for &n in &tiers {
        let s = run_tier(n, rounds, opts.seed);
        assert!(
            s.telemetry_entries <= s.distinct_dispatched,
            "N = {n}: {} resident telemetry entries for {} distinct dispatched \
             clients — the table must stay sparse",
            s.telemetry_entries,
            s.distinct_dispatched
        );
        rows.push(vec![
            s.n.to_string(),
            s.rounds.to_string(),
            format!("{:.1}", s.rounds_per_sec),
            format!("{:.1}", s.mean_select_us),
            s.telemetry_entries.to_string(),
            s.profiles_derived.to_string(),
            s.distinct_dispatched.to_string(),
            s.aggregations.to_string(),
            format!("{:.2}", s.mean_staleness),
        ]);
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{},{}\n",
            s.n,
            s.rounds,
            s.rounds_per_sec,
            s.mean_select_us,
            s.telemetry_entries,
            s.profiles_derived,
            s.distinct_dispatched,
            s.aggregations,
            s.mean_staleness,
        ));
    }

    let table = render_table(
        &[
            "N",
            "rounds",
            "rounds/sec",
            "select µs",
            "telemetry",
            "profiles",
            "dispatched",
            "aggs",
            "mean stale",
        ],
        &rows,
    );
    println!(
        "Scale sweep: buffered executor, K = {PARTICIPANTS}, m = {BUFFER}, \
         candidates = {CANDIDATES}, {rounds} rounds per tier, stub training, \
         parallel dispatch\n"
    );
    println!("{table}");
    println!(
        "reading guide: 'select µs' is the mean wall-clock of one policy \
         select call — with the lazy fleet and sparse telemetry it must \
         track the candidate pool, not N. 'telemetry' counts resident \
         per-client reliability entries after the run (sparse: bounded by \
         'dispatched', the distinct clients ever dispatched). 'profiles' \
         counts device profiles derived on demand by the lazy FleetView — \
         proportional to candidate draws, never to fleet size. A dense \
         implementation would pay O(N) per column; every column here is \
         O(clients actually touched)."
    );
    write_artifact(&opts.out_path("scale_sweep.txt"), &table);
    write_artifact(&opts.out_path("scale_sweep.csv"), &csv);
}
