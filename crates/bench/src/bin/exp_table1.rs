//! Table 1 — configuration of the policy and value networks.
//!
//! Prints the DDPG hyper-parameter block and asserts it matches the
//! paper's published values.

use feddrl_bench::render_table;
use feddrl_drl::config::DdpgConfig;

fn main() {
    let cfg = DdpgConfig::default();
    let rows: Vec<Vec<String>> = cfg
        .table1_rows()
        .into_iter()
        .map(|(k, v)| vec![k, v])
        .collect();
    println!("Table 1: Configuration of the policy and value networks\n");
    println!("{}", render_table(&["Hyper-parameter", "Value"], &rows));

    // Paper fidelity assertions (same numbers as Table 1).
    assert_eq!(cfg.policy_layers, 3);
    assert_eq!(cfg.hidden, 256);
    assert_eq!(cfg.policy_lr, 1e-4);
    assert_eq!(cfg.value_lr, 1e-3);
    assert_eq!(cfg.buffer_capacity, 100_000);
    assert_eq!(cfg.gamma, 0.99);
    assert_eq!(cfg.tau, 0.02);
    println!("all values match the paper's Table 1");
}
