//! Figure 8 — testing accuracy vs the non-IID level δ ∈ {0.2, 0.4, 0.6}
//! (Fashion-MNIST-like, 100 clients, CE partition).
//!
//! δ is the fraction of clients in the main group; higher δ biases the
//! federation toward the main group's label cluster.

use feddrl_bench::{
    render_table, write_artifact, DatasetKind, ExpOptions, ExperimentSpec, MethodKind, Scale,
};

fn main() {
    let opts = ExpOptions::from_args();
    let deltas: &[f64] = match opts.scale {
        Scale::Quick => &[0.2, 0.6],
        _ => &[0.2, 0.4, 0.6],
    };
    let mut rows = Vec::new();
    let mut csv = String::from("delta,FedAvg,FedProx,FedDRL\n");
    for &delta in deltas {
        let mut exp = ExperimentSpec::new(DatasetKind::FashionLike, "CE", 100, &opts);
        exp.delta = delta;
        let mut row = vec![format!("{delta:.1}")];
        let mut accs = Vec::new();
        for method in MethodKind::federated() {
            let history = exp.run_method(method, opts.scale);
            let best = history.best().best_accuracy * 100.0;
            row.push(format!("{best:.2}"));
            accs.push(best);
        }
        csv.push_str(&format!(
            "{delta:.1},{:.2},{:.2},{:.2}\n",
            accs[0], accs[1], accs[2]
        ));
        rows.push(row);
    }
    let table = render_table(&["delta", "FedAvg", "FedProx", "FedDRL"], &rows);
    println!("Figure 8: accuracy vs non-IID level (fashion-like, N=100, CE)\n");
    println!("{table}");
    write_artifact(&opts.out_path("fig8_noniid_level.csv"), &csv);
    write_artifact(&opts.out_path("fig8_noniid_level.txt"), &table);
}
