//! Server-optimizer sweep (beyond the paper): adaptive federated
//! optimization (FedAdam/FedYogi/FedAMSGrad, Reddi et al.-style server
//! steps on the pseudo-gradient) judged under this repo's heterogeneity
//! engine.
//!
//! Sweeps executor cell × method × server optimizer on the MNIST-like
//! CE(0.6) non-IID federation over a compute-skewed device fleet. The
//! cells are the three execution models: the ideal synchronous barrier,
//! the deadline-bounded barrier (stragglers dropped at the fleet's 60th
//! completion percentile), and buffered asynchronous aggregation with
//! polynomial staleness discounting — i.e. the regimes where the
//! aggregate is respectively clean, partial, and stale. Each cell runs
//! FedAvg/FedProx/FedDRL rows against plain Eq. 4 replacement and the
//! three adaptive server optimizers.
//!
//! Comparison is at *equal simulated time* by construction: the server
//! optimizer runs after aggregation and consumes no randomness, so every
//! optimizer column of a cell sees the identical selection draws,
//! dispatch pattern and per-round simulated wall-clock — same rounds,
//! same virtual hours, only the server step differs. The headline lines
//! report, per heterogeneous cell, the best adaptive optimizer's
//! accuracy edge over plain replacement at that shared budget.

use feddrl::prelude::*;
use feddrl_bench::{render_table, write_artifact, DatasetKind, ExpOptions, ExperimentSpec};
use feddrl_sim::prelude::*;

/// Deadline percentile for the barrier cell (the exp_dynamics setting:
/// wait for the fastest 60%, drop the rest).
const DEADLINE_PCT: f64 = 0.6;

/// One optimizer column: label + config. The adaptive rates are the
/// sweep's single tuned knob — a conservative server step that damps the
/// noisy pseudo-gradients partial/stale aggregation produces.
fn server_opts() -> [(&'static str, ServerOptConfig); 4] {
    let p = AdaptiveParams::default();
    [
        ("plain", ServerOptConfig::Plain),
        ("fedadam", ServerOptConfig::FedAdam(p)),
        ("fedyogi", ServerOptConfig::FedYogi(p)),
        ("fedamsgrad", ServerOptConfig::FedAMSGrad(p)),
    ]
}

struct Method {
    label: &'static str,
    feddrl: bool,
}

fn main() {
    let opts = ExpOptions::from_args();
    let n_clients = 12;
    let exp = ExperimentSpec::new(DatasetKind::MnistLike, "CE", n_clients, &opts);
    let env = exp.materialize(opts.scale);
    let params = env.3.build(1).param_count();

    let fleet = FleetConfig {
        compute_skew: 4.0,
        seed: opts.seed ^ 0xADA9,
        ..Default::default()
    };
    // Per-client upload payload probed from a DeadlineExecutor so the
    // deadline placement can never drift from what is simulated.
    let upload_bytes = DeadlineExecutor::new(
        HeteroConfig {
            fleet: fleet.clone(),
            ..Default::default()
        },
        n_clients,
        params,
        exp.participants,
        opts.seed,
    )
    .upload_bytes();
    let deadline =
        Fleet::generate(n_clients, &fleet).completion_percentile_s(upload_bytes, DEADLINE_PCT);

    let cells: [(&str, ExecutorConfig); 3] = [
        ("ideal", ExecutorConfig::Ideal),
        (
            "deadline",
            ExecutorConfig::Deadline(HeteroConfig {
                fleet: fleet.clone(),
                deadline_s: Some(deadline),
                late_policy: LatePolicy::Drop,
                ..Default::default()
            }),
        ),
        (
            "buffered",
            ExecutorConfig::Buffered(BufferedConfig {
                fleet: fleet.clone(),
                buffer_size: 5,
                staleness: StalenessDiscount::Polynomial { alpha: 1.0 },
                server_mix: Some(0.5),
                ..Default::default()
            }),
        ),
    ];
    let methods = [
        Method {
            label: "FedAvg",
            feddrl: false,
        },
        Method {
            label: "FedProx",
            feddrl: false,
        },
        Method {
            label: "FedDRL",
            feddrl: true,
        },
    ];

    let mut rows = Vec::new();
    let mut csv = String::from(
        "method,executor,server_opt,best_acc,final_acc,mean_participation,sim_hours\n",
    );
    let mut summary = Vec::new();
    for (cell, executor) in &cells {
        // Per (cell, method): plain is the baseline the adaptive columns
        // must beat at the cell's shared simulated-time budget.
        for method in &methods {
            let mut plain: Option<(f32, f64)> = None;
            let mut best_adaptive: Option<(&'static str, f32)> = None;
            for (opt_label, server_opt) in server_opts() {
                let history = run_cell(&exp, &env, method, executor, server_opt);
                let best = history.best().best_accuracy;
                let final_acc = final_third_accuracy(&history);
                let hours = history.total_sim_time_s() / 3600.0;
                rows.push(vec![
                    method.label.to_string(),
                    (*cell).to_string(),
                    opt_label.to_string(),
                    format!("{best:.4}"),
                    format!("{final_acc:.4}"),
                    format!("{:.2}", history.mean_participation()),
                    format!("{hours:.2}"),
                ]);
                csv.push_str(&format!(
                    "{},{cell},{opt_label},{best},{final_acc},{},{hours}\n",
                    method.label,
                    history.mean_participation(),
                ));
                if opt_label == "plain" {
                    plain = Some((best, hours));
                } else if best_adaptive.is_none_or(|(_, b)| best > b) {
                    best_adaptive = Some((opt_label, best));
                }
            }
            if *cell == "ideal" {
                continue; // headline only for the heterogeneous cells
            }
            if let (Some((p, hours)), Some((label, a))) = (plain, best_adaptive) {
                summary.push(format!(
                    "{cell} / {}: plain {p:.4} vs best adaptive ({label}) {a:.4} at equal \
                     simulated time ({hours:.2} h) — {}{:.4}",
                    method.label,
                    if a >= p { "+" } else { "" },
                    a - p
                ));
            }
        }
    }

    let table = render_table(
        &[
            "method",
            "executor",
            "server opt",
            "best acc",
            "final acc",
            "mean K'",
            "sim hours",
        ],
        &rows,
    );
    println!(
        "Server-optimizer sweep: {} rounds, N = {n_clients}, K = {}, CE(0.6), \
         compute skew 4x; deadline cell at the {:.0}th completion percentile, \
         buffered cell m = 5 with poly(1) discount\n",
        opts.rounds(),
        exp.participants,
        DEADLINE_PCT * 100.0,
    );
    println!("{table}");
    for line in &summary {
        println!("{line}");
    }
    println!(
        "reading guide: within a cell every server-opt column sees the \
         identical selection draws, dispatch pattern and simulated \
         wall-clock (the server step consumes no randomness), so rows \
         differing only in 'server opt' are an accuracy-at-equal-\
         simulated-time comparison. 'final acc' averages the last third \
         of the rounds; the summary lines report each heterogeneous \
         cell's best adaptive optimizer against plain replacement."
    );
    write_artifact(&opts.out_path("adaptive_sweep.txt"), &table);
    write_artifact(&opts.out_path("adaptive_sweep.csv"), &csv);
}

/// Mean test accuracy over the final third of the rounds — a smoother
/// equal-time endpoint than the single best round.
fn final_third_accuracy(history: &RunHistory) -> f32 {
    let n = history.records.len();
    let tail = &history.records[n - (n / 3).max(1)..];
    tail.iter().map(|r| r.test_accuracy).sum::<f32>() / tail.len() as f32
}

fn run_cell(
    exp: &ExperimentSpec,
    env: &(Dataset, Dataset, Partition, ModelSpec),
    method: &Method,
    executor: &ExecutorConfig,
    server_opt: ServerOptConfig,
) -> RunHistory {
    let (train, test, partition, model) = env;
    let mut fl_cfg = exp.fl_config();
    fl_cfg.executor = executor.clone();
    fl_cfg.server_opt = server_opt;
    if method.feddrl {
        try_run_feddrl(
            model,
            train,
            test,
            partition,
            &fl_cfg,
            &exp.feddrl_config(),
            exp.dataset.name(),
        )
        .unwrap_or_else(|e| panic!("sweep cell failed: {e}"))
        .history
    } else {
        let mut fedavg = FedAvg;
        let mut fedprox = FedProx::default();
        let strategy: &mut dyn Strategy = if method.label == "FedProx" {
            &mut fedprox
        } else {
            &mut fedavg
        };
        SessionBuilder::new(model, train, test, partition, strategy)
            .config(&fl_cfg)
            .dataset_name(exp.dataset.name())
            .build()
            .unwrap_or_else(|e| panic!("invalid sweep cell: {e}"))
            .run()
            .unwrap_or_else(|e| panic!("sweep cell failed: {e}"))
    }
}
