//! Figure 6 — average (top row) and variance (bottom row) of the global
//! model's inference loss across clients, normalized to FedDRL
//! (CIFAR-100-like, 10 clients, PA / CE / CN).
//!
//! A value above 1.0 means the method is worse (higher loss / higher
//! variance) than FedDRL at that round.

use feddrl::prelude::*;
use feddrl_bench::{write_artifact, DatasetKind, ExpOptions, ExperimentSpec, MethodKind};

/// Per-round mean and variance of the recorded client losses.
fn loss_stats(history: &RunHistory) -> (Vec<f32>, Vec<f32>) {
    history
        .records
        .iter()
        .map(|r| mean_var(&r.client_losses_before))
        .unzip()
}

fn main() {
    let opts = ExpOptions::from_args();
    for code in ["PA", "CE", "CN"] {
        let exp = ExperimentSpec::new(DatasetKind::Cifar100Like, code, 10, &opts);
        let histories: Vec<_> = MethodKind::federated()
            .iter()
            .map(|m| feddrl_bench::load_or_run(&opts, &exp, *m, opts.scale))
            .collect();
        let (avg_fedavg, var_fedavg) = loss_stats(&histories[0]);
        let (avg_fedprox, var_fedprox) = loss_stats(&histories[1]);
        let (avg_feddrl, var_feddrl) = loss_stats(&histories[2]);
        let mut csv = String::from(
            "round,avg_fedavg_norm,avg_fedprox_norm,var_fedavg_norm,var_fedprox_norm\n",
        );
        for round in 0..exp.rounds {
            let na = avg_feddrl[round].max(1e-8);
            let nv = var_feddrl[round].max(1e-8);
            csv.push_str(&format!(
                "{round},{:.4},{:.4},{:.4},{:.4}\n",
                avg_fedavg[round] / na,
                avg_fedprox[round] / na,
                var_fedavg[round] / nv,
                var_fedprox[round] / nv,
            ));
        }
        write_artifact(&opts.out_path(&format!("fig6_{code}.csv")), &csv);

        // Tail-window summary (after the DRL has had time to learn).
        let tail = exp.rounds / 2;
        let mean_tail = |xs: &[f32], norm: &[f32]| -> f32 {
            let vals: Vec<f32> = (tail..exp.rounds)
                .map(|r| xs[r] / norm[r].max(1e-8))
                .collect();
            vals.iter().sum::<f32>() / vals.len() as f32
        };
        println!(
            "fig6 {code}: tail-mean normalized avg loss FedAvg {:.3} FedProx {:.3} (FedDRL = 1.0)",
            mean_tail(&avg_fedavg, &avg_feddrl),
            mean_tail(&avg_fedprox, &avg_feddrl)
        );
        println!(
            "fig6 {code}: tail-mean normalized variance FedAvg {:.3} FedProx {:.3} (FedDRL = 1.0)",
            mean_tail(&var_fedavg, &var_feddrl),
            mean_tail(&var_fedprox, &var_feddrl)
        );
    }
}
