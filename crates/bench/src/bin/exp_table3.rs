//! Table 3 — top-1 test accuracy of SingleSet / FedAvg / FedProx / FedDRL
//! under the PA, CE and CN partitioning methods on all three datasets,
//! for 10 and 100 clients (δ = 0.6, K = 10).
//!
//! Prints one block per (dataset, client count) with the paper's
//! impr.(a)/(b) rows and saves every run history as JSON for reuse by the
//! figure binaries.

use feddrl_bench::{
    improvements, render_table, write_artifact, DatasetKind, ExpOptions, ExperimentSpec,
    MethodKind, Scale,
};

fn main() {
    let opts = ExpOptions::from_args();
    let client_counts: &[usize] = match opts.scale {
        Scale::Quick => &[10],
        _ => &[10, 100],
    };
    let partitions = ["PA", "CE", "CN"];
    let mut report = String::new();

    for &n_clients in client_counts {
        for dataset in DatasetKind::all() {
            let mut rows: Vec<Vec<String>> = Vec::new();
            // accuracy[method][partition]
            let mut acc = vec![vec![0.0f32; partitions.len()]; 4];
            for (mi, method) in MethodKind::all().iter().enumerate() {
                let mut row = vec![method.name().to_string()];
                for (pi, code) in partitions.iter().enumerate() {
                    let exp = ExperimentSpec::new(dataset, code, n_clients, &opts);
                    let history = exp.run_method(*method, opts.scale);
                    let best = history.best().best_accuracy * 100.0;
                    acc[mi][pi] = best;
                    row.push(format!("{best:.2}"));
                    let fname = format!(
                        "table3_{}_{}_{}_{}.json",
                        dataset.name(),
                        code,
                        n_clients,
                        method.name()
                    );
                    history
                        .save_json(&opts.out_path(&fname))
                        .expect("save history");
                    // SingleSet ignores the partition; no need to re-run it.
                    if *method == MethodKind::SingleSet {
                        for rest in acc[mi].iter_mut().skip(pi + 1) {
                            *rest = best;
                        }
                        while row.len() < partitions.len() + 1 {
                            row.push(format!("{best:.2}"));
                        }
                        break;
                    }
                }
                rows.push(row);
            }
            // impr.(a): vs best baseline; impr.(b): vs worst baseline.
            let mut impr_a = vec!["impr.(a)".to_string()];
            let mut impr_b = vec!["impr.(b)".to_string()];
            // FedAvg and FedProx are the baselines FedDRL is scored against.
            for ((&avg, &prox), &drl) in acc[1].iter().zip(&acc[2]).zip(&acc[3]) {
                let (a, b) = improvements(drl, &[avg, prox]);
                impr_a.push(format!("{a:+.2}%"));
                impr_b.push(format!("{b:+.2}%"));
            }
            rows.push(impr_a);
            rows.push(impr_b);

            let headers = ["method", "PA", "CE", "CN"];
            let table = render_table(&headers, &rows);
            let block = format!(
                "Table 3 block: {} / {} clients (rounds = {}, K = {})\n{table}\n",
                dataset.name(),
                n_clients,
                opts.rounds(),
                10.min(n_clients)
            );
            println!("{block}");
            report.push_str(&block);
        }
    }
    write_artifact(&opts.out_path("table3.txt"), &report);
}
