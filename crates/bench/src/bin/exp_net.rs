//! Networked-runtime measurement: the `feddrl_net` executor over real
//! loopback sockets vs the simulator's predictions for the same fleet.
//!
//! Spins up a `feddrl_net` server plus one worker thread per client and
//! drives the `NetworkExecutor` directly — every model broadcast and
//! every update crosses a TCP socket. Each worker delays its reply by its
//! device profile's completion time (drawn from the same skewed
//! [`FleetConfig`] the simulator uses, linearly scaled from simulated
//! seconds to real milliseconds), so the transport sees the fleet the
//! discrete-event simulator only imagines. Two measured cells:
//!
//! * **barrier** — wait for every dispatch: measured p50/p99 round-trip
//!   time and update throughput against the fleet profile's predicted
//!   completion percentiles (staleness is zero by construction);
//! * **buffered(m)** — aggregate at the m-th arrival: *measured* mean
//!   staleness (model-version gaps of real late arrivals) against the
//!   mean staleness the simulator's `BufferedExecutor` predicts for the
//!   identical fleet, buffer, and horizon.
//!
//! Artifacts: `net_sweep.txt` (table) and `net_sweep.csv`.

use std::thread;
use std::time::{Duration, Instant};

use feddrl::prelude::*;
use feddrl_bench::{render_table, write_artifact, DatasetKind, ExpOptions, ExperimentSpec, Scale};
use feddrl_net::prelude::*;
use feddrl_sim::prelude::*;

/// Real milliseconds the slowest device's completion time maps onto.
fn target_max_ms(scale: Scale) -> f64 {
    match scale {
        Scale::Quick => 60.0,
        _ => 150.0,
    }
}

/// Nearest-rank percentile of `samples` (must be non-empty).
fn percentile(samples: &[f64], pct: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let idx = ((sorted.len() - 1) as f64 * (pct / 100.0)).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The deterministic stub update both the workers and the simulator's
/// train callback compute: a cheap, client-dependent transform of the
/// published weights (the measurement targets the transport, not SGD).
fn stub_update(client_id: usize, round: u64, global: &[f32]) -> ClientUpdate {
    let scale = 0.9 - 0.01 * client_id as f32;
    ClientUpdate {
        client_id,
        weights: global.iter().map(|w| w * scale).collect(),
        n_samples: 10 + client_id,
        loss_before: 1.0 / (round as f32 + 1.0),
        loss_after: 0.5 / (round as f32 + 1.0),
        staleness: 0,
        mask: None,
    }
}

/// One measured loopback run's outcome.
struct NetRun {
    telemetry: NetTelemetry,
    wall_s: f64,
}

/// Server + `n_clients` delayed loopback workers, `rounds` executor
/// rounds; `buffer: None` is barrier mode, `Some(m)` buffered.
fn run_net(
    n_clients: usize,
    rounds: usize,
    params: usize,
    delays_ms: &[f64],
    buffer: Option<usize>,
) -> NetRun {
    let server = NetServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind server");
    let addr = server.local_addr().to_string();
    let workers: Vec<_> = (0..n_clients)
        .map(|cid| {
            let cfg = ClientConfig::new(addr.clone(), cid)
                .with_train_delay(Duration::from_secs_f64(delays_ms[cid] / 1e3));
            thread::spawn(move || {
                run_client(&cfg, move |order, global| {
                    stub_update(cid, order.round, global)
                })
            })
        })
        .collect();
    server
        .wait_for_clients(n_clients, Duration::from_secs(10))
        .expect("workers subscribed");

    let mut exec = match buffer {
        None => NetworkExecutor::barrier(server),
        Some(m) => NetworkExecutor::buffered(server, m),
    }
    .with_round_timeout(Duration::from_secs(30));
    let telemetry = exec.telemetry();
    let selected: Vec<usize> = (0..n_clients).collect();
    let global = vec![0.0f32; params];
    let noop: &TrainFn<'_> = &|_dispatches: &[Dispatch]| Vec::new();
    let start = Instant::now();
    for round in 0..rounds {
        exec.publish_model(round, &global);
        let _ = exec.execute(round, &selected, noop);
    }
    let wall_s = start.elapsed().as_secs_f64();
    // Dropping the executor shuts the server down; workers exit on `Bye`
    // (a buffered run may cut a still-sleeping straggler's socket, so the
    // worker result is not required to be clean here).
    drop(exec);
    for w in workers {
        let _ = w.join().expect("worker thread");
    }
    let snapshot = telemetry.lock().clone();
    NetRun {
        telemetry: snapshot,
        wall_s,
    }
}

/// The simulator's prediction for the same fleet/buffer/horizon: a
/// `BufferedExecutor` session over the identical stub train transform.
fn run_sim_buffered(
    exp: &ExperimentSpec,
    env: &(Dataset, Dataset, Partition, ModelSpec),
    fleet: &FleetConfig,
    buffer_size: usize,
    rounds: usize,
) -> RunHistory {
    let (train, test, partition, model) = env;
    let mut fl_cfg = exp.fl_config();
    fl_cfg.rounds = rounds;
    fl_cfg.executor = ExecutorConfig::Buffered(BufferedConfig {
        fleet: fleet.clone(),
        buffer_size,
        ..Default::default()
    });
    let mut strategy = FedAvg;
    SessionBuilder::new(model, train, test, partition, &mut strategy)
        .config(&fl_cfg)
        .dataset_name(exp.dataset.name())
        .train_fn(Box::new(
            |ctx: &TrainContext<'_>, dispatches: &[Dispatch]| {
                dispatches
                    .iter()
                    .map(|d| stub_update(d.client_id, ctx.round as u64, ctx.global))
                    .collect()
            },
        ))
        .build()
        .unwrap_or_else(|e| panic!("invalid sim cell: {e}"))
        .run()
        .unwrap_or_else(|e| panic!("sim cell failed: {e}"))
}

#[allow(clippy::too_many_arguments)]
fn push_row(
    rows: &mut Vec<Vec<String>>,
    csv: &mut String,
    mode: &str,
    buffer: &str,
    rounds: usize,
    run: &NetRun,
    pred_p50_ms: f64,
    pred_p99_ms: f64,
    sim_staleness: f64,
) {
    let t = &run.telemetry;
    let updates_per_s = t.rtt_ms.len() as f64 / run.wall_s.max(1e-9);
    rows.push(vec![
        mode.to_string(),
        buffer.to_string(),
        rounds.to_string(),
        t.dispatched.to_string(),
        t.rtt_ms.len().to_string(),
        format!("{:.2}", t.p50_rtt_ms()),
        format!("{:.2}", t.p99_rtt_ms()),
        format!("{pred_p50_ms:.2}"),
        format!("{pred_p99_ms:.2}"),
        format!("{updates_per_s:.0}"),
        format!("{:.2}", t.mean_staleness()),
        format!("{sim_staleness:.2}"),
    ]);
    csv.push_str(&format!(
        "{mode},{buffer},{rounds},{},{},{:.3},{:.3},{pred_p50_ms:.3},{pred_p99_ms:.3},\
         {updates_per_s:.1},{:.3},{sim_staleness:.3}\n",
        t.dispatched,
        t.rtt_ms.len(),
        t.p50_rtt_ms(),
        t.p99_rtt_ms(),
        t.mean_staleness(),
    ));
}

fn main() {
    let opts = ExpOptions::from_args();
    let n_clients = 8;
    let rounds = opts.rounds();
    let buffer_size = n_clients / 2;
    let exp = ExperimentSpec::new(DatasetKind::MnistLike, "CE", n_clients, &opts);
    let env = exp.materialize(opts.scale);
    let params = env.3.build(1).param_count();

    // Per-client upload payload, probed from a DeadlineExecutor so it can
    // never drift from what the simulator charges (exp_async convention).
    let upload_bytes = DeadlineExecutor::new(
        HeteroConfig::default(),
        n_clients,
        params,
        exp.participants,
        opts.seed,
    )
    .upload_bytes();

    // The fleet both sides share: the workers' real delays and the
    // simulator's virtual completion times come from the same profiles.
    let fleet = FleetConfig {
        compute_skew: 4.0,
        seed: opts.seed ^ 0xA51C,
        ..Default::default()
    };
    let completion_s: Vec<f64> = {
        let f = Fleet::generate(n_clients, &fleet);
        (0..n_clients)
            .map(|cid| f.profile(cid).completion_time_s(upload_bytes))
            .collect()
    };
    let max_s = completion_s.iter().cloned().fold(0.0f64, f64::max);
    let ms_per_sim_s = target_max_ms(opts.scale) / max_s.max(1e-9);
    let delays_ms: Vec<f64> = completion_s.iter().map(|s| s * ms_per_sim_s).collect();
    let pred_p50 = percentile(&delays_ms, 50.0);
    let pred_p99 = percentile(&delays_ms, 99.0);
    println!(
        "fleet: skew {:.0}, completion {:.2}-{:.2} sim s, scaled at {:.1} ms per sim s \
         ({} params, {} B upload)",
        fleet.compute_skew,
        completion_s.iter().cloned().fold(f64::INFINITY, f64::min),
        max_s,
        ms_per_sim_s,
        params,
        upload_bytes
    );

    let mut rows = Vec::new();
    let mut csv = String::from(
        "mode,buffer,rounds,dispatched,updates,p50_rtt_ms,p99_rtt_ms,predicted_p50_ms,\
         predicted_p99_ms,updates_per_s,measured_mean_staleness,predicted_mean_staleness\n",
    );

    // Cell 1 — barrier: every round waits for all dispatches, so RTT
    // percentiles should track the fleet's completion percentiles and
    // staleness is zero on both sides by construction.
    let barrier = run_net(n_clients, rounds, params, &delays_ms, None);
    push_row(
        &mut rows, &mut csv, "barrier", "-", rounds, &barrier, pred_p50, pred_p99, 0.0,
    );

    // Cell 2 — buffered(m): real late arrivals carry measured staleness;
    // the simulator predicts it for the identical fleet/buffer/horizon.
    let buffered = run_net(n_clients, rounds, params, &delays_ms, Some(buffer_size));
    let sim = run_sim_buffered(&exp, &env, &fleet, buffer_size, rounds);
    push_row(
        &mut rows,
        &mut csv,
        "buffered",
        &buffer_size.to_string(),
        rounds,
        &buffered,
        pred_p50,
        pred_p99,
        sim.mean_staleness(),
    );

    let table = render_table(
        &[
            "mode",
            "buffer m",
            "rounds",
            "dispatched",
            "updates",
            "p50 RTT ms",
            "p99 RTT ms",
            "pred p50",
            "pred p99",
            "upd/s",
            "stale (meas)",
            "stale (sim)",
        ],
        &rows,
    );
    println!(
        "\nNetworked runtime over loopback: N = {n_clients}, {rounds} rounds, \
         buffered m = {buffer_size}\n"
    );
    println!("{table}");
    println!(
        "reading guide: workers delay replies by their device profile's \
         completion time (scaled sim s -> real ms), so 'p50/p99 RTT' are \
         *measured* socket round trips against the fleet's 'pred' \
         completion percentiles; 'stale (meas)' is the mean model-version \
         gap of real buffered arrivals vs the simulator's prediction for \
         the identical fleet, buffer, and horizon."
    );
    write_artifact(&opts.out_path("net_sweep.txt"), &table);
    write_artifact(&opts.out_path("net_sweep.csv"), &csv);
}
