//! Networked-runtime measurement: the `feddrl_net` executor over real
//! loopback sockets vs the simulator's predictions for the same fleet.
//!
//! Spins up a `feddrl_net` server plus one worker per client — a thread
//! by default, a real OS process under `--processes` (the binary
//! re-execs itself with `--worker`) — and drives the `NetworkExecutor`
//! directly: every model broadcast and every update crosses a TCP
//! socket. Each worker delays its reply by its device profile's
//! completion time (drawn from the same skewed [`FleetConfig`] the
//! simulator uses, linearly scaled from simulated seconds to real
//! milliseconds), so the transport sees the fleet the discrete-event
//! simulator only imagines. Two measured cells:
//!
//! * **barrier** — wait for every dispatch: measured p50/p99 round-trip
//!   time and update throughput against the fleet profile's predicted
//!   completion percentiles (staleness is zero by construction). Delta
//!   publishes are on: after the first dense fan-out, steady-state
//!   rounds ship sparse `ModelPublishDelta` frames and the cell reports
//!   (and asserts) the resulting bytes-on-wire reduction. Under
//!   `--processes` one worker process is killed mid-run; its TTL expiry
//!   must surface as a permanent departure.
//! * **buffered(m)** — aggregate at the m-th arrival: *measured* mean
//!   staleness (model-version gaps of real late arrivals) against the
//!   mean staleness the simulator's `BufferedExecutor` predicts for the
//!   identical fleet, buffer, and horizon.
//!
//! Artifacts: `net_sweep.txt` (table) and `net_sweep.csv`.

use std::process::{Child, Command};
use std::thread;
use std::time::{Duration, Instant};

use feddrl::prelude::*;
use feddrl_bench::{render_table, write_artifact, DatasetKind, ExpOptions, ExperimentSpec, Scale};
use feddrl_net::prelude::*;
use feddrl_sim::prelude::*;

/// Liveness TTL / worker heartbeat for the process cell — short enough
/// that a killed worker departs within a quick run.
const PROCESS_TTL: Duration = Duration::from_millis(900);
const PROCESS_HEARTBEAT: Duration = Duration::from_millis(100);

/// Real milliseconds the slowest device's completion time maps onto.
fn target_max_ms(scale: Scale) -> f64 {
    match scale {
        Scale::Quick => 60.0,
        _ => 150.0,
    }
}

/// Nearest-rank percentile of `samples` for `pct` in `[0, 100]` (must be
/// non-empty) — index `⌈pct/100 · N⌉ − 1`, the same definition
/// `NetTelemetry::rtt_percentile_ms` and the fleet percentiles use.
fn percentile(samples: &[f64], pct: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let idx = ((sorted.len() as f64 * (pct / 100.0)).ceil() as usize)
        .saturating_sub(1)
        .min(sorted.len() - 1);
    sorted[idx]
}

/// The deterministic stub update both the workers and the simulator's
/// train callback compute: a cheap, client-dependent transform of the
/// published weights (the measurement targets the transport, not SGD).
fn stub_update(client_id: usize, round: u64, global: &[f32]) -> ClientUpdate {
    let scale = 0.9 - 0.01 * client_id as f32;
    ClientUpdate {
        client_id,
        weights: global.iter().map(|w| w * scale).collect(),
        n_samples: 10 + client_id,
        loss_before: 1.0 / (round as f32 + 1.0),
        loss_after: 0.5 / (round as f32 + 1.0),
        staleness: 0,
        mask: None,
    }
}

/// The `--worker` entry point: this binary re-execed as one federated
/// worker process. Parses its own tiny argument grammar (it must never
/// reach `ExpOptions::from_args`, which would reject `--worker`), runs
/// the same deterministic stub the thread workers run, and exits 0 on a
/// clean `Bye`.
fn run_worker_process(args: &[String]) -> ! {
    let mut addr = None;
    let mut id = None;
    let mut delay_ms = 0.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().cloned(),
            "--id" => id = it.next().and_then(|v| v.parse::<usize>().ok()),
            "--delay-ms" => {
                delay_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--delay-ms needs a float");
            }
            other => panic!("unknown worker argument: {other}"),
        }
    }
    let addr = addr.expect("--worker needs --addr");
    let id = id.expect("--worker needs --id");
    let cfg = NetClientBuilder::new(addr, id)
        .heartbeat(PROCESS_HEARTBEAT)
        .train_delay(Duration::from_secs_f64(delay_ms / 1e3))
        .build()
        .expect("worker config");
    let outcome = run_client(&cfg, move |order, global| {
        stub_update(id, order.round, global)
    });
    match outcome {
        Ok(_) => std::process::exit(0),
        Err(e) => {
            eprintln!("worker {id} failed: {e}");
            std::process::exit(1);
        }
    }
}

/// One measured loopback run's outcome.
struct NetRun {
    telemetry: NetTelemetry,
    wall_s: f64,
    /// Publish bytes-on-wire over the steady-state rounds (everything
    /// after the first round's cold dense fan-out).
    steady_publish: PublishStats,
    /// Ids departed by the end of the run (TTL expiry or `Bye`).
    departed: Vec<usize>,
}

/// Worker handles for either spawning mode, so the run loop can join
/// threads and reap processes uniformly (and kill one process mid-run).
enum Workers {
    Threads(Vec<thread::JoinHandle<Result<ClientReport, WireError>>>),
    Processes(Vec<Child>),
}

impl Workers {
    /// Kill worker `idx` (process mode only; thread workers cannot be
    /// killed mid-run and `None` is returned).
    fn kill(&mut self, idx: usize) -> Option<usize> {
        match self {
            Workers::Threads(_) => None,
            Workers::Processes(children) => {
                let child = children.get_mut(idx)?;
                child.kill().expect("kill worker process");
                let _ = child.wait();
                Some(idx)
            }
        }
    }

    fn join(self) {
        match self {
            Workers::Threads(handles) => {
                for h in handles {
                    let _ = h.join().expect("worker thread");
                }
            }
            Workers::Processes(children) => {
                for mut c in children {
                    let _ = c.wait();
                }
            }
        }
    }
}

/// Server + `n_clients` delayed loopback workers, `rounds` executor
/// rounds; `buffer: None` is barrier mode, `Some(m)` buffered. With
/// `processes` the workers are real OS processes and the one with the
/// highest id is killed halfway through — its TTL expiry must flow into
/// the departed set without stalling the remaining rounds.
fn run_net(
    n_clients: usize,
    rounds: usize,
    params: usize,
    delays_ms: &[f64],
    buffer: Option<usize>,
    processes: bool,
) -> NetRun {
    let ttl = if processes {
        PROCESS_TTL
    } else {
        Duration::from_secs(5)
    };
    let server = NetServerBuilder::new()
        .ttl(ttl)
        .delta_publish(true)
        .build()
        .expect("bind server");
    let addr = server.local_addr().to_string();

    let mut workers = if processes {
        let exe = std::env::current_exe().expect("own binary path");
        Workers::Processes(
            (0..n_clients)
                .map(|cid| {
                    Command::new(&exe)
                        .args([
                            "--worker",
                            "--addr",
                            &addr,
                            "--id",
                            &cid.to_string(),
                            "--delay-ms",
                            &format!("{:.3}", delays_ms[cid]),
                        ])
                        .spawn()
                        .expect("spawn worker process")
                })
                .collect(),
        )
    } else {
        Workers::Threads(
            (0..n_clients)
                .map(|cid| {
                    let cfg = NetClientBuilder::new(addr.clone(), cid)
                        .train_delay(Duration::from_secs_f64(delays_ms[cid] / 1e3))
                        .build()
                        .expect("worker config");
                    thread::spawn(move || {
                        run_client(&cfg, move |order, global| {
                            stub_update(cid, order.round, global)
                        })
                    })
                })
                .collect(),
        )
    };
    server
        .wait_for_clients(n_clients, Duration::from_secs(10))
        .expect("workers subscribed");

    let mut exec = match buffer {
        None => NetworkExecutor::barrier(server),
        Some(m) => NetworkExecutor::buffered(server, m),
    }
    .with_round_timeout(Duration::from_secs(30));
    let telemetry = exec.telemetry();
    let selected: Vec<usize> = (0..n_clients).collect();
    let mut global = vec![0.0f32; params];
    let noop: &TrainFn<'_> = &|_dispatches: &[Dispatch]| Vec::new();
    let kill_at = rounds / 2;
    let mut cold_publish = PublishStats::default();
    let start = Instant::now();
    for round in 0..rounds {
        // Sweep (and surface) departures before dispatching, exactly as
        // the session does via selection context.
        let _ = exec.departed_clients();
        // Touch one parameter per round so steady-state publishes are
        // genuine sparse deltas, not empty ones.
        global[round % params] = (round + 1) as f32;
        exec.publish_model(round, &global);
        let _ = exec.execute(round, &selected, noop);
        if round == 0 {
            cold_publish = telemetry.lock().publish;
        }
        if processes && round + 1 == kill_at {
            // Kill between rounds, then outlast the TTL so the next
            // round's sweep retires the worker instead of the barrier
            // waiting on its corpse.
            if let Some(idx) = workers.kill(n_clients - 1) {
                eprintln!("killed worker process {idx} after round {round}");
                thread::sleep(ttl * 5 / 2);
            }
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    let departed = exec.departed_clients();
    // Dropping the executor shuts the server down; workers exit on `Bye`
    // (a buffered run may cut a still-sleeping straggler's socket, so the
    // worker result is not required to be clean here).
    drop(exec);
    workers.join();
    let snapshot = telemetry.lock().clone();
    let steady_publish = snapshot.publish.since(&cold_publish);
    NetRun {
        telemetry: snapshot,
        wall_s,
        steady_publish,
        departed,
    }
}

/// The simulator's prediction for the same fleet/buffer/horizon: a
/// `BufferedExecutor` session over the identical stub train transform.
fn run_sim_buffered(
    exp: &ExperimentSpec,
    env: &(Dataset, Dataset, Partition, ModelSpec),
    fleet: &FleetConfig,
    buffer_size: usize,
    rounds: usize,
) -> RunHistory {
    let (train, test, partition, model) = env;
    let mut fl_cfg = exp.fl_config();
    fl_cfg.rounds = rounds;
    fl_cfg.executor = ExecutorConfig::Buffered(BufferedConfig {
        fleet: fleet.clone(),
        buffer_size,
        ..Default::default()
    });
    let mut strategy = FedAvg;
    SessionBuilder::new(model, train, test, partition, &mut strategy)
        .config(&fl_cfg)
        .dataset_name(exp.dataset.name())
        .train_fn(Box::new(
            |ctx: &TrainContext<'_>, dispatches: &[Dispatch]| {
                dispatches
                    .iter()
                    .map(|d| stub_update(d.client_id, ctx.round as u64, ctx.global))
                    .collect()
            },
        ))
        .build()
        .unwrap_or_else(|e| panic!("invalid sim cell: {e}"))
        .run()
        .unwrap_or_else(|e| panic!("sim cell failed: {e}"))
}

#[allow(clippy::too_many_arguments)]
fn push_row(
    rows: &mut Vec<Vec<String>>,
    csv: &mut String,
    mode: &str,
    buffer: &str,
    rounds: usize,
    run: &NetRun,
    pred_p50_ms: f64,
    pred_p99_ms: f64,
    sim_staleness: f64,
) {
    let t = &run.telemetry;
    let updates_per_s = t.rtt_ms.len() as f64 / run.wall_s.max(1e-9);
    let steady = &run.steady_publish;
    rows.push(vec![
        mode.to_string(),
        buffer.to_string(),
        rounds.to_string(),
        t.dispatched.to_string(),
        t.rtt_ms.len().to_string(),
        format!("{:.2}", t.p50_rtt_ms()),
        format!("{:.2}", t.p99_rtt_ms()),
        format!("{pred_p50_ms:.2}"),
        format!("{pred_p99_ms:.2}"),
        format!("{updates_per_s:.0}"),
        format!("{:.2}", t.mean_staleness()),
        format!("{sim_staleness:.2}"),
        t.publish.wire_bytes.to_string(),
        t.publish.dense_bytes.to_string(),
        format!("{}/{}", t.publish.delta_frames, t.publish.full_frames),
        format!("{:.3}", steady.wire_to_dense_ratio()),
    ]);
    csv.push_str(&format!(
        "{mode},{buffer},{rounds},{},{},{:.3},{:.3},{pred_p50_ms:.3},{pred_p99_ms:.3},\
         {updates_per_s:.1},{:.3},{sim_staleness:.3},{},{},{},{},{:.4}\n",
        t.dispatched,
        t.rtt_ms.len(),
        t.p50_rtt_ms(),
        t.p99_rtt_ms(),
        t.mean_staleness(),
        t.publish.wire_bytes,
        t.publish.dense_bytes,
        t.publish.delta_frames,
        t.publish.full_frames,
        steady.wire_to_dense_ratio(),
    ));
}

fn main() {
    // Worker re-exec path: `exp_net --worker --addr A --id N
    // --delay-ms D` never parses experiment options.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("--worker") {
        run_worker_process(&raw[1..]);
    }

    let opts = ExpOptions::from_args();
    let n_clients = 8;
    let rounds = opts.rounds();
    let buffer_size = n_clients / 2;
    let exp = ExperimentSpec::new(DatasetKind::MnistLike, "CE", n_clients, &opts);
    let env = exp.materialize(opts.scale);
    let params = env.3.build(1).param_count();

    // Per-client upload payload, probed from a DeadlineExecutor so it can
    // never drift from what the simulator charges (exp_async convention).
    let upload_bytes = DeadlineExecutor::new(
        HeteroConfig::default(),
        n_clients,
        params,
        exp.participants,
        opts.seed,
    )
    .upload_bytes();

    // The fleet both sides share: the workers' real delays and the
    // simulator's virtual completion times come from the same profiles.
    let fleet = FleetConfig {
        compute_skew: 4.0,
        seed: opts.seed ^ 0xA51C,
        ..Default::default()
    };
    let completion_s: Vec<f64> = {
        let f = Fleet::generate(n_clients, &fleet);
        (0..n_clients)
            .map(|cid| f.profile(cid).completion_time_s(upload_bytes))
            .collect()
    };
    let max_s = completion_s.iter().cloned().fold(0.0f64, f64::max);
    let ms_per_sim_s = target_max_ms(opts.scale) / max_s.max(1e-9);
    let delays_ms: Vec<f64> = completion_s.iter().map(|s| s * ms_per_sim_s).collect();
    let pred_p50 = percentile(&delays_ms, 50.0);
    let pred_p99 = percentile(&delays_ms, 99.0);
    println!(
        "fleet: skew {:.0}, completion {:.2}-{:.2} sim s, scaled at {:.1} ms per sim s \
         ({} params, {} B upload), workers as {}",
        fleet.compute_skew,
        completion_s.iter().cloned().fold(f64::INFINITY, f64::min),
        max_s,
        ms_per_sim_s,
        params,
        upload_bytes,
        if opts.processes {
            "OS processes"
        } else {
            "threads"
        }
    );

    let mut rows = Vec::new();
    let mut csv = String::from(
        "mode,buffer,rounds,dispatched,updates,p50_rtt_ms,p99_rtt_ms,predicted_p50_ms,\
         predicted_p99_ms,updates_per_s,measured_mean_staleness,predicted_mean_staleness,\
         publish_wire_bytes,publish_dense_bytes,delta_frames,full_frames,\
         steady_wire_to_dense\n",
    );

    // Cell 1 — barrier: every round waits for all dispatches, so RTT
    // percentiles should track the fleet's completion percentiles and
    // staleness is zero on both sides by construction. Delta publishes
    // are on; under --processes the workers are real killable processes.
    let barrier = run_net(n_clients, rounds, params, &delays_ms, None, opts.processes);
    let steady = &barrier.steady_publish;
    println!(
        "barrier publishes: steady-state {} wire B vs {} dense-equivalent B \
         (ratio {:.3}, {} delta / {} full frames)",
        steady.wire_bytes,
        steady.dense_bytes,
        steady.wire_to_dense_ratio(),
        steady.delta_frames,
        steady.full_frames,
    );
    assert!(
        steady.wire_to_dense_ratio() <= 0.5,
        "steady-state delta publishes must cost at most half the dense \
         fan-out, got {:.3}",
        steady.wire_to_dense_ratio()
    );
    if opts.processes {
        assert!(
            barrier.departed.contains(&(n_clients - 1)),
            "the killed worker process must surface as departed, got {:?}",
            barrier.departed
        );
        println!(
            "killed worker {} departed via TTL expiry; survivors finished the run",
            n_clients - 1
        );
    }
    push_row(
        &mut rows, &mut csv, "barrier", "-", rounds, &barrier, pred_p50, pred_p99, 0.0,
    );

    // Cell 2 — buffered(m): real late arrivals carry measured staleness;
    // the simulator predicts it for the identical fleet/buffer/horizon.
    let buffered = run_net(
        n_clients,
        rounds,
        params,
        &delays_ms,
        Some(buffer_size),
        false,
    );
    let sim = run_sim_buffered(&exp, &env, &fleet, buffer_size, rounds);
    push_row(
        &mut rows,
        &mut csv,
        "buffered",
        &buffer_size.to_string(),
        rounds,
        &buffered,
        pred_p50,
        pred_p99,
        sim.mean_staleness(),
    );

    let table = render_table(
        &[
            "mode",
            "buffer m",
            "rounds",
            "dispatched",
            "updates",
            "p50 RTT ms",
            "p99 RTT ms",
            "pred p50",
            "pred p99",
            "upd/s",
            "stale (meas)",
            "stale (sim)",
            "pub wire B",
            "pub dense B",
            "delta/full",
            "steady ratio",
        ],
        &rows,
    );
    println!(
        "\nNetworked runtime over loopback: N = {n_clients}, {rounds} rounds, \
         buffered m = {buffer_size}\n"
    );
    println!("{table}");
    println!(
        "reading guide: workers delay replies by their device profile's \
         completion time (scaled sim s -> real ms), so 'p50/p99 RTT' are \
         *measured* socket round trips against the fleet's 'pred' \
         completion percentiles; 'stale (meas)' is the mean model-version \
         gap of real buffered arrivals vs the simulator's prediction for \
         the identical fleet, buffer, and horizon. 'pub wire B' counts \
         bytes actually written by publishes vs their dense-equivalent \
         cost, and 'steady ratio' is that quotient excluding the first \
         round's cold dense fan-out — the delta-encoding saving."
    );
    write_artifact(&opts.out_path("net_sweep.txt"), &table);
    write_artifact(&opts.out_path("net_sweep.csv"), &csv);
}
