//! Reliability sweep (beyond the paper): per-device dropout profiles ×
//! async-aware selection policies.
//!
//! Real fleets do not fail uniformly — the adaptive-dropout system
//! (arXiv:2507.10430) observes that slow devices drop out
//! disproportionately often. This sweep generates fleets whose per-device
//! dropout rates spread log-uniformly around a base rate
//! (`dropout_skew = 3`), either independently of device speed or fully
//! speed-correlated, and compares selection policies on the buffered
//! asynchronous executor under an *equal simulated-time budget* (the
//! `exp_async` convention, budget taken from each cell's `Uniform`
//! baseline):
//!
//! * `Uniform` — the paper's sampling; wastes slots on flaky devices and
//!   lets fast clients crowd out slow ones (the non-IID staleness skew);
//! * `ReliabilityAware` — ranks an oversampled candidate pool by expected
//!   utility (loss × observed report probability), cutting dropout-wasted
//!   dispatches without starving flaky-but-informative clients;
//! * `StalenessBalanced` — oversamples idle slow devices so their updates
//!   stop arriving chronically stale, rebalancing the fast-client skew.
//!
//! Per cell: best accuracy within the budget, aggregations, mean
//! participation, dropout-wasted dispatches, mean staleness, the share of
//! aggregated updates from the slower half of the fleet, and simulated
//! hours to a shared accuracy target. A final FedAvg-vs-FedDRL pair runs
//! the headline speed-correlated skewed cell under both aggregation
//! strategies with the reliability-aware policy.

use feddrl::prelude::*;
use feddrl_bench::{
    render_table, write_artifact, DatasetKind, ExpOptions, ExperimentSpec, MethodKind,
    SimTimeBudget,
};
use feddrl_sim::prelude::*;

/// Aggregation buffer `m` for every buffered cell (`K = 10` dispatches).
const BUFFER: usize = 5;
/// Candidate pool for the oversampling policies.
const CANDIDATES: usize = 24;
/// Base per-round dropout rate; per-device rates spread in
/// `[base / DROPOUT_SKEW, base * DROPOUT_SKEW]`.
const BASE_DROPOUT: f64 = 0.25;
const DROPOUT_SKEW: f64 = 3.0;

fn correlations() -> [(&'static str, DropoutCorrelation); 2] {
    [
        ("indep", DropoutCorrelation::Independent),
        (
            "speed(1.0)",
            DropoutCorrelation::SpeedCorrelated { strength: 1.0 },
        ),
    ]
}

fn policies() -> [(&'static str, Selection); 3] {
    [
        ("uniform", Selection::Uniform),
        (
            "reliability-aware",
            Selection::ReliabilityAware {
                candidates: CANDIDATES,
            },
        ),
        (
            "staleness-balanced",
            Selection::StalenessBalanced {
                candidates: CANDIDATES,
            },
        ),
    ]
}

fn main() {
    let opts = ExpOptions::from_args();
    let n_clients = 40; // N >> K so selection has room to choose
    let exp = ExperimentSpec::new(DatasetKind::MnistLike, "CE", n_clients, &opts);
    let env = exp.materialize(opts.scale);

    let mut rows = Vec::new();
    let mut csv = String::from(
        "method,correlation,compute_skew,policy,best_acc,aggregations,\
         mean_participation,waste_rate,mean_staleness,slow_share,\
         sim_hours,hours_to_target\n",
    );
    let mut summary = Vec::new();
    for (corr_label, correlation) in correlations() {
        for &skew in &[1.0f64, 4.0] {
            let fleet_cfg = FleetConfig {
                compute_skew: skew,
                dropout: BASE_DROPOUT,
                reliability: ReliabilityConfig {
                    dropout_skew: DROPOUT_SKEW,
                    correlation,
                },
                seed: opts.seed ^ 0x5EED,
                ..Default::default()
            };
            let exec = ExecutorConfig::Buffered(BufferedConfig {
                fleet: fleet_cfg.clone(),
                buffer_size: BUFFER,
                staleness: StalenessDiscount::Polynomial { alpha: 1.0 },
                server_mix: Some(BUFFER as f64 / exp.participants as f64),
                ..Default::default()
            });
            let fleet = Fleet::generate(n_clients, &fleet_cfg);

            // Uniform baseline first: it defines the cell family's
            // simulated-time budget and the shared accuracy target.
            let baseline = run_cell(
                &exp,
                &env,
                MethodKind::FedAvg,
                &exec,
                Selection::Uniform,
                None,
            );
            let budget_s = baseline.total_sim_time_s();
            let target = baseline.best().best_accuracy * 0.95;
            let mut per_policy = Vec::new();
            for (policy_label, selection) in policies() {
                let history = if matches!(selection, Selection::Uniform) {
                    baseline.clone()
                } else {
                    run_cell(
                        &exp,
                        &env,
                        MethodKind::FedAvg,
                        &exec,
                        selection,
                        Some(budget_s),
                    )
                };
                let stats = CellStats::measure(&history, &fleet, target);
                push_row(
                    &mut rows,
                    &mut csv,
                    "FedAvg",
                    corr_label,
                    skew,
                    policy_label,
                    &stats,
                );
                per_policy.push((policy_label, stats));
            }
            if corr_label != "indep" && skew > 1.0 {
                summarize(&mut summary, corr_label, skew, &per_policy);
            }
        }
    }

    // FedAvg vs FedDRL on the headline cell: speed-correlated dropout,
    // 4x compute skew, the reliability-aware policy for both.
    let headline_fleet = FleetConfig {
        compute_skew: 4.0,
        dropout: BASE_DROPOUT,
        reliability: ReliabilityConfig {
            dropout_skew: DROPOUT_SKEW,
            correlation: DropoutCorrelation::SpeedCorrelated { strength: 1.0 },
        },
        seed: opts.seed ^ 0x5EED,
        ..Default::default()
    };
    let fleet = Fleet::generate(n_clients, &headline_fleet);
    let exec = ExecutorConfig::Buffered(BufferedConfig {
        fleet: headline_fleet,
        buffer_size: BUFFER,
        staleness: StalenessDiscount::Polynomial { alpha: 1.0 },
        server_mix: Some(0.5),
        ..Default::default()
    });
    for method in [MethodKind::FedAvg, MethodKind::FedDrl] {
        let selection = Selection::ReliabilityAware {
            candidates: CANDIDATES,
        };
        let history = run_cell(&exp, &env, method, &exec, selection, None);
        // Equal-aggregation-count comparison, not equal-time: no budget
        // applies and no shared target exists, so 'h to target' is blank
        // (f32::INFINITY is never reached) — these two rows are
        // comparable only to each other (see the reading guide).
        let stats = CellStats::measure(&history, &fleet, f32::INFINITY);
        push_row(
            &mut rows,
            &mut csv,
            method.name(),
            "speed(1.0)",
            4.0,
            "reliability-aware",
            &stats,
        );
    }

    let table = render_table(
        &[
            "method",
            "correlation",
            "skew",
            "policy",
            "best acc",
            "aggs",
            "mean K'",
            "waste rate",
            "mean stale",
            "slow share",
            "sim hours",
            "h to target",
        ],
        &rows,
    );
    println!(
        "Reliability sweep: {} rounds, N = {n_clients}, K = {}, CE(0.6), buffered m = {BUFFER}, \
         base dropout {BASE_DROPOUT} spread x{DROPOUT_SKEW} per device\n",
        opts.rounds(),
        exp.participants
    );
    println!("{table}");
    for line in &summary {
        println!("{line}");
    }
    println!(
        "reading guide: every non-uniform FedAvg cell runs under its \
         family's uniform-baseline simulated-time budget, so 'best acc' \
         compares accuracy at equal virtual time. 'waste rate' is the \
         fraction of dispatch attempts lost to device dropouts (each one \
         a wasted slot); 'slow share' is the fraction of aggregated \
         updates contributed by the slower half of the fleet (0.5 = \
         perfectly balanced); 'h to target' is simulated hours until 95% \
         of the uniform baseline's best accuracy. Exception: the closing \
         FedAvg-vs-FedDRL pair compares the two aggregation strategies \
         at an equal aggregation count with no budget — those two rows \
         are comparable only to each other, and their 'h to target' is \
         blank."
    );
    write_artifact(&opts.out_path("reliability_sweep.txt"), &table);
    write_artifact(&opts.out_path("reliability_sweep.csv"), &csv);
}

/// Everything a sweep row reports about one run.
struct CellStats {
    best_acc: f32,
    aggregations: usize,
    mean_participation: f64,
    /// Fraction of dispatch attempts lost to device dropouts — a *rate*,
    /// so cells that fit different round counts into the same simulated
    /// time stay comparable.
    waste_rate: f64,
    mean_staleness: f64,
    slow_share: f64,
    sim_hours: f64,
    hours_to_target: Option<f64>,
}

impl CellStats {
    fn measure(history: &RunHistory, fleet: &Fleet, target: f32) -> Self {
        // Share of aggregated updates from the slower half of the fleet,
        // and dropout waste per dispatch attempt (sampled minus busy).
        let mut order: Vec<usize> = (0..fleet.len()).collect();
        order.sort_by(|&a, &b| {
            fleet
                .profile(a)
                .compute_s
                .total_cmp(&fleet.profile(b).compute_s)
        });
        let slow: Vec<usize> = order[fleet.len() / 2..].to_vec();
        let (mut from_slow, mut total) = (0usize, 0usize);
        let (mut dropouts, mut tried) = (0usize, 0usize);
        for r in &history.records {
            if let Some(h) = &r.hetero {
                total += h.aggregated_ids.len();
                from_slow += h.aggregated_ids.iter().filter(|c| slow.contains(c)).count();
                dropouts += h.dropouts;
                tried += r.selected.len() - h.busy;
            }
        }
        Self {
            best_acc: history.best().best_accuracy,
            aggregations: history
                .records
                .iter()
                .filter(|r| !r.impact_factors.is_empty())
                .count(),
            mean_participation: history.mean_participation(),
            waste_rate: if tried == 0 {
                0.0
            } else {
                dropouts as f64 / tried as f64
            },
            mean_staleness: history.mean_staleness(),
            slow_share: if total == 0 {
                0.0
            } else {
                from_slow as f64 / total as f64
            },
            sim_hours: history.total_sim_time_s() / 3600.0,
            hours_to_target: history.sim_time_to_accuracy_s(target).map(|s| s / 3600.0),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn push_row(
    rows: &mut Vec<Vec<String>>,
    csv: &mut String,
    method: &str,
    correlation: &str,
    skew: f64,
    policy: &str,
    stats: &CellStats,
) {
    let htt = stats
        .hours_to_target
        .map_or("-".to_string(), |h| format!("{h:.2}"));
    rows.push(vec![
        method.to_string(),
        correlation.to_string(),
        format!("{skew:.0}"),
        policy.to_string(),
        format!("{:.4}", stats.best_acc),
        stats.aggregations.to_string(),
        format!("{:.2}", stats.mean_participation),
        format!("{:.3}", stats.waste_rate),
        format!("{:.2}", stats.mean_staleness),
        format!("{:.2}", stats.slow_share),
        format!("{:.2}", stats.sim_hours),
        htt.clone(),
    ]);
    csv.push_str(&format!(
        "{method},{correlation},{skew},{policy},{},{},{},{},{},{},{},{htt}\n",
        stats.best_acc,
        stats.aggregations,
        stats.mean_participation,
        stats.waste_rate,
        stats.mean_staleness,
        stats.slow_share,
        stats.sim_hours,
    ));
}

/// The headline comparison lines for a speed-correlated cell family.
fn summarize(
    summary: &mut Vec<String>,
    corr: &str,
    skew: f64,
    per_policy: &[(&'static str, CellStats)],
) {
    let uniform = per_policy.iter().find(|(l, _)| *l == "uniform");
    let aware = per_policy.iter().find(|(l, _)| *l == "reliability-aware");
    let balanced = per_policy.iter().find(|(l, _)| *l == "staleness-balanced");
    if let (Some((_, u)), Some((_, a))) = (uniform, aware) {
        summary.push(format!(
            "{corr} skew {skew:.0}: dropout-waste rate {:.3} (uniform) vs {:.3} \
             (reliability-aware), {:.1}x reduction; acc at equal sim time \
             {:.4} vs {:.4}",
            u.waste_rate,
            a.waste_rate,
            u.waste_rate / a.waste_rate.max(1e-9),
            u.best_acc,
            a.best_acc,
        ));
    }
    if let (Some((_, u)), Some((_, b))) = (uniform, balanced) {
        summary.push(format!(
            "{corr} skew {skew:.0}: slow-half share of aggregated updates \
             {:.2} (uniform) vs {:.2} (staleness-balanced); mean staleness \
             {:.2} vs {:.2}",
            u.slow_share, b.slow_share, u.mean_staleness, b.mean_staleness,
        ));
    }
}

fn run_cell(
    exp: &ExperimentSpec,
    env: &(Dataset, Dataset, Partition, ModelSpec),
    method: MethodKind,
    executor: &ExecutorConfig,
    selection: Selection,
    sim_budget_s: Option<f64>,
) -> RunHistory {
    let (train, test, partition, model) = env;
    let mut fl_cfg = exp.fl_config();
    fl_cfg.executor = executor.clone();
    fl_cfg.selection = selection;
    // Generous aggregation cap: the simulated-time budget (for budgeted
    // cells) is what actually ends the run; unbudgeted cells get the
    // equal-aggregation count.
    fl_cfg.rounds = if sim_budget_s.is_some() {
        exp.rounds * exp.participants
    } else {
        (exp.rounds * exp.participants).div_ceil(BUFFER)
    };
    match method {
        MethodKind::FedAvg => {
            let mut strategy = FedAvg;
            let mut builder = SessionBuilder::new(model, train, test, partition, &mut strategy)
                .config(&fl_cfg)
                .dataset_name(exp.dataset.name());
            if let Some(budget_s) = sim_budget_s {
                builder = builder.observer(Box::new(SimTimeBudget { budget_s }));
            }
            builder
                .build()
                .unwrap_or_else(|e| panic!("invalid sweep cell: {e}"))
                .run()
                .unwrap_or_else(|e| panic!("sweep cell failed: {e}"))
        }
        MethodKind::FedDrl => {
            // `try_run_feddrl` has no observer hook, so a simulated-time
            // budget cannot be enforced on this arm — fail loudly rather
            // than silently break an equal-time comparison.
            assert!(
                sim_budget_s.is_none(),
                "FedDRL cells do not support a sim-time budget"
            );
            try_run_feddrl(
                model,
                train,
                test,
                partition,
                &fl_cfg,
                &exp.feddrl_config(),
                exp.dataset.name(),
            )
            .unwrap_or_else(|e| panic!("sweep cell failed: {e}"))
            .history
        }
        other => panic!("exp_reliability does not sweep {}", other.name()),
    }
}
