//! Figure 10 — convergence rate: communication rounds needed to reach a
//! target accuracy (the minimum best-accuracy over the compared methods,
//! per the paper's protocol) for each dataset × partition block.

use feddrl::prelude::*;
use feddrl_bench::{
    render_table, write_artifact, DatasetKind, ExpOptions, ExperimentSpec, MethodKind,
};

fn main() {
    let opts = ExpOptions::from_args();
    let mut rows = Vec::new();
    for dataset in DatasetKind::all() {
        for code in ["PA", "CE", "CN"] {
            let exp = ExperimentSpec::new(dataset, code, 10, &opts);
            let histories: Vec<_> = MethodKind::federated()
                .iter()
                .map(|m| feddrl_bench::load_or_run(&opts, &exp, *m, opts.scale))
                .collect();
            // Target = minimum of the methods' best accuracies.
            let target = histories
                .iter()
                .map(|h| h.best().best_accuracy)
                .fold(f32::INFINITY, f32::min);
            let mut row = vec![
                format!("{} {}", dataset.name(), code),
                format!("{:.1}%", target * 100.0),
            ];
            let feddrl_rounds =
                rounds_to_target(&histories[2].accuracies(), target).unwrap_or(exp.rounds);
            for h in &histories {
                match rounds_to_target(&h.accuracies(), target) {
                    Some(r) => {
                        let ratio = (r.max(1)) as f32 / (feddrl_rounds.max(1)) as f32;
                        row.push(format!("{r} ({ratio:.2}x)"));
                    }
                    None => row.push("n/a".into()),
                }
            }
            rows.push(row);
        }
    }
    let table = render_table(
        &[
            "block",
            "target acc",
            "FedAvg (vs DRL)",
            "FedProx (vs DRL)",
            "FedDRL",
        ],
        &rows,
    );
    println!("Figure 10: rounds to reach the target accuracy (10 clients)\n");
    println!("{table}");
    write_artifact(&opts.out_path("fig10_convergence.txt"), &table);
}
