//! Figure 1 — distribution of pills collected from 100 patients.
//!
//! Reproduces the motivating cluster-skew scenario: patients group into
//! three disease clusters (diabetes / hypertension / others); pill labels
//! are strongly popularity-skewed; each patient's pills come from their
//! disease cluster.

use feddrl::prelude::*;
use feddrl_bench::{render_table, write_artifact, ExpOptions};

fn main() {
    let opts = ExpOptions::from_args();
    let spec = SynthSpec::pill_like();
    let (train, _) = spec.generate(opts.seed);

    // 100 patients in 3 disease groups; diabetes is the "main" group.
    let method = PartitionMethod::ClusteredEqual {
        delta: 0.5,
        num_groups: 3,
        labels_per_client: 3,
    };
    let partition = method
        .partition(&train, 100, &mut Rng64::new(opts.seed))
        .expect("pill partition");
    let stats = PartitionStats::compute(&partition, &train);

    // Popularity skew (paper: common medications dominate).
    let counts = train.label_counts();
    let head = *counts.iter().max().unwrap();
    let tail = *counts.iter().min().unwrap();
    println!("Figure 1: pill distribution across 100 patients\n");
    println!(
        "pill popularity head/tail ratio: {head}/{tail} = {:.1}x (paper cites ~23x for Flickr-Mammal)",
        head as f64 / tail as f64
    );

    let groups = partition.groups().expect("cluster partition has groups");
    let names = ["diabetes", "hypertension", "others"];
    let mut rows = Vec::new();
    for (g, name) in names.iter().enumerate() {
        let members: Vec<usize> = (0..100).filter(|&c| groups[c] == g).collect();
        let pills: std::collections::BTreeSet<usize> = members
            .iter()
            .flat_map(|&c| partition.client(c).iter().map(|&i| train.label(i)))
            .collect();
        let samples: usize = members.iter().map(|&c| partition.client(c).len()).sum();
        rows.push(vec![
            name.to_string(),
            members.len().to_string(),
            pills.len().to_string(),
            samples.to_string(),
        ]);
    }
    let table = render_table(
        &["disease group", "#patients", "#distinct pills", "#samples"],
        &rows,
    );
    println!("{table}");
    assert!(
        stats.has_cluster_skew(),
        "pill scenario must be cluster-skewed"
    );
    println!(
        "cluster-skew detected: {} disjoint label-sharing groups",
        stats.label_sharing_components
    );
    write_artifact(&opts.out_path("fig1_pill_groups.txt"), &table);
}
