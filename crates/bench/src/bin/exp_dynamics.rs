//! Fleet-dynamics sweep (beyond the paper): churn, diurnal availability,
//! and adaptive structured dropout compared at equal simulated time.
//!
//! Production fleets are not the paper's fixed client set: devices join
//! and leave mid-run (churn), their availability follows a day/night
//! cycle (diurnal modulation of dropout and latency), and a device that
//! cannot finish a full local round before the deadline can still train
//! a *masked sub-model* (adaptive structured dropout) instead of wasting
//! the slot. This sweep puts the deadline executor on such a fleet and
//! compares the three fates of a predicted deadline-misser:
//!
//! * `drop` — the classic [`LatePolicy::Drop`]: the straggler's round is
//!   wasted (this cell defines the family's simulated-time budget);
//! * `carry-over` — [`LatePolicy::CarryOver`] with polynomial staleness
//!   discounting: late updates land a round later, stale;
//! * `structured` — [`StructuredDropoutConfig`]: the server asks the
//!   deadline-pressed device for the largest sub-model that still fits,
//!   and aggregates it mask-aware at full freshness.
//!
//! A `static/drop` reference cell (same devices, no churn, no diurnal
//! cycle) prices what the dynamics themselves cost. Every non-baseline
//! cell runs under the `dynamic/drop` cell's simulated-time budget, so
//! `best acc` compares accuracy at equal virtual time — the headline
//! check is `structured` beating `drop` on that column. A closing
//! FedAvg-vs-FedDRL pair re-runs the structured cell under both
//! aggregation strategies, FedDRL observing each update's untrained
//! fraction (`observe_availability`).

use feddrl::prelude::*;
use feddrl_bench::{
    render_table, write_artifact, DatasetKind, ExpOptions, ExperimentSpec, MethodKind,
    SimTimeBudget,
};
use feddrl_sim::prelude::*;

/// Candidate pool for the reliability-aware policy every cell uses.
const CANDIDATES: usize = 24;
/// Deadline percentile: the round deadline sits at this fraction of the
/// static fleet's full-model completion-time distribution, so a solid
/// minority of devices is deadline-pressed in every round.
const DEADLINE_PCT: f64 = 0.6;
/// Base per-round dropout probability before diurnal modulation.
const BASE_DROPOUT: f64 = 0.15;

/// The static device population: skewed compute so the deadline bites.
fn static_fleet(seed: u64) -> FleetConfig {
    FleetConfig {
        compute_skew: 4.0,
        dropout: BASE_DROPOUT,
        seed,
        ..Default::default()
    }
}

/// The same devices with the dynamics switched on. Churn gaps and the
/// diurnal period scale with the round deadline so the run sees a few
/// arrivals/departures per handful of rounds and several availability
/// cycles overall, regardless of the absolute time scale.
fn dynamic_fleet(seed: u64, deadline_s: f64) -> FleetConfig {
    FleetConfig {
        diurnal: Some(DiurnalConfig {
            period_s: 8.0 * deadline_s,
            dropout_amplitude: 0.4,
            latency_amplitude: 0.3,
        }),
        churn: Some(ChurnConfig {
            mean_arrival_gap_s: 1.5 * deadline_s,
            mean_departure_gap_s: 2.0 * deadline_s,
        }),
        ..static_fleet(seed)
    }
}

fn deadline_exec(
    fleet: FleetConfig,
    deadline_s: f64,
    late_policy: LatePolicy,
    structured: bool,
) -> ExecutorConfig {
    ExecutorConfig::Deadline(HeteroConfig {
        fleet,
        deadline_s: Some(deadline_s),
        late_policy,
        structured_dropout: structured.then(StructuredDropoutConfig::default),
        staleness: if matches!(late_policy, LatePolicy::CarryOver) {
            StalenessDiscount::Polynomial { alpha: 1.0 }
        } else {
            StalenessDiscount::None
        },
        parallel_dispatch: false,
    })
}

fn main() {
    let opts = ExpOptions::from_args();
    let n_clients = 32; // initial population; churn grows the universe
    let exp = ExperimentSpec::new(DatasetKind::MnistLike, "CE", n_clients, &opts);
    let env = exp.materialize(opts.scale);
    let fleet_seed = opts.seed ^ 0xD1A;

    // The deadline comes from the *static* completion-time distribution
    // (diurnal modulation leaves the compute/bandwidth draws untouched, so
    // it prices the same devices the dynamic cells run on).
    let param_count = env.3.build(exp.seed).param_count();
    let probe = DeadlineExecutor::new(
        HeteroConfig {
            fleet: static_fleet(fleet_seed),
            ..Default::default()
        },
        n_clients,
        param_count,
        exp.participants,
        exp.seed,
    );
    let deadline_s = probe
        .fleet()
        .completion_percentile_s(probe.upload_bytes(), DEADLINE_PCT);

    let cells: [(&str, ExecutorConfig); 4] = [
        (
            "dynamic/drop",
            deadline_exec(
                dynamic_fleet(fleet_seed, deadline_s),
                deadline_s,
                LatePolicy::Drop,
                false,
            ),
        ),
        (
            "static/drop",
            deadline_exec(
                static_fleet(fleet_seed),
                deadline_s,
                LatePolicy::Drop,
                false,
            ),
        ),
        (
            "dynamic/carry-over",
            deadline_exec(
                dynamic_fleet(fleet_seed, deadline_s),
                deadline_s,
                LatePolicy::CarryOver,
                false,
            ),
        ),
        (
            "dynamic/structured",
            deadline_exec(
                dynamic_fleet(fleet_seed, deadline_s),
                deadline_s,
                LatePolicy::Drop,
                true,
            ),
        ),
    ];

    let mut rows = Vec::new();
    let mut csv = String::from(
        "method,cell,best_acc,rounds,aggregated,masked,late,dropouts,\
         joins,departs,mean_staleness,sim_hours,hours_to_target\n",
    );

    // The dynamic/drop baseline runs first: it defines the family's
    // simulated-time budget and the shared accuracy target.
    let baseline = run_cell(&exp, &env, MethodKind::FedAvg, &cells[0].1, None);
    let budget_s = baseline.total_sim_time_s();
    let target = baseline.best().best_accuracy * 0.95;

    let mut by_cell = Vec::new();
    for (label, exec) in &cells {
        let history = if *label == "dynamic/drop" {
            baseline.clone()
        } else {
            run_cell(&exp, &env, MethodKind::FedAvg, exec, Some(budget_s))
        };
        let stats = CellStats::measure(&history, target);
        push_row(&mut rows, &mut csv, "FedAvg", label, &stats);
        by_cell.push((*label, stats));
    }

    // Closing pair: FedAvg vs FedDRL on the structured cell at an equal
    // round count (no budget — `try_run_feddrl` has no observer hook),
    // FedDRL observing each update's untrained model fraction.
    for method in [MethodKind::FedAvg, MethodKind::FedDrl] {
        let history = run_cell(&exp, &env, method, &cells[3].1, None);
        let stats = CellStats::measure(&history, f32::INFINITY);
        push_row(
            &mut rows,
            &mut csv,
            method.name(),
            "dynamic/structured",
            &stats,
        );
    }

    let table = render_table(
        &[
            "method",
            "cell",
            "best acc",
            "rounds",
            "aggregated",
            "masked",
            "late",
            "dropouts",
            "joins",
            "departs",
            "mean stale",
            "sim hours",
            "h to target",
        ],
        &rows,
    );
    println!(
        "Fleet-dynamics sweep: N = {n_clients} (+churn), K = {}, CE(0.6), deadline {:.1}s \
         (p{:.0} of static completion times), diurnal period {:.0}s, \
         mean churn gaps {:.0}s/{:.0}s (arrive/depart)\n",
        exp.participants,
        deadline_s,
        DEADLINE_PCT * 100.0,
        8.0 * deadline_s,
        1.5 * deadline_s,
        2.0 * deadline_s,
    );
    println!("{table}");

    let drop = by_cell.iter().find(|(l, _)| *l == "dynamic/drop");
    let structured = by_cell.iter().find(|(l, _)| *l == "dynamic/structured");
    if let (Some((_, d)), Some((_, s))) = (drop, structured) {
        println!(
            "headline: structured dropout {} plain drop at equal sim time \
             ({:.4} vs {:.4}); {} sub-model updates converted {} would-be \
             wasted straggler slots into aggregations",
            if s.best_acc > d.best_acc {
                "BEATS"
            } else {
                "does NOT beat"
            },
            s.best_acc,
            d.best_acc,
            s.masked,
            d.late.saturating_sub(s.late),
        );
    }
    println!(
        "reading guide: every non-baseline FedAvg cell runs under the \
         dynamic/drop cell's simulated-time budget, so 'best acc' compares \
         accuracy at equal virtual time. 'masked' counts sub-model updates \
         trained under structured dropout; 'late' counts deadline-missers \
         (wasted under drop, buffered under carry-over, mostly rescued \
         under structured); 'joins'/'departs' are churn events the \
         executor observed; 'h to target' is simulated hours to 95% of \
         the baseline's best accuracy. Exception: the closing FedAvg-vs-\
         FedDRL pair compares aggregation strategies at an equal round \
         count with no budget — those two rows are comparable only to \
         each other."
    );
    write_artifact(&opts.out_path("dynamics_sweep.txt"), &table);
    write_artifact(&opts.out_path("dynamics_sweep.csv"), &csv);
}

/// Everything a sweep row reports about one run.
struct CellStats {
    best_acc: f32,
    rounds: usize,
    aggregated: usize,
    masked: usize,
    late: usize,
    dropouts: usize,
    joins: usize,
    departs: usize,
    mean_staleness: f64,
    sim_hours: f64,
    hours_to_target: Option<f64>,
}

impl CellStats {
    fn measure(history: &RunHistory, target: f32) -> Self {
        let (mut aggregated, mut masked, mut late) = (0usize, 0usize, 0usize);
        let (mut dropouts, mut joins, mut departs) = (0usize, 0usize, 0usize);
        for r in &history.records {
            if let Some(h) = &r.hetero {
                aggregated += h.aggregated();
                masked += h.masked;
                late += h.stragglers;
                dropouts += h.dropouts;
                joins += h.joined;
                departs += h.departed;
            }
        }
        Self {
            best_acc: history.best().best_accuracy,
            rounds: history.records.len(),
            aggregated,
            masked,
            late,
            dropouts,
            joins,
            departs,
            mean_staleness: history.mean_staleness(),
            sim_hours: history.total_sim_time_s() / 3600.0,
            hours_to_target: history.sim_time_to_accuracy_s(target).map(|s| s / 3600.0),
        }
    }
}

fn push_row(
    rows: &mut Vec<Vec<String>>,
    csv: &mut String,
    method: &str,
    cell: &str,
    stats: &CellStats,
) {
    let htt = stats
        .hours_to_target
        .map_or("-".to_string(), |h| format!("{h:.2}"));
    rows.push(vec![
        method.to_string(),
        cell.to_string(),
        format!("{:.4}", stats.best_acc),
        stats.rounds.to_string(),
        stats.aggregated.to_string(),
        stats.masked.to_string(),
        stats.late.to_string(),
        stats.dropouts.to_string(),
        stats.joins.to_string(),
        stats.departs.to_string(),
        format!("{:.2}", stats.mean_staleness),
        format!("{:.2}", stats.sim_hours),
        htt.clone(),
    ]);
    csv.push_str(&format!(
        "{method},{cell},{},{},{},{},{},{},{},{},{},{},{htt}\n",
        stats.best_acc,
        stats.rounds,
        stats.aggregated,
        stats.masked,
        stats.late,
        stats.dropouts,
        stats.joins,
        stats.departs,
        stats.mean_staleness,
        stats.sim_hours,
    ));
}

fn run_cell(
    exp: &ExperimentSpec,
    env: &(Dataset, Dataset, Partition, ModelSpec),
    method: MethodKind,
    executor: &ExecutorConfig,
    sim_budget_s: Option<f64>,
) -> RunHistory {
    let (train, test, partition, model) = env;
    let mut fl_cfg = exp.fl_config();
    fl_cfg.executor = executor.clone();
    fl_cfg.selection = Selection::ReliabilityAware {
        candidates: CANDIDATES,
    };
    // Budgeted cells get round headroom — the simulated-time budget is
    // what actually ends the run (deadline rounds all cost about one
    // deadline of virtual time, so 2x is plenty).
    if sim_budget_s.is_some() {
        fl_cfg.rounds = exp.rounds * 2;
    }
    match method {
        MethodKind::FedAvg => {
            let mut strategy = FedAvg;
            let mut builder = SessionBuilder::new(model, train, test, partition, &mut strategy)
                .config(&fl_cfg)
                .dataset_name(exp.dataset.name());
            if let Some(budget_s) = sim_budget_s {
                builder = builder.observer(Box::new(SimTimeBudget { budget_s }));
            }
            builder
                .build()
                .unwrap_or_else(|e| panic!("invalid sweep cell: {e}"))
                .run()
                .unwrap_or_else(|e| panic!("sweep cell failed: {e}"))
        }
        MethodKind::FedDrl => {
            assert!(
                sim_budget_s.is_none(),
                "FedDRL cells do not support a sim-time budget"
            );
            let mut drl_cfg = exp.feddrl_config();
            drl_cfg.feddrl.observe_availability = true;
            try_run_feddrl(
                model,
                train,
                test,
                partition,
                &fl_cfg,
                &drl_cfg,
                exp.dataset.name(),
            )
            .unwrap_or_else(|e| panic!("sweep cell failed: {e}"))
            .history
        }
        other => panic!("exp_dynamics does not sweep {}", other.name()),
    }
}
