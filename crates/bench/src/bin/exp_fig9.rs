//! Figure 9 — average server computation time: DRL impact-factor
//! inference vs weighted aggregation, for the paper's two model sizes
//! (VGG-11 for CIFAR-100, CNN for MNIST/F-MNIST) plus the scaled MLP.
//!
//! Also prints the §3.5 communication-overhead table.

use feddrl_bench::stage_timing::{time_aggregation, time_drl_inference};
use feddrl_bench::{render_table, write_artifact, ExpOptions, Scale};
use feddrl_nn::zoo::ModelSpec;
use feddrl_sim::comm::CommModel;

fn main() {
    let opts = ExpOptions::from_args();
    let iters = match opts.scale {
        Scale::Quick => 3,
        _ => 10,
    };
    let k = 10;

    // Real parameter counts from the model zoo.
    let vgg_params = ModelSpec::Vgg11 { num_classes: 100 }.build(1).param_count();
    let cnn_params = ModelSpec::CnnMnist { num_classes: 10 }
        .build(1)
        .param_count();
    let mlp_params = ModelSpec::Mlp {
        in_dim: 64,
        hidden: vec![128],
        out_dim: 100,
    }
    .build(1)
    .param_count();

    let drl = time_drl_inference(k, iters);
    let mut rows = Vec::new();
    for (name, params) in [
        ("VGG-11 (CIFAR-100)", vgg_params),
        ("CNN (MNIST/F-MNIST)", cnn_params),
        ("MLP (scaled profile)", mlp_params),
    ] {
        let agg = time_aggregation(params, k, iters);
        rows.push(vec![
            name.to_string(),
            params.to_string(),
            format!("{:.3}", drl.median_micros / 1000.0),
            format!("{:.3}", drl.mean_micros / 1000.0),
            format!("{:.3}", agg.median_micros / 1000.0),
            format!("{:.3}", agg.mean_micros / 1000.0),
        ]);
    }
    // Median leads: on shared CI machines the mean absorbs scheduler-noise
    // outliers, and the paper's numbers are steady-state costs.
    let table = render_table(
        &[
            "model",
            "#params",
            "DRL median (ms)",
            "DRL mean (ms)",
            "Agg median (ms)",
            "Agg mean (ms)",
        ],
        &rows,
    );
    println!("Figure 9: average server computation time (K = {k})\n");
    println!("{table}");
    println!("paper reference: DRL ~3 ms constant; aggregation ~45 ms (VGG-11) / ~3 ms (CNN)\n");
    write_artifact(&opts.out_path("fig9_server_time.txt"), &table);

    // §3.5 communication overhead.
    let mut comm_rows = Vec::new();
    for (name, params) in [
        ("VGG-11", vgg_params),
        ("CNN", cnn_params),
        ("MLP", mlp_params),
    ] {
        let m = CommModel::new(params as u64, k as u64);
        comm_rows.push(vec![
            name.to_string(),
            m.fedavg_round().total().to_string(),
            m.feddrl_round().total().to_string(),
            format!("{:.2e}", m.feddrl_overhead_ratio()),
        ]);
    }
    let comm_table = render_table(
        &[
            "model",
            "FedAvg bytes/round",
            "FedDRL bytes/round",
            "overhead ratio",
        ],
        &comm_rows,
    );
    println!("sec 3.5: communication overhead of FedDRL vs FedAvg\n");
    println!("{comm_table}");
    write_artifact(&opts.out_path("fig9_comm_overhead.txt"), &comm_table);
}
