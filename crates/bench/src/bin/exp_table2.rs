//! Table 2 — characteristics of the non-IID partitioning methods.
//!
//! Unlike the paper, which asserts the ✓/× matrix, we *derive* it from
//! realized partitions via `PartitionStats` (cluster skew = multiple
//! label-sharing components; quantity imbalance = max/min sizes > 1.5).

use feddrl::prelude::*;
use feddrl_bench::{render_table, write_artifact, DatasetKind, ExpOptions};

fn mark(b: bool) -> String {
    if b {
        "yes".into()
    } else {
        "no".into()
    }
}

fn main() {
    let opts = ExpOptions::from_args();
    let (train, _) = DatasetKind::MnistLike
        .synth_spec(opts.scale)
        .generate(opts.seed);
    let mut rows = Vec::new();
    for (code, remark) in [
        ("PA", "#samples follows a power law [13]"),
        ("CE", "our proposed method"),
        ("CN", "our proposed method"),
        ("Equal", "FedAvg label-size imbalance [17] (sec 5.1)"),
        ("Non-equal", "FedAvg label-size imbalance [17] (sec 5.1)"),
        ("IID", "reference"),
    ] {
        let method = DatasetKind::MnistLike.partition_method(code, 0.6);
        let partition = method
            .partition(&train, 10, &mut Rng64::new(opts.seed))
            .expect("partition");
        let stats = PartitionStats::compute(&partition, &train);
        rows.push(vec![
            code.to_string(),
            mark(stats.has_cluster_skew()),
            mark(stats.has_label_size_imbalance()),
            mark(stats.has_quantity_imbalance()),
            format!("{:.2}", stats.quantity_ratio),
            format!("{:.3}", stats.gini),
            remark.to_string(),
        ]);
    }
    let table = render_table(
        &[
            "Partition",
            "Clustered Skew",
            "Label Size Imb.",
            "Quantity Imb.",
            "max/min",
            "Gini",
            "Remarks",
        ],
        &rows,
    );
    println!("Table 2: Characteristics of non-IID partition methods (derived from data)\n");
    println!("{table}");
    write_artifact(&opts.out_path("table2.txt"), &table);
}
