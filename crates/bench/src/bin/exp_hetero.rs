//! Heterogeneity sweep (beyond the paper): FedAvg vs FedDRL under
//! stragglers, dropouts and deadline-bounded rounds.
//!
//! Sweeps dropout rate × round deadline × device skew on the MNIST-like
//! CE(0.6) federation and reports, per cell: best accuracy, mean per-round
//! participation, total stragglers/dropouts, and total simulated
//! wall-clock. The deadline is set at the fleet's 70th completion-time
//! percentile, so a skewed fleet loses its slow tail while a homogeneous
//! one keeps everyone — isolating the cost of stragglers from the cost of
//! dropouts.

use feddrl::prelude::*;
use feddrl_bench::{
    render_table, write_artifact, DatasetKind, ExpOptions, ExperimentSpec, MethodKind,
};
use feddrl_sim::prelude::*;

fn main() {
    let opts = ExpOptions::from_args();
    let n_clients = 12;
    let exp = ExperimentSpec::new(DatasetKind::MnistLike, "CE", n_clients, &opts);

    // One deterministic environment shared by every cell.
    let env = exp.materialize(opts.scale);
    let params = env.3.build(1).param_count();

    // Per-client upload payload for deadline placement — taken from a
    // probe executor so it can never drift from what DeadlineExecutor
    // actually simulates.
    let upload_bytes = DeadlineExecutor::new(
        HeteroConfig::default(),
        n_clients,
        params,
        exp.participants,
        opts.seed,
    )
    .upload_bytes();

    let mut rows = Vec::new();
    let mut csv = String::from(
        "method,dropout,compute_skew,deadline_s,best_acc,mean_participation,\
         stragglers,dropouts,sim_hours\n",
    );
    for &skew in &[1.0f64, 4.0] {
        for &dropout in &[0.0f64, 0.2] {
            for bounded in [false, true] {
                let fleet = FleetConfig {
                    compute_skew: skew,
                    dropout,
                    seed: opts.seed ^ 0xF1EE7,
                    ..Default::default()
                };
                // Wait for the fastest ~70% of devices (a no-op when
                // skew = 1: every device finishes at the same instant).
                let deadline = bounded.then(|| {
                    Fleet::generate(n_clients, &fleet).completion_percentile_s(upload_bytes, 0.7)
                });
                for method in [MethodKind::FedAvg, MethodKind::FedDrl] {
                    let history = run_cell(&exp, &env, method, &fleet, deadline);
                    let best = history.best();
                    rows.push(vec![
                        method.name().to_string(),
                        format!("{dropout:.1}"),
                        format!("{skew:.0}"),
                        deadline.map_or("inf".to_string(), |d| format!("{d:.1}")),
                        format!("{:.4}", best.best_accuracy),
                        format!("{:.2}", history.mean_participation()),
                        history.total_stragglers().to_string(),
                        history.total_dropouts().to_string(),
                        format!("{:.2}", history.total_sim_time_s() / 3600.0),
                    ]);
                    csv.push_str(&format!(
                        "{},{dropout},{skew},{},{},{},{},{},{}\n",
                        method.name(),
                        deadline.map_or("inf".to_string(), |d| d.to_string()),
                        best.best_accuracy,
                        history.mean_participation(),
                        history.total_stragglers(),
                        history.total_dropouts(),
                        history.total_sim_time_s() / 3600.0,
                    ));
                }
            }
        }
    }

    let table = render_table(
        &[
            "method",
            "dropout",
            "skew",
            "deadline (s)",
            "best acc",
            "mean K'",
            "stragglers",
            "dropouts",
            "sim hours",
        ],
        &rows,
    );
    println!(
        "Heterogeneity sweep: {} rounds, N = {n_clients}, K = {}, CE(0.6), \
         deadline at the 70th completion percentile\n",
        opts.rounds(),
        exp.participants
    );
    println!("{table}");
    println!(
        "reading guide: dropout > 0 or a finite deadline on a skewed fleet \
         lowers mean per-round participation K' below K and raises the \
         straggler/dropout counts; the (dropout 0, inf, skew 1) rows match \
         the paper's ideal synchronous setting."
    );
    write_artifact(&opts.out_path("hetero_sweep.txt"), &table);
    write_artifact(&opts.out_path("hetero_sweep.csv"), &csv);
}

fn run_cell(
    exp: &ExperimentSpec,
    env: &(Dataset, Dataset, Partition, ModelSpec),
    method: MethodKind,
    fleet: &FleetConfig,
    deadline: Option<f64>,
) -> RunHistory {
    let (train, test, partition, model) = env;
    let mut fl_cfg = exp.fl_config();
    let ideal = fleet.dropout == 0.0 && deadline.is_none() && fleet.compute_skew == 1.0;
    if !ideal {
        fl_cfg.executor = ExecutorConfig::Deadline(HeteroConfig {
            fleet: fleet.clone(),
            deadline_s: deadline,
            late_policy: LatePolicy::Drop,
            ..Default::default()
        });
    }
    match method {
        MethodKind::FedAvg => {
            let mut strategy = FedAvg;
            SessionBuilder::new(model, train, test, partition, &mut strategy)
                .config(&fl_cfg)
                .dataset_name(exp.dataset.name())
                .build()
                .unwrap_or_else(|e| panic!("invalid sweep cell: {e}"))
                .run()
                .unwrap_or_else(|e| panic!("sweep cell failed: {e}"))
        }
        MethodKind::FedDrl => {
            try_run_feddrl(
                model,
                train,
                test,
                partition,
                &fl_cfg,
                &exp.feddrl_config(),
                exp.dataset.name(),
            )
            .unwrap_or_else(|e| panic!("sweep cell failed: {e}"))
            .history
        }
        other => panic!("exp_hetero does not sweep {}", other.name()),
    }
}
