//! Table 4 — top-1 test accuracy with FedAvg's label-size-imbalance
//! splits (Equal / Non-equal shards, §5.1) on the CIFAR-100-like dataset
//! for 10 and 100 clients.

use feddrl_bench::{
    improvements, render_table, write_artifact, DatasetKind, ExpOptions, ExperimentSpec,
    MethodKind, Scale,
};

fn main() {
    let opts = ExpOptions::from_args();
    let client_counts: &[usize] = match opts.scale {
        Scale::Quick => &[10],
        _ => &[10, 100],
    };
    let mut report = String::new();
    for &n_clients in client_counts {
        let mut rows = Vec::new();
        let mut acc = vec![vec![0.0f32; 2]; 4];
        for (mi, method) in MethodKind::all().iter().enumerate() {
            let mut row = vec![method.name().to_string()];
            for (pi, code) in ["Equal", "Non-equal"].iter().enumerate() {
                let exp = ExperimentSpec::new(DatasetKind::Cifar100Like, code, n_clients, &opts);
                let history = exp.run_method(*method, opts.scale);
                let best = history.best().best_accuracy * 100.0;
                acc[mi][pi] = best;
                row.push(format!("{best:.2}"));
                if *method == MethodKind::SingleSet {
                    acc[mi][1] = best;
                    row.push(format!("{best:.2}"));
                    break;
                }
            }
            rows.push(row);
        }
        let mut impr = vec!["impr.(a)".to_string()];
        for ((&avg, &prox), &drl) in acc[1].iter().zip(&acc[2]).zip(&acc[3]) {
            let (a, _) = improvements(drl, &[avg, prox]);
            impr.push(format!("{a:+.2}%"));
        }
        rows.push(impr);
        let table = render_table(&["method", "Equal", "Non-equal"], &rows);
        let block = format!(
            "Table 4 block: cifar100-like / {n_clients} clients (rounds = {})\n{table}\n",
            opts.rounds()
        );
        println!("{block}");
        report.push_str(&block);
    }
    write_artifact(&opts.out_path("table4.txt"), &report);
}
