//! Figure 4 — client × label bubble matrices for the PA / CE / CN
//! partitioning methods (10 clients, 10 labels).

use feddrl::prelude::*;
use feddrl_bench::{write_artifact, DatasetKind, ExpOptions};

fn main() {
    let opts = ExpOptions::from_args();
    let (train, _) = DatasetKind::MnistLike
        .synth_spec(opts.scale)
        .generate(opts.seed);
    let mut all = String::new();
    for code in ["PA", "CE", "CN"] {
        let method = DatasetKind::MnistLike.partition_method(code, 0.6);
        let partition = method
            .partition(&train, 10, &mut Rng64::new(opts.seed))
            .expect("partition");
        let stats = PartitionStats::compute(&partition, &train);
        let art = stats.render_bubbles();
        println!("Figure 4({code}): label x client sample bubbles ( . none, o small, O medium, @ large )\n");
        println!("{art}");
        all.push_str(&format!("== {code} ==\n{art}\n"));
        // CSV of the raw matrix for plotting.
        let mut csv = String::from("client,label,count\n");
        for (c, row) in stats.label_matrix.iter().enumerate() {
            for (l, &count) in row.iter().enumerate() {
                csv.push_str(&format!("{c},{l},{count}\n"));
            }
        }
        write_artifact(&opts.out_path(&format!("fig4_{code}.csv")), &csv);
    }
    write_artifact(&opts.out_path("fig4_bubbles.txt"), &all);
}
