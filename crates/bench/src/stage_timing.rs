//! Stage-specific timing drivers for Figure 9 (moved here from
//! `feddrl_sim::timing` so the sim crate stays strategy-free and the
//! federated simulator can depend on it).
//!
//! Both drivers run on real-size parameter vectors and report
//! [`StageTiming`] with mean *and* median per-invocation wall-clock; use
//! the median when comparing against the paper — shared CI machines skew
//! the mean with scheduler noise.

use feddrl::config::FedDrlConfig;
use feddrl::strategy::FedDrl;
use feddrl_fl::client::ClientSummary;
use feddrl_fl::strategy::{normalize_factors, weighted_average, Strategy};
use feddrl_nn::rng::Rng64;
use feddrl_sim::timing::{measure, StageTiming};

/// Time the DRL impact-factor computation (policy inference + Gaussian
/// sampling + softmax) for `k` participating clients.
pub fn time_drl_inference(k: usize, iters: usize) -> StageTiming {
    let cfg = FedDrlConfig {
        online_training: false,
        ..Default::default()
    };
    let mut strategy = FedDrl::new(k, &cfg);
    let summaries: Vec<ClientSummary> = (0..k)
        .map(|i| ClientSummary {
            client_id: i,
            n_samples: 100 + i,
            loss_before: 1.0 + i as f32 * 0.01,
            loss_after: 0.5,
        })
        .collect();
    let mut round = 0;
    measure(
        || {
            let alpha = strategy.impact_factors(round, &summaries);
            round += 1;
            std::hint::black_box(alpha);
        },
        iters,
    )
}

/// Time the weighted aggregation of `k` client models with `param_count`
/// parameters each.
pub fn time_aggregation(param_count: usize, k: usize, iters: usize) -> StageTiming {
    let mut rng = Rng64::new(42);
    let models: Vec<Vec<f32>> = (0..k)
        .map(|_| {
            let mut w = vec![0.0f32; param_count];
            rng.fill_uniform(&mut w, -1.0, 1.0);
            w
        })
        .collect();
    let alphas = normalize_factors(&vec![1.0; k]);
    measure(
        || {
            let refs: Vec<&[f32]> = models.iter().map(|m| m.as_slice()).collect();
            let out = weighted_average(&refs, &alphas);
            std::hint::black_box(out);
        },
        iters,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drl_inference_is_fast_and_model_size_independent() {
        let t = time_drl_inference(10, 5);
        // Paper reports ~3 ms; allow a generous envelope for CI machines.
        assert!(
            t.median_micros < 50_000.0,
            "DRL inference too slow: {} µs",
            t.median_micros
        );
    }

    #[test]
    fn aggregation_scales_with_model_size() {
        let small = time_aggregation(10_000, 10, 5);
        let large = time_aggregation(1_000_000, 10, 5);
        assert!(
            large.median_micros > small.median_micros * 3.0,
            "aggregation cost did not scale: {} vs {} µs",
            small.median_micros,
            large.median_micros
        );
    }
}
