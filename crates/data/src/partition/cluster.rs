//! Cluster-skew partitioners (paper "CE" and "CN", §4.1.1).
//!
//! The paper's novel non-IID type: labels are partitioned into clusters and
//! clients into groups; each group's clients draw their labels only from
//! their cluster. One *main* group holds `δ·N` clients — the higher δ, the
//! stronger the bias toward the main group's knowledge. CE keeps per-client
//! sample counts equal; CN additionally draws per-client counts from a
//! power law (quantity skew).

use super::{allocate_proportional, PartitionError};
use crate::dataset::Dataset;
use feddrl_nn::rng::Rng64;

/// Partition with cluster skew. `quantity_alpha = None` gives CE (equal
/// counts), `Some(alpha)` gives CN (power-law counts). Returns the per-
/// client index sets and the client → group assignment.
#[allow(clippy::type_complexity)]
pub(super) fn split(
    dataset: &Dataset,
    n_clients: usize,
    delta: f64,
    num_groups: usize,
    labels_per_client: usize,
    quantity_alpha: Option<f64>,
    rng: &mut Rng64,
) -> Result<(Vec<Vec<usize>>, Vec<usize>), PartitionError> {
    let n_labels = dataset.num_classes();
    if !(0.0..=1.0).contains(&delta) {
        return Err(PartitionError::BadParameter(format!(
            "delta must be in [0,1], got {delta}"
        )));
    }
    if num_groups < 2 {
        return Err(PartitionError::BadParameter(
            "cluster skew needs at least 2 groups".into(),
        ));
    }
    if num_groups > n_clients {
        return Err(PartitionError::BadParameter(format!(
            "{num_groups} groups but only {n_clients} clients"
        )));
    }
    if labels_per_client == 0 {
        return Err(PartitionError::BadParameter(
            "labels_per_client must be positive".into(),
        ));
    }
    // Every group's label cluster must be able to supply labels_per_client
    // distinct labels.
    if n_labels / num_groups < labels_per_client {
        return Err(PartitionError::NotEnoughLabels {
            labels: n_labels,
            needed: labels_per_client * num_groups,
        });
    }
    if let Some(alpha) = quantity_alpha {
        if alpha <= 0.0 {
            return Err(PartitionError::BadParameter(format!(
                "power-law alpha must be positive, got {alpha}"
            )));
        }
    }

    // ---- Label clusters: contiguous near-equal chunks over a shuffled
    // label ring (shuffling decorrelates cluster identity from label id).
    let mut ring: Vec<usize> = (0..n_labels).collect();
    rng.shuffle(&mut ring);
    let base = n_labels / num_groups;
    let extra = n_labels % num_groups;
    let mut clusters: Vec<Vec<usize>> = Vec::with_capacity(num_groups);
    let mut cursor = 0;
    for g in 0..num_groups {
        let take = base + usize::from(g < extra);
        clusters.push(ring[cursor..cursor + take].to_vec());
        cursor += take;
    }

    // ---- Client groups: main group gets round(δ·N) (at least 1), the
    // rest split evenly.
    let main_size =
        ((delta * n_clients as f64).round() as usize).clamp(1, n_clients - (num_groups - 1));
    let rest = n_clients - main_size;
    let minor = num_groups - 1;
    let mut groups = vec![0usize; n_clients];
    let mut assigned = main_size;
    for g in 1..num_groups {
        let take = rest / minor + usize::from(g - 1 < rest % minor);
        for item in groups.iter_mut().skip(assigned).take(take) {
            *item = g;
        }
        assigned += take;
    }
    debug_assert_eq!(assigned, n_clients);

    // ---- Per-client label choice within the group's cluster. Labels are
    // dealt cyclically over a per-group shuffled ring (staggered on wrap,
    // as in the PA partitioner) so every cluster label receives nearly
    // equal demand — this is what lets CE deliver *equal* sample counts
    // from finite per-label pools.
    let mut client_labels: Vec<Vec<usize>> = vec![Vec::new(); n_clients];
    for (g, cluster) in clusters.iter().enumerate().take(num_groups) {
        let mut ring = cluster.clone();
        rng.shuffle(&mut ring);
        let l = ring.len();
        let mut cursor = 0usize;
        for (c, labels) in client_labels.iter_mut().enumerate() {
            if groups[c] != g {
                continue;
            }
            while labels.len() < labels_per_client {
                let lab = ring[(cursor + cursor / l) % l];
                cursor += 1;
                if !labels.contains(&lab) {
                    labels.push(lab);
                }
            }
        }
    }

    // ---- Per-client sample budgets.
    //
    // CE demands *equal* sizes across all clients, so the budget is the
    // worst-case per-client capacity over groups (surplus samples in richer
    // clusters go unused, exactly as when a real CE split subsamples).
    // CN draws power-law weights and spends each group's full capacity
    // proportionally to them.
    let mut group_capacity = vec![0usize; num_groups];
    let pools_by_label = dataset.indices_by_label();
    for (g, cluster) in clusters.iter().enumerate() {
        group_capacity[g] = cluster.iter().map(|&l| pools_by_label[l].len()).sum();
    }
    let mut group_size = vec![0usize; num_groups];
    for &g in groups.iter() {
        group_size[g] += 1;
    }
    let budgets: Vec<usize> = match quantity_alpha {
        None => {
            let spc = (0..num_groups)
                .map(|g| group_capacity[g] / group_size[g].max(1))
                .min()
                .unwrap_or(0)
                .max(1);
            vec![spc; n_clients]
        }
        Some(alpha) => {
            let mut order: Vec<usize> = (0..n_clients).collect();
            rng.shuffle(&mut order);
            let mut w = vec![0.0f64; n_clients];
            for (rank, &c) in order.iter().enumerate() {
                w[c] = ((rank + 1) as f64).powf(-alpha);
            }
            let mut group_w = vec![0.0f64; num_groups];
            for (c, &g) in groups.iter().enumerate() {
                group_w[g] += w[c];
            }
            (0..n_clients)
                .map(|c| {
                    let g = groups[c];
                    ((w[c] / group_w[g]) * group_capacity[g] as f64).floor() as usize
                })
                .map(|b| b.max(1))
                .collect()
        }
    };

    // ---- Allocation. First pass: split each label's pool among its owners
    // proportionally to their demand (budget/labels_per_client), capped at
    // the total demand so CE never overshoots. Second pass: clients short
    // of their budget top up from leftover pools of their own labels.
    let mut owners: Vec<Vec<usize>> = vec![Vec::new(); n_labels];
    for (c, labels) in client_labels.iter().enumerate() {
        for &l in labels {
            owners[l].push(c);
        }
    }
    let mut pools = pools_by_label;
    for pool in pools.iter_mut() {
        rng.shuffle(pool);
    }
    let mut pool_cursor = vec![0usize; n_labels];
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n_clients];
    for (label, pool) in pools.iter().enumerate() {
        let own = &owners[label];
        if own.is_empty() || pool.is_empty() {
            continue;
        }
        let want: Vec<f64> = own
            .iter()
            .map(|&c| budgets[c] as f64 / labels_per_client as f64)
            .collect();
        let total_want: f64 = want.iter().sum();
        let take_total = (total_want.round() as usize).min(pool.len());
        let alloc = allocate_proportional(take_total, &want);
        let mut cursor = 0;
        for (&client, &take) in own.iter().zip(alloc.iter()) {
            out[client].extend_from_slice(&pool[cursor..cursor + take]);
            cursor += take;
        }
        pool_cursor[label] = cursor;
    }
    for c in 0..n_clients {
        let mut deficit = budgets[c].saturating_sub(out[c].len());
        if deficit == 0 {
            continue;
        }
        for &label in &client_labels[c] {
            if deficit == 0 {
                break;
            }
            let remaining = pools[label].len() - pool_cursor[label];
            let take = deficit.min(remaining);
            let start = pool_cursor[label];
            out[c].extend_from_slice(&pools[label][start..start + take]);
            pool_cursor[label] += take;
            deficit -= take;
        }
    }

    // Guarantee non-emptiness (possible when a tiny power-law weight
    // floors to zero for every owned label).
    for c in 0..n_clients {
        if out[c].is_empty() {
            let donor = (0..n_clients)
                .filter(|&d| out[d].len() > 1)
                .max_by_key(|&d| out[d].len())
                .ok_or_else(|| PartitionError::BadParameter("no donor sample available".into()))?;
            let sample = out[donor].pop().expect("donor checked non-empty");
            out[c].push(sample);
        }
    }
    Ok((out, groups))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthSpec;
    use std::collections::HashSet;

    fn train() -> Dataset {
        SynthSpec::mnist_like().generate(13).0
    }

    #[test]
    fn main_group_holds_delta_fraction() {
        let ds = train();
        let mut rng = Rng64::new(1);
        let (_, groups) = split(&ds, 100, 0.6, 3, 2, None, &mut rng).unwrap();
        let main = groups.iter().filter(|&&g| g == 0).count();
        assert_eq!(main, 60);
        let g1 = groups.iter().filter(|&&g| g == 1).count();
        let g2 = groups.iter().filter(|&&g| g == 2).count();
        assert_eq!(g1 + g2, 40);
        assert!((g1 as i64 - g2 as i64).abs() <= 1);
    }

    #[test]
    fn client_labels_stay_inside_group_cluster() {
        let ds = train();
        let mut rng = Rng64::new(2);
        let (parts, groups) = split(&ds, 30, 0.6, 3, 2, None, &mut rng).unwrap();
        // Reconstruct the label set of each group from the assignment.
        let mut group_labels: Vec<HashSet<usize>> = vec![HashSet::new(); 3];
        for (c, part) in parts.iter().enumerate() {
            for &i in part {
                group_labels[groups[c]].insert(ds.label(i));
            }
        }
        // Groups' observed label sets must be pairwise disjoint (that is
        // the defining property of cluster skew).
        for a in 0..3 {
            for b in (a + 1)..3 {
                assert!(
                    group_labels[a].is_disjoint(&group_labels[b]),
                    "groups {a} and {b} share labels"
                );
            }
        }
    }

    #[test]
    fn ce_sample_counts_are_near_equal_within_groups() {
        let ds = train();
        let mut rng = Rng64::new(3);
        let (parts, _) = split(&ds, 10, 0.6, 3, 2, None, &mut rng).unwrap();
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        // CE: all clients demand equal shares; allow modest imbalance from
        // pool granularity.
        let max = *sizes.iter().max().unwrap() as f64;
        let min = *sizes.iter().min().unwrap() as f64;
        assert!(max / min < 2.6, "CE sizes too skewed: {sizes:?}");
    }

    #[test]
    fn cn_sample_counts_are_skewed() {
        let ds = train();
        let mut rng = Rng64::new(4);
        let (parts, _) = split(&ds, 10, 0.6, 3, 2, Some(1.2), &mut rng).unwrap();
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        let max = *sizes.iter().max().unwrap() as f64;
        let min = *sizes.iter().min().unwrap() as f64;
        assert!(max / min > 2.5, "CN sizes too balanced: {sizes:?}");
    }

    #[test]
    fn each_client_has_at_most_lpc_labels() {
        let ds = train();
        let mut rng = Rng64::new(5);
        let (parts, _) = split(&ds, 20, 0.4, 3, 2, None, &mut rng).unwrap();
        for part in &parts {
            let labels: HashSet<usize> = part.iter().map(|&i| ds.label(i)).collect();
            assert!(labels.len() <= 2);
        }
    }

    #[test]
    fn rejects_bad_delta() {
        let ds = train();
        let mut rng = Rng64::new(6);
        assert!(matches!(
            split(&ds, 10, 1.5, 3, 2, None, &mut rng),
            Err(PartitionError::BadParameter(_))
        ));
    }

    #[test]
    fn rejects_one_group() {
        let ds = train();
        let mut rng = Rng64::new(7);
        assert!(matches!(
            split(&ds, 10, 0.6, 1, 2, None, &mut rng),
            Err(PartitionError::BadParameter(_))
        ));
    }

    #[test]
    fn rejects_too_small_clusters() {
        let ds = train(); // 10 labels
        let mut rng = Rng64::new(8);
        // 5 groups × 2 labels = at least 10 labels needed per group of 2 →
        // each cluster has 2 labels, exactly enough; 5 groups × 3 labels
        // would overflow.
        assert!(split(&ds, 10, 0.6, 5, 2, None, &mut rng).is_ok());
        assert!(matches!(
            split(&ds, 10, 0.6, 5, 3, None, &mut rng),
            Err(PartitionError::NotEnoughLabels { .. })
        ));
    }

    #[test]
    fn delta_extremes_are_clamped_sanely() {
        let ds = train();
        let mut rng = Rng64::new(9);
        // δ=1.0 would leave minor groups empty; implementation reserves one
        // client per minor group.
        let (_, groups) = split(&ds, 10, 1.0, 3, 2, None, &mut rng).unwrap();
        for g in 0..3 {
            assert!(groups.contains(&g), "group {g} empty");
        }
    }
}
