//! Pareto label-skew partitioner (paper "PA").
//!
//! Each client holds a fixed number of labels; a label's sample pool is
//! divided among the clients that own it with power-law shares, following
//! the protocol of [12, 13]: "the number of samples of a label among
//! clients follows a power law".

use super::{allocate_proportional, PartitionError};
use crate::dataset::Dataset;
use feddrl_nn::rng::Rng64;

pub(super) fn split(
    dataset: &Dataset,
    n_clients: usize,
    labels_per_client: usize,
    alpha: f64,
    rng: &mut Rng64,
) -> Result<Vec<Vec<usize>>, PartitionError> {
    let n_labels = dataset.num_classes();
    if labels_per_client == 0 {
        return Err(PartitionError::BadParameter(
            "labels_per_client must be positive".into(),
        ));
    }
    if labels_per_client > n_labels {
        return Err(PartitionError::NotEnoughLabels {
            labels: n_labels,
            needed: labels_per_client,
        });
    }
    if alpha <= 0.0 {
        return Err(PartitionError::BadParameter(format!(
            "power-law alpha must be positive, got {alpha}"
        )));
    }

    // Assign labels to clients cyclically over a shuffled label ring so
    // every label gets ≈ n_clients·lpc/n_labels owners and every client
    // gets exactly `labels_per_client` distinct labels. Each pass over the
    // ring is staggered by one position (`cursor / n_labels`), otherwise
    // consecutive passes would re-create the same disjoint label tuples and
    // accidentally manufacture cluster skew.
    let mut ring: Vec<usize> = (0..n_labels).collect();
    rng.shuffle(&mut ring);
    let mut client_labels: Vec<Vec<usize>> = Vec::with_capacity(n_clients);
    let mut cursor = 0usize;
    for _ in 0..n_clients {
        let mut labels = Vec::with_capacity(labels_per_client);
        while labels.len() < labels_per_client {
            let l = ring[(cursor + cursor / n_labels) % n_labels];
            cursor += 1;
            if !labels.contains(&l) {
                labels.push(l);
            }
        }
        client_labels.push(labels);
    }

    // Owners per label.
    let mut owners: Vec<Vec<usize>> = vec![Vec::new(); n_labels];
    for (c, labels) in client_labels.iter().enumerate() {
        for &l in labels {
            owners[l].push(c);
        }
    }

    // Shuffled per-label pools.
    let mut pools = dataset.indices_by_label();
    for pool in pools.iter_mut() {
        rng.shuffle(pool);
    }

    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n_clients];
    for (label, pool) in pools.iter().enumerate() {
        let own = &owners[label];
        if own.is_empty() || pool.is_empty() {
            continue;
        }
        // Power-law shares over a per-label random owner order, so heavy
        // owners differ from label to label.
        let mut order: Vec<usize> = own.clone();
        rng.shuffle(&mut order);
        let want: Vec<f64> = (0..order.len())
            .map(|rank| ((rank + 1) as f64).powf(-alpha))
            .collect();
        let alloc = allocate_proportional(pool.len(), &want);
        let mut cursor = 0;
        for (&client, &take) in order.iter().zip(alloc.iter()) {
            out[client].extend_from_slice(&pool[cursor..cursor + take]);
            cursor += take;
        }
    }

    // Power-law floors can starve a client that drew last ranks for both of
    // its labels; guarantee non-emptiness by stealing one sample from the
    // richest client holding a shared label (any sample keeps validity).
    for c in 0..n_clients {
        if out[c].is_empty() {
            let donor = (0..n_clients)
                .filter(|&d| out[d].len() > 1)
                .max_by_key(|&d| out[d].len())
                .ok_or_else(|| PartitionError::BadParameter("no donor sample available".into()))?;
            let sample = out[donor].pop().expect("donor checked non-empty");
            out[c].push(sample);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthSpec;

    fn train() -> Dataset {
        SynthSpec::mnist_like().generate(9).0
    }

    #[test]
    fn each_client_has_exactly_two_labels() {
        let ds = train();
        let mut rng = Rng64::new(1);
        let parts = split(&ds, 10, 2, 1.2, &mut rng).unwrap();
        for (c, part) in parts.iter().enumerate() {
            let mut labels: Vec<usize> = part.iter().map(|&i| ds.label(i)).collect();
            labels.sort_unstable();
            labels.dedup();
            assert!(
                labels.len() <= 2,
                "client {c} holds {} labels (expected ≤ 2)",
                labels.len()
            );
            assert!(!part.is_empty());
        }
    }

    #[test]
    fn quantity_skew_is_present() {
        let ds = train();
        let mut rng = Rng64::new(2);
        let parts = split(&ds, 10, 2, 1.2, &mut rng).unwrap();
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        let max = *sizes.iter().max().unwrap() as f64;
        let min = *sizes.iter().min().unwrap() as f64;
        assert!(max / min > 1.5, "power-law split too balanced: {sizes:?}");
    }

    #[test]
    fn rejects_zero_labels_per_client() {
        let ds = train();
        let mut rng = Rng64::new(3);
        assert!(matches!(
            split(&ds, 10, 0, 1.2, &mut rng),
            Err(PartitionError::BadParameter(_))
        ));
    }

    #[test]
    fn rejects_more_labels_than_exist() {
        let ds = train();
        let mut rng = Rng64::new(4);
        assert!(matches!(
            split(&ds, 10, 11, 1.2, &mut rng),
            Err(PartitionError::NotEnoughLabels { .. })
        ));
    }

    #[test]
    fn rejects_non_positive_alpha() {
        let ds = train();
        let mut rng = Rng64::new(5);
        assert!(matches!(
            split(&ds, 10, 2, 0.0, &mut rng),
            Err(PartitionError::BadParameter(_))
        ));
    }

    #[test]
    fn many_clients_all_nonempty() {
        let ds = train();
        let mut rng = Rng64::new(6);
        let parts = split(&ds, 100, 2, 1.5, &mut rng).unwrap();
        assert!(parts.iter().all(|p| !p.is_empty()));
    }
}
