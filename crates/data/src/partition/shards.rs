//! FedAvg label-size-imbalance shard partitioners (paper §5.1, after [17]).
//!
//! The dataset is sorted by label and cut into contiguous shards; clients
//! receive whole shards. *Equal*: `shards_per_client·N` shards, every client
//! gets exactly `shards_per_client`. *Non-equal*: `10·N` shards, each client
//! draws a shard count uniformly from `[min, max]` (paper: 6–14).

use super::PartitionError;
use crate::dataset::Dataset;
use feddrl_nn::rng::Rng64;

/// Sort indices by label and cut into `n_shards` near-equal chunks.
fn make_shards(dataset: &Dataset, n_shards: usize) -> Vec<Vec<usize>> {
    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    indices.sort_by_key(|&i| dataset.label(i));
    let base = indices.len() / n_shards;
    let extra = indices.len() % n_shards;
    let mut shards = Vec::with_capacity(n_shards);
    let mut cursor = 0;
    for s in 0..n_shards {
        let take = base + usize::from(s < extra);
        shards.push(indices[cursor..cursor + take].to_vec());
        cursor += take;
    }
    shards
}

pub(super) fn split_equal(
    dataset: &Dataset,
    n_clients: usize,
    shards_per_client: usize,
    rng: &mut Rng64,
) -> Result<Vec<Vec<usize>>, PartitionError> {
    if shards_per_client == 0 {
        return Err(PartitionError::BadParameter(
            "shards_per_client must be positive".into(),
        ));
    }
    let n_shards = n_clients * shards_per_client;
    if dataset.len() < n_shards {
        return Err(PartitionError::NotEnoughSamples {
            samples: dataset.len(),
            clients: n_clients,
        });
    }
    let mut shards = make_shards(dataset, n_shards);
    let mut order: Vec<usize> = (0..n_shards).collect();
    rng.shuffle(&mut order);
    let mut out = vec![Vec::new(); n_clients];
    for (slot, &shard_id) in order.iter().enumerate() {
        out[slot % n_clients].append(&mut shards[shard_id]);
    }
    Ok(out)
}

pub(super) fn split_non_equal(
    dataset: &Dataset,
    n_clients: usize,
    min_shards: usize,
    max_shards: usize,
    rng: &mut Rng64,
) -> Result<Vec<Vec<usize>>, PartitionError> {
    if min_shards == 0 || min_shards > max_shards {
        return Err(PartitionError::BadParameter(format!(
            "invalid shard range [{min_shards}, {max_shards}]"
        )));
    }
    let n_shards = 10 * n_clients;
    if dataset.len() < n_shards {
        return Err(PartitionError::NotEnoughSamples {
            samples: dataset.len(),
            clients: n_clients,
        });
    }
    let mut shards = make_shards(dataset, n_shards);
    let mut order: Vec<usize> = (0..n_shards).collect();
    rng.shuffle(&mut order);

    // Draw desired counts, guarantee one shard per client up front, then
    // satisfy the rest of each client's draw while shards remain.
    let draws: Vec<usize> = (0..n_clients)
        .map(|_| rng.int_range(min_shards, max_shards))
        .collect();
    let mut out = vec![Vec::new(); n_clients];
    let mut cursor = 0;
    for client in out.iter_mut().take(n_clients) {
        client.append(&mut shards[order[cursor]]);
        cursor += 1;
    }
    'outer: for c in 0..n_clients {
        // One shard already delivered above.
        for _ in 1..draws[c] {
            if cursor >= n_shards {
                break 'outer;
            }
            out[c].append(&mut shards[order[cursor]]);
            cursor += 1;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthSpec;
    use std::collections::HashSet;

    fn train() -> Dataset {
        SynthSpec::mnist_like().generate(21).0
    }

    #[test]
    fn equal_covers_everything_with_two_shards_each() {
        let ds = train();
        let mut rng = Rng64::new(1);
        let parts = split_equal(&ds, 10, 2, &mut rng).unwrap();
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, ds.len());
        // Sorted shards of 2 per client → at most ~4 labels per client
        // (each shard spans at most a label boundary).
        for part in &parts {
            let labels: HashSet<usize> = part.iter().map(|&i| ds.label(i)).collect();
            assert!(
                labels.len() <= 4,
                "equal-shard client saw {} labels",
                labels.len()
            );
        }
    }

    #[test]
    fn equal_sizes_are_near_equal() {
        let ds = train();
        let mut rng = Rng64::new(2);
        let parts = split_equal(&ds, 10, 2, &mut rng).unwrap();
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 2, "equal shards uneven: {sizes:?}");
    }

    #[test]
    fn non_equal_produces_quantity_skew() {
        let ds = train(); // 4000 samples, 10 clients → 100 shards of 40
        let mut rng = Rng64::new(3);
        let parts = split_non_equal(&ds, 10, 6, 14, &mut rng).unwrap();
        assert!(parts.iter().all(|p| !p.is_empty()));
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        let max = *sizes.iter().max().unwrap() as f64;
        let min = *sizes.iter().min().unwrap() as f64;
        assert!(max / min >= 1.3, "non-equal too balanced: {sizes:?}");
    }

    #[test]
    fn non_equal_shard_counts_within_draw_range() {
        let ds = train();
        let mut rng = Rng64::new(4);
        let parts = split_non_equal(&ds, 10, 6, 14, &mut rng).unwrap();
        // 100 shards, draws sum in [60, 140]; with truncation the per-client
        // shard count is ≤ 14 shards ≈ 14*40 samples.
        for part in &parts {
            assert!(part.len() <= 14 * 41);
        }
    }

    #[test]
    fn rejects_bad_shard_range() {
        let ds = train();
        let mut rng = Rng64::new(5);
        assert!(matches!(
            split_non_equal(&ds, 10, 0, 5, &mut rng),
            Err(PartitionError::BadParameter(_))
        ));
        assert!(matches!(
            split_non_equal(&ds, 10, 8, 5, &mut rng),
            Err(PartitionError::BadParameter(_))
        ));
    }

    #[test]
    fn rejects_too_many_shards_for_dataset() {
        let ds = train(); // 4000 samples
        let mut rng = Rng64::new(6);
        assert!(matches!(
            split_equal(&ds, 4000, 2, &mut rng),
            Err(PartitionError::NotEnoughSamples { .. })
        ));
    }

    #[test]
    fn shards_are_label_contiguous() {
        let ds = train();
        let shards = make_shards(&ds, 100);
        for shard in &shards {
            let labels: HashSet<usize> = shard.iter().map(|&i| ds.label(i)).collect();
            assert!(labels.len() <= 2, "shard spans {} labels", labels.len());
        }
    }
}
