//! IID reference split: shuffle once, deal evenly.

use crate::dataset::Dataset;
use feddrl_nn::rng::Rng64;

/// Shuffle all sample indices and split them into `n_clients` near-equal
/// contiguous chunks (sizes differ by at most one).
pub(super) fn split(dataset: &Dataset, n_clients: usize, rng: &mut Rng64) -> Vec<Vec<usize>> {
    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    rng.shuffle(&mut indices);
    let base = indices.len() / n_clients;
    let extra = indices.len() % n_clients;
    let mut out = Vec::with_capacity(n_clients);
    let mut cursor = 0;
    for c in 0..n_clients {
        let take = base + usize::from(c < extra);
        out.push(indices[cursor..cursor + take].to_vec());
        cursor += take;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthSpec;

    #[test]
    fn covers_every_sample_evenly() {
        let (train, _) = SynthSpec::mnist_like().generate(1);
        let mut rng = Rng64::new(2);
        let parts = split(&train, 7, &mut rng);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, train.len());
        let max = parts.iter().map(|p| p.len()).max().unwrap();
        let min = parts.iter().map(|p| p.len()).min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn label_distribution_is_roughly_uniform() {
        let (train, _) = SynthSpec::mnist_like().generate(3);
        let mut rng = Rng64::new(4);
        let parts = split(&train, 4, &mut rng);
        // Each client should see close to train_len/(4*10) samples per label.
        for part in &parts {
            let mut counts = vec![0usize; train.num_classes()];
            for &i in part {
                counts[train.label(i)] += 1;
            }
            let expected = part.len() as f64 / train.num_classes() as f64;
            for (l, &c) in counts.iter().enumerate() {
                assert!(
                    (c as f64) > expected * 0.4 && (c as f64) < expected * 1.8,
                    "label {l} count {c} far from IID expectation {expected}"
                );
            }
        }
    }
}
