//! Non-IID data partitioners.
//!
//! Implements every client-partitioning scheme evaluated in the paper
//! (Table 2, §4.1.1 and §5.1):
//!
//! * **PA** — Pareto label-skew: fixed labels per client, per-label sample
//!   counts following a power law ([12, 13]);
//! * **CE** — *Clustered-Equal*, the paper's novel cluster-skew: label
//!   clusters owned by client groups, one "main" group holding `δ·N`
//!   clients, equal samples per client;
//! * **CN** — *Clustered-Non-Equal*: CE plus power-law quantity skew;
//! * **Equal / Non-equal shards** — FedAvg's label-size-imbalance splits
//!   (\[17\], §5.1);
//! * **IID** — uniform reference split.
//!
//! A [`Partition`] is a list of disjoint index sets into one shared
//! training [`Dataset`] plus optional group metadata. All methods are
//! deterministic given the caller's [`Rng64`].

mod cluster;
mod iid;
mod pareto;
mod shards;

use crate::dataset::Dataset;
use feddrl_nn::rng::Rng64;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised when a partition request cannot be satisfied.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionError {
    /// Zero clients requested.
    NoClients,
    /// The dataset has fewer samples than clients.
    NotEnoughSamples {
        /// Samples available.
        samples: usize,
        /// Clients requested.
        clients: usize,
    },
    /// A method parameter is outside its valid range.
    BadParameter(String),
    /// The label space is too small for the requested scheme.
    NotEnoughLabels {
        /// Labels available.
        labels: usize,
        /// Labels needed.
        needed: usize,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::NoClients => write!(f, "cannot partition for zero clients"),
            PartitionError::NotEnoughSamples { samples, clients } => write!(
                f,
                "dataset has {samples} samples but {clients} clients were requested"
            ),
            PartitionError::BadParameter(msg) => write!(f, "bad partition parameter: {msg}"),
            PartitionError::NotEnoughLabels { labels, needed } => {
                write!(f, "scheme needs {needed} labels but dataset has {labels}")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// A partitioning scheme with its parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PartitionMethod {
    /// Uniform IID split (reference).
    Iid,
    /// Pareto label-skew (paper "PA").
    Pareto {
        /// Distinct labels held by each client (2 for 10-class sets, 20 for
        /// CIFAR-100 per §4.1.1).
        labels_per_client: usize,
        /// Power-law exponent for per-label client shares.
        alpha: f64,
    },
    /// Clustered-Equal cluster-skew (paper "CE").
    ClusteredEqual {
        /// Fraction of clients in the main group (paper's δ, default 0.6).
        delta: f64,
        /// Number of client groups / label clusters (Figure 1 uses 3).
        num_groups: usize,
        /// Distinct labels per client.
        labels_per_client: usize,
    },
    /// Clustered-Non-Equal cluster-skew (paper "CN"): CE + quantity skew.
    ClusteredNonEqual {
        /// Fraction of clients in the main group.
        delta: f64,
        /// Number of client groups / label clusters.
        num_groups: usize,
        /// Distinct labels per client.
        labels_per_client: usize,
        /// Power-law exponent for per-client sample counts.
        alpha: f64,
    },
    /// FedAvg label-size-imbalance, equal variant (§5.1 "Equal"):
    /// `shards_per_client × N` sorted shards, fixed shards per client.
    ShardsEqual {
        /// Shards per client (paper uses 2).
        shards_per_client: usize,
    },
    /// FedAvg label-size-imbalance, non-equal variant (§5.1 "Non-equal"):
    /// `10 N` sorted shards, each client drawing a random shard count.
    ShardsNonEqual {
        /// Minimum shards per client (paper: 6).
        min_shards: usize,
        /// Maximum shards per client (paper: 14).
        max_shards: usize,
    },
}

impl PartitionMethod {
    /// Paper-default PA for a 10-class dataset (2 labels/client).
    pub fn pa() -> Self {
        PartitionMethod::Pareto {
            labels_per_client: 2,
            alpha: 1.2,
        }
    }

    /// Paper-default PA for CIFAR-100 (20 labels/client).
    pub fn pa_cifar100() -> Self {
        PartitionMethod::Pareto {
            labels_per_client: 20,
            alpha: 1.2,
        }
    }

    /// Paper-default CE with the given non-IID level δ.
    pub fn ce(delta: f64) -> Self {
        PartitionMethod::ClusteredEqual {
            delta,
            num_groups: 3,
            labels_per_client: 2,
        }
    }

    /// Paper-default CN with the given non-IID level δ.
    pub fn cn(delta: f64) -> Self {
        PartitionMethod::ClusteredNonEqual {
            delta,
            num_groups: 3,
            labels_per_client: 2,
            alpha: 1.2,
        }
    }

    /// CE variant sized for a 100-label dataset (20 labels/client).
    pub fn ce_cifar100(delta: f64) -> Self {
        PartitionMethod::ClusteredEqual {
            delta,
            num_groups: 3,
            labels_per_client: 20,
        }
    }

    /// CN variant sized for a 100-label dataset.
    pub fn cn_cifar100(delta: f64) -> Self {
        PartitionMethod::ClusteredNonEqual {
            delta,
            num_groups: 3,
            labels_per_client: 20,
            alpha: 1.2,
        }
    }

    /// Paper-default Equal shards (2·N shards, 2 per client).
    pub fn shards_equal() -> Self {
        PartitionMethod::ShardsEqual {
            shards_per_client: 2,
        }
    }

    /// Paper-default Non-equal shards (10·N shards, 6–14 per client).
    pub fn shards_non_equal() -> Self {
        PartitionMethod::ShardsNonEqual {
            min_shards: 6,
            max_shards: 14,
        }
    }

    /// Short code used in tables ("PA", "CE", …).
    pub fn code(&self) -> &'static str {
        match self {
            PartitionMethod::Iid => "IID",
            PartitionMethod::Pareto { .. } => "PA",
            PartitionMethod::ClusteredEqual { .. } => "CE",
            PartitionMethod::ClusteredNonEqual { .. } => "CN",
            PartitionMethod::ShardsEqual { .. } => "Equal",
            PartitionMethod::ShardsNonEqual { .. } => "Non-equal",
        }
    }

    /// Whether the scheme induces cluster skew (Table 2, column 1).
    pub fn is_cluster_skew(&self) -> bool {
        matches!(
            self,
            PartitionMethod::ClusteredEqual { .. } | PartitionMethod::ClusteredNonEqual { .. }
        )
    }

    /// Whether the scheme induces label-size imbalance (Table 2, column 2).
    pub fn is_label_size_imbalance(&self) -> bool {
        !matches!(self, PartitionMethod::Iid)
    }

    /// Whether the scheme induces quantity imbalance (Table 2, column 3).
    pub fn is_quantity_imbalance(&self) -> bool {
        matches!(
            self,
            PartitionMethod::Pareto { .. }
                | PartitionMethod::ClusteredNonEqual { .. }
                | PartitionMethod::ShardsNonEqual { .. }
        )
    }

    /// Partition `dataset` across `n_clients` clients.
    pub fn partition(
        &self,
        dataset: &Dataset,
        n_clients: usize,
        rng: &mut Rng64,
    ) -> Result<Partition, PartitionError> {
        if n_clients == 0 {
            return Err(PartitionError::NoClients);
        }
        if dataset.len() < n_clients {
            return Err(PartitionError::NotEnoughSamples {
                samples: dataset.len(),
                clients: n_clients,
            });
        }
        let (client_indices, groups) = match self {
            PartitionMethod::Iid => (iid::split(dataset, n_clients, rng), None),
            PartitionMethod::Pareto {
                labels_per_client,
                alpha,
            } => (
                pareto::split(dataset, n_clients, *labels_per_client, *alpha, rng)?,
                None,
            ),
            PartitionMethod::ClusteredEqual {
                delta,
                num_groups,
                labels_per_client,
            } => {
                let (idx, groups) = cluster::split(
                    dataset,
                    n_clients,
                    *delta,
                    *num_groups,
                    *labels_per_client,
                    None,
                    rng,
                )?;
                (idx, Some(groups))
            }
            PartitionMethod::ClusteredNonEqual {
                delta,
                num_groups,
                labels_per_client,
                alpha,
            } => {
                let (idx, groups) = cluster::split(
                    dataset,
                    n_clients,
                    *delta,
                    *num_groups,
                    *labels_per_client,
                    Some(*alpha),
                    rng,
                )?;
                (idx, Some(groups))
            }
            PartitionMethod::ShardsEqual { shards_per_client } => (
                shards::split_equal(dataset, n_clients, *shards_per_client, rng)?,
                None,
            ),
            PartitionMethod::ShardsNonEqual {
                min_shards,
                max_shards,
            } => (
                shards::split_non_equal(dataset, n_clients, *min_shards, *max_shards, rng)?,
                None,
            ),
        };
        let partition = Partition {
            method: self.clone(),
            client_indices,
            groups,
        };
        partition.validate(dataset);
        Ok(partition)
    }
}

/// The result of partitioning: disjoint per-client index sets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    method: PartitionMethod,
    client_indices: Vec<Vec<usize>>,
    /// Client → group id, for cluster-skew methods.
    groups: Option<Vec<usize>>,
}

impl Partition {
    /// The scheme that produced this partition.
    pub fn method(&self) -> &PartitionMethod {
        &self.method
    }

    /// Number of clients.
    pub fn n_clients(&self) -> usize {
        self.client_indices.len()
    }

    /// Index set of one client.
    pub fn client(&self, i: usize) -> &[usize] {
        &self.client_indices[i]
    }

    /// All index sets.
    pub fn clients(&self) -> &[Vec<usize>] {
        &self.client_indices
    }

    /// Per-client sample counts.
    pub fn sizes(&self) -> Vec<usize> {
        self.client_indices.iter().map(|c| c.len()).collect()
    }

    /// Group id per client for cluster-skew methods, `None` otherwise.
    pub fn groups(&self) -> Option<&[usize]> {
        self.groups.as_deref()
    }

    /// Debug-mode invariant check: indices are in-bounds, disjoint across
    /// clients, and every client is non-empty.
    fn validate(&self, dataset: &Dataset) {
        let mut seen = vec![false; dataset.len()];
        for (c, indices) in self.client_indices.iter().enumerate() {
            assert!(
                !indices.is_empty(),
                "partition invariant: client {c} received no samples"
            );
            for &i in indices {
                assert!(i < dataset.len(), "index {i} out of dataset bounds");
                assert!(!seen[i], "index {i} assigned to two clients");
                seen[i] = true;
            }
        }
    }
}

/// Split `pool` (a label's sample indices) among `want` shares; share `j`
/// receives a count proportional to `want[j]` with floors distributed so the
/// total never exceeds the pool. Shared by the PA/CE/CN implementations.
pub(crate) fn allocate_proportional(pool_len: usize, want: &[f64]) -> Vec<usize> {
    let total_w: f64 = want.iter().sum();
    if total_w <= 0.0 || pool_len == 0 {
        return vec![0; want.len()];
    }
    let mut alloc: Vec<usize> = want
        .iter()
        .map(|w| ((w / total_w) * pool_len as f64).floor() as usize)
        .collect();
    let used: usize = alloc.iter().sum();
    // Hand out the remainder to the largest fractional parts (stable order).
    let mut order: Vec<usize> = (0..want.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = (want[a] / total_w) * pool_len as f64 - alloc[a] as f64;
        let fb = (want[b] / total_w) * pool_len as f64 - alloc[b] as f64;
        fb.partial_cmp(&fa).unwrap_or(std::cmp::Ordering::Equal)
    });
    let spare = pool_len.saturating_sub(used);
    for &j in order.iter().take(spare) {
        alloc[j] += 1;
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthSpec;

    fn toy_dataset() -> Dataset {
        let spec = SynthSpec {
            name: "toy".into(),
            num_classes: 10,
            feature_dim: 4,
            train_size: 1000,
            test_size: 100,
            noise_std: 1.0,
            modes_per_class: 1,
            proto_scale: 1.0,
            popularity: crate::synth::LabelPopularity::Uniform,
        };
        spec.generate(5).0
    }

    #[test]
    fn all_methods_produce_valid_partitions() {
        let ds = toy_dataset();
        let methods = [
            PartitionMethod::Iid,
            PartitionMethod::pa(),
            PartitionMethod::ce(0.6),
            PartitionMethod::cn(0.6),
            PartitionMethod::shards_equal(),
            PartitionMethod::shards_non_equal(),
        ];
        for m in methods {
            let mut rng = Rng64::new(42);
            let p = m.partition(&ds, 10, &mut rng).unwrap_or_else(|e| {
                panic!("{} failed: {e}", m.code());
            });
            assert_eq!(p.n_clients(), 10);
            // validate() ran inside partition(); re-check coverage bound.
            let total: usize = p.sizes().iter().sum();
            assert!(total <= ds.len());
            assert!(
                total >= ds.len() / 2,
                "{}: wasted too many samples",
                m.code()
            );
        }
    }

    #[test]
    fn zero_clients_rejected() {
        let ds = toy_dataset();
        let mut rng = Rng64::new(1);
        assert_eq!(
            PartitionMethod::Iid.partition(&ds, 0, &mut rng),
            Err(PartitionError::NoClients)
        );
    }

    #[test]
    fn too_many_clients_rejected() {
        let ds = toy_dataset();
        let mut rng = Rng64::new(1);
        let err = PartitionMethod::Iid
            .partition(&ds, ds.len() + 1, &mut rng)
            .unwrap_err();
        assert!(matches!(err, PartitionError::NotEnoughSamples { .. }));
    }

    #[test]
    fn determinism_per_seed() {
        let ds = toy_dataset();
        let p1 = PartitionMethod::ce(0.6)
            .partition(&ds, 10, &mut Rng64::new(7))
            .unwrap();
        let p2 = PartitionMethod::ce(0.6)
            .partition(&ds, 10, &mut Rng64::new(7))
            .unwrap();
        assert_eq!(p1.clients(), p2.clients());
        let p3 = PartitionMethod::ce(0.6)
            .partition(&ds, 10, &mut Rng64::new(8))
            .unwrap();
        assert_ne!(p1.clients(), p3.clients());
    }

    #[test]
    fn table2_flags() {
        assert!(!PartitionMethod::pa().is_cluster_skew());
        assert!(PartitionMethod::pa().is_label_size_imbalance());
        assert!(PartitionMethod::pa().is_quantity_imbalance());
        assert!(PartitionMethod::ce(0.6).is_cluster_skew());
        assert!(!PartitionMethod::ce(0.6).is_quantity_imbalance());
        assert!(PartitionMethod::cn(0.6).is_cluster_skew());
        assert!(PartitionMethod::cn(0.6).is_quantity_imbalance());
        assert!(!PartitionMethod::Iid.is_label_size_imbalance());
    }

    #[test]
    fn allocate_proportional_conserves_pool() {
        let alloc = allocate_proportional(100, &[1.0, 2.0, 7.0]);
        assert_eq!(alloc.iter().sum::<usize>(), 100);
        assert!(alloc[2] > alloc[1] && alloc[1] > alloc[0]);
        // Degenerate cases.
        assert_eq!(allocate_proportional(0, &[1.0]), vec![0]);
        assert_eq!(allocate_proportional(10, &[]), Vec::<usize>::new());
    }

    #[test]
    fn partition_serde_roundtrip() {
        let ds = toy_dataset();
        let p = PartitionMethod::pa()
            .partition(&ds, 5, &mut Rng64::new(3))
            .unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: Partition = serde_json::from_str(&json).unwrap();
        assert_eq!(back.clients(), p.clients());
        assert_eq!(back.method().code(), "PA");
    }
}
