//! Partition skew statistics.
//!
//! Quantifies the three non-IID axes of the paper's Table 2 — cluster skew,
//! label-size imbalance and quantity imbalance — directly from a realized
//! [`Partition`], so the table can be *derived from data* rather than
//! asserted. Also renders the client×label bubble matrices of Figure 4.

use crate::dataset::Dataset;
use crate::partition::Partition;
use serde::{Deserialize, Serialize};

/// Computed skew statistics for one partition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionStats {
    /// Per-client sample counts.
    pub sizes: Vec<usize>,
    /// `matrix[c][l]` = samples of label `l` held by client `c`.
    pub label_matrix: Vec<Vec<usize>>,
    /// Distinct labels per client.
    pub distinct_labels: Vec<usize>,
    /// `max(sizes)/min(sizes)`.
    pub quantity_ratio: f64,
    /// Gini coefficient of `sizes` (0 = equal, →1 = concentrated).
    pub gini: f64,
    /// Connected components of the label-sharing graph (clients are
    /// adjacent when their label sets intersect). `> 1` means groups of
    /// clients share *no* labels across groups — the defining signature of
    /// cluster skew.
    pub label_sharing_components: usize,
}

impl PartitionStats {
    /// Compute statistics for `partition` over `dataset`.
    pub fn compute(partition: &Partition, dataset: &Dataset) -> Self {
        let n_clients = partition.n_clients();
        let n_labels = dataset.num_classes();
        let mut label_matrix = vec![vec![0usize; n_labels]; n_clients];
        for (c, indices) in partition.clients().iter().enumerate() {
            for &i in indices {
                label_matrix[c][dataset.label(i)] += 1;
            }
        }
        let sizes = partition.sizes();
        let distinct_labels: Vec<usize> = label_matrix
            .iter()
            .map(|row| row.iter().filter(|&&c| c > 0).count())
            .collect();
        let max = *sizes.iter().max().unwrap_or(&0) as f64;
        let min = *sizes.iter().min().unwrap_or(&0) as f64;
        let quantity_ratio = if min > 0.0 { max / min } else { f64::INFINITY };
        Self {
            gini: gini(&sizes),
            label_sharing_components: components(&label_matrix),
            sizes,
            label_matrix,
            distinct_labels,
            quantity_ratio,
        }
    }

    /// Table 2 column 1: does the partition exhibit cluster skew?
    pub fn has_cluster_skew(&self) -> bool {
        self.label_sharing_components > 1
    }

    /// Table 2 column 2: label-size imbalance (clients see only a strict
    /// subset of the label space).
    pub fn has_label_size_imbalance(&self) -> bool {
        let n_labels = self.label_matrix.first().map_or(0, |r| r.len());
        self.distinct_labels.iter().any(|&d| d < n_labels)
    }

    /// Table 2 column 3: quantity imbalance (sizes differ by >50%).
    pub fn has_quantity_imbalance(&self) -> bool {
        self.quantity_ratio > 1.5
    }

    /// ASCII bubble plot in the style of Figure 4: rows = labels, columns =
    /// clients, glyph size ∝ sample count.
    pub fn render_bubbles(&self) -> String {
        let n_clients = self.label_matrix.len();
        let n_labels = self.label_matrix.first().map_or(0, |r| r.len());
        let max = self
            .label_matrix
            .iter()
            .flat_map(|r| r.iter())
            .copied()
            .max()
            .unwrap_or(1)
            .max(1);
        let mut out = String::new();
        for l in (0..n_labels).rev() {
            out.push_str(&format!("L{l:<3}|"));
            for c in 0..n_clients {
                let v = self.label_matrix[c][l];
                let glyph = if v == 0 {
                    " . "
                } else if v * 4 < max {
                    " o "
                } else if v * 2 < max {
                    " O "
                } else {
                    " @ "
                };
                out.push_str(glyph);
            }
            out.push('\n');
        }
        out.push_str("    +");
        out.push_str(&"---".repeat(n_clients));
        out.push('\n');
        out.push_str("     ");
        for c in 0..n_clients {
            out.push_str(&format!("{c:^3}"));
        }
        out.push('\n');
        out
    }
}

/// Gini coefficient of non-negative counts.
fn gini(sizes: &[usize]) -> f64 {
    if sizes.is_empty() {
        return 0.0;
    }
    let n = sizes.len() as f64;
    let mut sorted: Vec<f64> = sizes.iter().map(|&s| s as f64).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let sum: f64 = sorted.iter().sum();
    if sum == 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n * sum) - (n + 1.0) / n
}

/// Connected components of the "clients share a label" graph via union-find.
fn components(label_matrix: &[Vec<usize>]) -> usize {
    let n_clients = label_matrix.len();
    if n_clients == 0 {
        return 0;
    }
    let n_labels = label_matrix[0].len();
    let mut parent: Vec<usize> = (0..n_clients).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for l in 0..n_labels {
        let mut first_owner: Option<usize> = None;
        for (c, row) in label_matrix.iter().enumerate() {
            if row[l] > 0 {
                match first_owner {
                    None => first_owner = Some(c),
                    Some(o) => {
                        let (a, b) = (find(&mut parent, o), find(&mut parent, c));
                        parent[a] = b;
                    }
                }
            }
        }
    }
    (0..n_clients)
        .map(|c| find(&mut parent, c))
        .collect::<std::collections::HashSet<_>>()
        .len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionMethod;
    use crate::synth::SynthSpec;
    use feddrl_nn::rng::Rng64;

    fn stats_for(method: PartitionMethod, n_clients: usize, seed: u64) -> PartitionStats {
        let (train, _) = SynthSpec::mnist_like().generate(31);
        let p = method
            .partition(&train, n_clients, &mut Rng64::new(seed))
            .unwrap();
        PartitionStats::compute(&p, &train)
    }

    #[test]
    fn table2_row_pa() {
        let s = stats_for(PartitionMethod::pa(), 10, 1);
        assert!(!s.has_cluster_skew(), "PA misdetected as cluster skew");
        assert!(s.has_label_size_imbalance());
        assert!(s.has_quantity_imbalance());
    }

    #[test]
    fn table2_row_ce() {
        let s = stats_for(PartitionMethod::ce(0.6), 12, 2);
        assert!(s.has_cluster_skew(), "CE must show cluster skew");
        assert!(s.has_label_size_imbalance());
        assert!(!s.has_quantity_imbalance(), "CE sizes: {:?}", s.sizes);
    }

    #[test]
    fn table2_row_cn() {
        let s = stats_for(PartitionMethod::cn(0.6), 12, 3);
        assert!(s.has_cluster_skew());
        assert!(s.has_label_size_imbalance());
        assert!(s.has_quantity_imbalance(), "CN sizes: {:?}", s.sizes);
    }

    #[test]
    fn iid_has_no_skew() {
        let s = stats_for(PartitionMethod::Iid, 10, 4);
        assert!(!s.has_cluster_skew());
        assert!(!s.has_label_size_imbalance());
        assert!(!s.has_quantity_imbalance());
    }

    #[test]
    fn gini_extremes() {
        assert!(gini(&[100, 100, 100]).abs() < 1e-9);
        assert!(gini(&[0, 0, 300]) > 0.6);
        assert_eq!(gini(&[]), 0.0);
    }

    #[test]
    fn components_detects_blocks() {
        // Two clients on labels {0,1}, two on {2,3}: two components.
        let m = vec![
            vec![5, 5, 0, 0],
            vec![3, 7, 0, 0],
            vec![0, 0, 5, 5],
            vec![0, 0, 2, 8],
        ];
        assert_eq!(components(&m), 2);
        // A bridge client merges them.
        let m2 = vec![vec![5, 5, 0, 0], vec![0, 1, 1, 0], vec![0, 0, 5, 5]];
        assert_eq!(components(&m2), 1);
    }

    #[test]
    fn label_matrix_sums_match_sizes() {
        let s = stats_for(PartitionMethod::cn(0.6), 10, 5);
        for (c, row) in s.label_matrix.iter().enumerate() {
            assert_eq!(row.iter().sum::<usize>(), s.sizes[c]);
        }
    }

    #[test]
    fn bubbles_render_every_label_row() {
        let s = stats_for(PartitionMethod::ce(0.6), 10, 6);
        let art = s.render_bubbles();
        for l in 0..10 {
            assert!(art.contains(&format!("L{l}")), "missing label row {l}");
        }
        assert!(art.contains('@'), "no large bubbles rendered");
    }

    #[test]
    fn stats_serde_roundtrip() {
        let s = stats_for(PartitionMethod::pa(), 6, 7);
        let json = serde_json::to_string(&s).unwrap();
        let back: PartitionStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back.sizes, s.sizes);
        assert_eq!(back.label_sharing_components, s.label_sharing_components);
    }
}
