//! Synthetic federated datasets.
//!
//! The paper evaluates on MNIST, Fashion-MNIST and CIFAR-100. Those corpora
//! are not redistributable inside this offline reproduction, so we generate
//! *synthetic Gaussian-prototype* classification problems with the same
//! label structure instead (see DESIGN.md §4 for the substitution argument):
//! every non-IID effect the paper studies is imposed by the *partitioner* on
//! label-indexed samples, so any dataset whose per-client loss reflects
//! label skew exercises the identical FedDRL code path.
//!
//! Each class owns `modes_per_class` prototype vectors; a sample is a
//! prototype plus isotropic Gaussian noise. Difficulty is controlled by the
//! prototype-separation-to-noise ratio, calibrated per preset so the
//! SingleSet reference lands near the paper's relative levels
//! (MNIST ≫ Fashion-MNIST > CIFAR-100).

use crate::dataset::Dataset;
use feddrl_nn::rng::Rng64;
use feddrl_nn::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// How many training samples each label receives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LabelPopularity {
    /// Every label has the same number of samples.
    Uniform,
    /// Label `l` receives mass `∝ (l+1)^(−alpha)`, producing the
    /// head-vs-tail imbalance the paper observes in real data (§2.2: most
    /// popular label ≈ 23× the least popular in Flickr-Mammal).
    PowerLaw {
        /// Decay exponent; ≈1.4 gives a 23× head/tail ratio over 10 labels.
        alpha: f64,
    },
}

/// Declarative description of a synthetic dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthSpec {
    /// Human-readable name used in reports ("mnist-like", …).
    pub name: String,
    /// Number of labels.
    pub num_classes: usize,
    /// Feature dimensionality.
    pub feature_dim: usize,
    /// Total training samples (split across labels per `popularity`).
    pub train_size: usize,
    /// Total test samples (always label-uniform, mirroring the benchmark
    /// test sets the paper evaluates top-1 accuracy on).
    pub test_size: usize,
    /// Std-dev of the isotropic sample noise around each prototype.
    pub noise_std: f32,
    /// Prototypes per class (>1 creates multi-modal classes, which raises
    /// difficulty for linear models the way natural-image classes do).
    pub modes_per_class: usize,
    /// Scale of the prototype positions; separation/noise sets difficulty.
    pub proto_scale: f32,
    /// Training-label popularity profile.
    pub popularity: LabelPopularity,
}

impl SynthSpec {
    /// MNIST-like preset: 10 well-separated classes, easy (SingleSet ≳ 95%).
    pub fn mnist_like() -> Self {
        Self {
            name: "mnist-like".into(),
            num_classes: 10,
            feature_dim: 32,
            train_size: 4000,
            test_size: 1000,
            noise_std: 1.3,
            modes_per_class: 1,
            proto_scale: 1.0,
            popularity: LabelPopularity::Uniform,
        }
    }

    /// Fashion-MNIST-like preset: 10 classes with overlap (SingleSet ≈ 90%).
    pub fn fashion_like() -> Self {
        Self {
            name: "fashion-like".into(),
            num_classes: 10,
            feature_dim: 32,
            train_size: 4000,
            test_size: 1000,
            noise_std: 1.65,
            modes_per_class: 2,
            proto_scale: 1.0,
            popularity: LabelPopularity::Uniform,
        }
    }

    /// CIFAR-100-like preset: 100 harder classes with a power-law head
    /// (SingleSet ≈ 70%).
    pub fn cifar100_like() -> Self {
        Self {
            name: "cifar100-like".into(),
            num_classes: 100,
            feature_dim: 64,
            train_size: 12_000,
            test_size: 2_000,
            noise_std: 2.3,
            modes_per_class: 1,
            proto_scale: 1.0,
            popularity: LabelPopularity::PowerLaw { alpha: 0.8 },
        }
    }

    /// Pill-image-like preset reproducing Figure 1's motivating scenario:
    /// 30 pill classes whose popularity is strongly head-heavy (common
    /// medications) — used together with cluster partitioning by "disease".
    pub fn pill_like() -> Self {
        Self {
            name: "pill-like".into(),
            num_classes: 30,
            feature_dim: 48,
            train_size: 6000,
            test_size: 1200,
            noise_std: 1.8,
            modes_per_class: 1,
            proto_scale: 1.0,
            popularity: LabelPopularity::PowerLaw { alpha: 1.4 },
        }
    }

    /// Per-label training sample counts under this spec's popularity
    /// profile. Every label is guaranteed at least 2 samples.
    pub fn train_label_counts(&self) -> Vec<usize> {
        match self.popularity {
            LabelPopularity::Uniform => {
                let base = self.train_size / self.num_classes;
                let mut counts = vec![base; self.num_classes];
                for item in counts.iter_mut().take(self.train_size % self.num_classes) {
                    *item += 1;
                }
                counts
            }
            LabelPopularity::PowerLaw { alpha } => {
                let weights: Vec<f64> = (0..self.num_classes)
                    .map(|l| ((l + 1) as f64).powf(-alpha))
                    .collect();
                let total_w: f64 = weights.iter().sum();
                let mut counts: Vec<usize> = weights
                    .iter()
                    .map(|w| ((w / total_w) * self.train_size as f64).floor() as usize)
                    .map(|c| c.max(2))
                    .collect();
                // Give any rounding remainder to the head label.
                let assigned: usize = counts.iter().sum();
                if assigned < self.train_size {
                    counts[0] += self.train_size - assigned;
                }
                counts
            }
        }
    }

    /// Generate `(train, test)` datasets deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> (Dataset, Dataset) {
        assert!(self.num_classes > 0 && self.feature_dim > 0);
        assert!(self.modes_per_class > 0, "modes_per_class must be positive");
        let mut rng = Rng64::new(seed ^ 0x5EED_DA7A);
        // Prototypes: [class][mode] → feature vector.
        let protos: Vec<Vec<Tensor>> = (0..self.num_classes)
            .map(|_| {
                (0..self.modes_per_class)
                    .map(|_| Tensor::randn(&[self.feature_dim], 0.0, self.proto_scale, &mut rng))
                    .collect()
            })
            .collect();

        let sample_into = |label: usize, rng: &mut Rng64, row: &mut [f32]| {
            let mode = rng.below(self.modes_per_class);
            let proto = &protos[label][mode];
            for (v, &p) in row.iter_mut().zip(proto.data().iter()) {
                *v = p + rng.normal_f32(0.0, self.noise_std);
            }
        };

        // Training set follows the popularity profile.
        let counts = self.train_label_counts();
        let n_train: usize = counts.iter().sum();
        let mut train_x = Tensor::zeros(&[n_train, self.feature_dim]);
        let mut train_y = Vec::with_capacity(n_train);
        let mut r = 0;
        for (label, &count) in counts.iter().enumerate() {
            for _ in 0..count {
                sample_into(label, &mut rng, train_x.row_mut(r));
                train_y.push(label);
                r += 1;
            }
        }

        // Test set is label-uniform.
        let per_class = (self.test_size / self.num_classes).max(1);
        let n_test = per_class * self.num_classes;
        let mut test_x = Tensor::zeros(&[n_test, self.feature_dim]);
        let mut test_y = Vec::with_capacity(n_test);
        let mut r = 0;
        for label in 0..self.num_classes {
            for _ in 0..per_class {
                sample_into(label, &mut rng, test_x.row_mut(r));
                test_y.push(label);
                r += 1;
            }
        }

        (
            Dataset::new(train_x, train_y, self.num_classes),
            Dataset::new(test_x, test_y, self.num_classes),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = SynthSpec::mnist_like();
        let (a_train, a_test) = spec.generate(11);
        let (b_train, b_test) = spec.generate(11);
        assert_eq!(a_train, b_train);
        assert_eq!(a_test, b_test);
        let (c_train, _) = spec.generate(12);
        assert_ne!(a_train, c_train);
    }

    #[test]
    fn sizes_and_classes_match_spec() {
        let spec = SynthSpec::fashion_like();
        let (train, test) = spec.generate(1);
        assert_eq!(train.len(), spec.train_size);
        assert_eq!(test.len(), spec.test_size);
        assert_eq!(train.num_classes(), 10);
        assert_eq!(train.feature_dim(), spec.feature_dim);
    }

    #[test]
    fn uniform_popularity_is_balanced() {
        let spec = SynthSpec::mnist_like();
        let counts = spec.train_label_counts();
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(max - min <= 1, "uniform counts differ: {counts:?}");
    }

    #[test]
    fn power_law_head_dominates_tail() {
        let spec = SynthSpec::pill_like();
        let counts = spec.train_label_counts();
        let head = counts[0] as f64;
        let tail = *counts.last().unwrap() as f64;
        // Paper cites ~23x for Flickr-Mammal; alpha=1.4 over 30 labels
        // should exceed 20x.
        assert!(
            head / tail > 20.0,
            "head/tail ratio too small: {head}/{tail}"
        );
        assert_eq!(counts.iter().sum::<usize>(), spec.train_size);
    }

    #[test]
    fn every_label_present_in_train_and_test() {
        let spec = SynthSpec::cifar100_like();
        let (train, test) = spec.generate(3);
        let train_counts = train.label_counts();
        let test_counts = test.label_counts();
        assert!(train_counts.iter().all(|&c| c >= 2), "missing train label");
        assert!(test_counts.iter().all(|&c| c > 0), "missing test label");
    }

    #[test]
    fn classes_are_learnable_but_noisy() {
        // Nearest-prototype accuracy on the mnist-like preset should be
        // high but not perfect — the task must leave room for methods to
        // differ, mirroring real datasets.
        let spec = SynthSpec::mnist_like();
        let (train, test) = spec.generate(7);
        // Class means from training data as a crude classifier.
        let d = train.feature_dim();
        let mut means = vec![vec![0.0f32; d]; spec.num_classes];
        let counts = train.label_counts();
        for i in 0..train.len() {
            let l = train.label(i);
            for (m, &x) in means[l].iter_mut().zip(train.features().row(i)) {
                *m += x;
            }
        }
        for (mean, &c) in means.iter_mut().zip(counts.iter()) {
            for m in mean.iter_mut() {
                *m /= c as f32;
            }
        }
        let mut correct = 0;
        for i in 0..test.len() {
            let x = test.features().row(i);
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for (l, mean) in means.iter().enumerate() {
                let dist: f32 = x
                    .iter()
                    .zip(mean.iter())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                if dist < best_d {
                    best_d = dist;
                    best = l;
                }
            }
            if best == test.label(i) {
                correct += 1;
            }
        }
        let acc = correct as f32 / test.len() as f32;
        assert!(acc > 0.80, "mnist-like too hard: {acc}");
        assert!(acc < 1.0, "mnist-like degenerate (perfectly separable)");
    }

    #[test]
    fn spec_serde_roundtrip() {
        let spec = SynthSpec::cifar100_like();
        let json = serde_json::to_string(&spec).unwrap();
        let back: SynthSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
