//! In-memory labelled dataset.
//!
//! Federated clients never copy their shard of the training set; they hold
//! index lists into one shared [`Dataset`] and materialize mini-batches with
//! [`Dataset::gather`]. This mirrors how FL simulators (and the paper's
//! PyTorch harness) treat a centrally-partitioned dataset.

use feddrl_nn::tensor::Tensor;

/// A dense classification dataset: `[n, d]` features and one label per row.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Build a dataset, validating label range and shape agreement.
    ///
    /// # Panics
    /// Panics if `features` is not 2-D, row count mismatches `labels`, or a
    /// label is `>= num_classes`.
    pub fn new(features: Tensor, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(features.ndim(), 2, "features must be [n, d]");
        assert_eq!(
            features.rows(),
            labels.len(),
            "feature rows ({}) != labels ({})",
            features.rows(),
            labels.len()
        );
        assert!(num_classes > 0, "num_classes must be positive");
        for (i, &l) in labels.iter().enumerate() {
            assert!(
                l < num_classes,
                "label {l} at row {i} out of range (num_classes={num_classes})"
            );
        }
        Self {
            features,
            labels,
            num_classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Full feature tensor.
    pub fn features(&self) -> &Tensor {
        &self.features
    }

    /// Label of sample `i`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Copy the rows named by `indices` into a dense batch.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let d = self.feature_dim();
        let mut out = Tensor::zeros(&[indices.len(), d]);
        let mut labels = Vec::with_capacity(indices.len());
        for (r, &i) in indices.iter().enumerate() {
            assert!(
                i < self.len(),
                "gather index {i} out of bounds ({})",
                self.len()
            );
            out.row_mut(r).copy_from_slice(self.features.row(i));
            labels.push(self.labels[i]);
        }
        (out, labels)
    }

    /// Indices of all samples of each label: `result[l]` lists the rows with
    /// label `l`, in dataset order.
    pub fn indices_by_label(&self) -> Vec<Vec<usize>> {
        let mut by_label = vec![Vec::new(); self.num_classes];
        for (i, &l) in self.labels.iter().enumerate() {
            by_label[l].push(i);
        }
        by_label
    }

    /// Per-label sample counts.
    pub fn label_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Materialize a subset as an owned dataset (used by SingleSet and by
    /// tests; clients use [`Dataset::gather`] directly).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let (features, labels) = self.gather(indices);
        Dataset {
            features,
            labels,
            num_classes: self.num_classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let features = Tensor::from_vec(&[4, 2], vec![0., 0., 1., 1., 2., 2., 3., 3.]);
        Dataset::new(features, vec![0, 1, 0, 1], 2)
    }

    #[test]
    fn basic_accessors() {
        let ds = toy();
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.feature_dim(), 2);
        assert_eq!(ds.num_classes(), 2);
        assert_eq!(ds.label(2), 0);
    }

    #[test]
    fn gather_copies_rows_in_order() {
        let ds = toy();
        let (x, y) = ds.gather(&[3, 0]);
        assert_eq!(x.row(0), &[3., 3.]);
        assert_eq!(x.row(1), &[0., 0.]);
        assert_eq!(y, vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_rejects_bad_index() {
        let _ = toy().gather(&[4]);
    }

    #[test]
    fn indices_by_label_partitions_rows() {
        let ds = toy();
        let by = ds.indices_by_label();
        assert_eq!(by[0], vec![0, 2]);
        assert_eq!(by[1], vec![1, 3]);
    }

    #[test]
    fn label_counts_sum_to_len() {
        let ds = toy();
        let counts = ds.label_counts();
        assert_eq!(counts.iter().sum::<usize>(), ds.len());
        assert_eq!(counts, vec![2, 2]);
    }

    #[test]
    fn subset_preserves_class_space() {
        let ds = toy();
        let sub = ds.subset(&[1]);
        assert_eq!(sub.len(), 1);
        assert_eq!(sub.num_classes(), 2);
        assert_eq!(sub.labels(), &[1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range_label() {
        let features = Tensor::zeros(&[1, 2]);
        let _ = Dataset::new(features, vec![5], 2);
    }

    #[test]
    #[should_panic(expected = "feature rows")]
    fn new_rejects_mismatched_rows() {
        let features = Tensor::zeros(&[2, 2]);
        let _ = Dataset::new(features, vec![0], 2);
    }
}
