//! # feddrl-data — federated datasets and non-IID partitioners
//!
//! The data substrate of the FedDRL (ICPP'22) reproduction:
//!
//! * [`dataset::Dataset`] — shared in-memory training/test sets that
//!   clients index into;
//! * [`synth`] — seeded synthetic stand-ins for MNIST / Fashion-MNIST /
//!   CIFAR-100 (see DESIGN.md §4 for the substitution rationale);
//! * [`partition`] — every partitioning scheme of the paper: Pareto (PA),
//!   the novel cluster-skew Clustered-Equal/Non-Equal (CE/CN), FedAvg's
//!   Equal/Non-equal shards, and IID;
//! * [`stats`] — skew statistics that *derive* the paper's Table 2 and
//!   render Figure 4's bubble matrices.
//!
//! ## Example
//!
//! ```
//! use feddrl_data::prelude::*;
//! use feddrl_nn::rng::Rng64;
//!
//! let (train, _test) = SynthSpec::mnist_like().generate(42);
//! let partition = PartitionMethod::ce(0.6)
//!     .partition(&train, 10, &mut Rng64::new(7))
//!     .expect("partition");
//! let stats = PartitionStats::compute(&partition, &train);
//! assert!(stats.has_cluster_skew());
//! ```

#![warn(missing_docs)]

pub mod dataset;
pub mod partition;
pub mod stats;
pub mod synth;

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::dataset::Dataset;
    pub use crate::partition::{Partition, PartitionError, PartitionMethod};
    pub use crate::stats::PartitionStats;
    pub use crate::synth::{LabelPopularity, SynthSpec};
}
