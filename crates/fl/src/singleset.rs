//! SingleSet reference: centralized training on the concatenation of all
//! clients' data (paper §4.1, footnote 4). Reported as the ceiling every FL
//! method is compared against in Tables 3 and 4.

use crate::history::{RoundRecord, RunHistory};
use crate::metrics::evaluate;
use feddrl_data::dataset::Dataset;
use feddrl_nn::loss::cross_entropy_logits;
use feddrl_nn::optim::Sgd;
use feddrl_nn::rng::Rng64;
use feddrl_nn::zoo::ModelSpec;

/// Centralized training configuration.
#[derive(Debug, Clone)]
pub struct SingleSetConfig {
    /// Training epochs over the full dataset.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Evaluation batch size.
    pub eval_batch: usize,
    /// Seed for init and shuffling.
    pub seed: u64,
}

impl Default for SingleSetConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            batch_size: 32,
            lr: 0.05,
            eval_batch: 256,
            seed: 0x51,
        }
    }
}

/// Train centrally and evaluate after every epoch; the returned history
/// uses one record per epoch so it slots into the same reporting as FL
/// runs.
pub fn run_singleset(
    spec: &ModelSpec,
    train: &Dataset,
    test: &Dataset,
    cfg: &SingleSetConfig,
) -> RunHistory {
    assert!(cfg.epochs > 0 && cfg.batch_size > 0);
    let mut rng = Rng64::new(cfg.seed);
    let mut model = spec.build(rng.next_u64());
    let mut opt = Sgd::new(cfg.lr, 0.0, 0.0);
    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut records = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        rng.shuffle(&mut order);
        for batch in order.chunks(cfg.batch_size) {
            let (x, y) = train.gather(batch);
            let logits = model.forward(&x, true);
            let (_, grad) = cross_entropy_logits(&logits, &y);
            model.zero_grad();
            model.backward(&grad);
            opt.step(&mut model);
        }
        let (acc, loss) = evaluate(&mut model, test, cfg.eval_batch);
        records.push(RoundRecord {
            round: epoch,
            test_accuracy: acc,
            test_loss: loss,
            selected: Vec::new(),
            impact_factors: Vec::new(),
            client_losses_before: Vec::new(),
            strategy_micros: 0,
            aggregate_micros: 0,
            hetero: None,
        });
    }
    RunHistory {
        method: "SingleSet".into(),
        dataset: String::new(),
        partition: "-".into(),
        n_clients: 1,
        participants: 1,
        seed: cfg.seed,
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feddrl_data::synth::SynthSpec;

    #[test]
    fn singleset_reaches_high_accuracy_on_mnist_like() {
        let (train, test) = SynthSpec {
            train_size: 2000,
            test_size: 500,
            ..SynthSpec::mnist_like()
        }
        .generate(3);
        let spec = ModelSpec::Mlp {
            in_dim: train.feature_dim(),
            hidden: vec![64],
            out_dim: train.num_classes(),
        };
        let cfg = SingleSetConfig {
            epochs: 15,
            ..Default::default()
        };
        let history = run_singleset(&spec, &train, &test, &cfg);
        assert_eq!(history.records.len(), 15);
        let best = history.best().best_accuracy;
        assert!(best > 0.9, "SingleSet underfit: {best}");
    }

    #[test]
    fn deterministic() {
        let (train, test) = SynthSpec {
            train_size: 600,
            test_size: 200,
            ..SynthSpec::mnist_like()
        }
        .generate(4);
        let spec = ModelSpec::Mlp {
            in_dim: train.feature_dim(),
            hidden: vec![16],
            out_dim: train.num_classes(),
        };
        let cfg = SingleSetConfig {
            epochs: 3,
            ..Default::default()
        };
        let a = run_singleset(&spec, &train, &test, &cfg);
        let b = run_singleset(&spec, &train, &test, &cfg);
        assert_eq!(a.accuracies(), b.accuracies());
    }
}
