//! The federated-learning server loop (paper Algorithm 2).
//!
//! Per communication round the server: samples `K` of `N` clients, hands
//! them to the configured [`RoundExecutor`](crate::executor::RoundExecutor)
//! — which trains them *in
//! parallel* (one crossbeam task per client) and decides which reports
//! make it back, and when — then asks the [`Strategy`] for impact factors
//! over the updates that arrived, applies the weighted aggregation of
//! Eq. 4, and evaluates the new global model. Timing of the two
//! server-side stages is recorded separately to reproduce Figure 9.
//!
//! With the default [`ExecutorConfig::Ideal`] every sampled client reports
//! (the paper's synchronous setting, bit-identical to the pre-executor
//! loop); [`ExecutorConfig::Deadline`] runs rounds through the
//! discrete-event heterogeneity engine (stragglers, dropouts, deadlines —
//! see [`crate::executor`]).
//!
//! Determinism: client-local randomness is derived from
//! `(master seed, round, client id)`, so results are independent of thread
//! scheduling.

use crate::client::{run_local_round, ClientUpdate, LocalTrainConfig};
use crate::executor::ExecutorConfig;
use crate::history::{RoundRecord, RunHistory};
use crate::metrics::evaluate;
use crate::strategy::{normalize_factors, weighted_average, RoundContext, Strategy};
use feddrl_data::dataset::Dataset;
use feddrl_data::partition::Partition;
use feddrl_nn::parallel::par_map;
use feddrl_nn::rng::Rng64;
use feddrl_nn::zoo::ModelSpec;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Client-selection policy for each round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Selection {
    /// Uniform sampling without replacement (the paper's setting).
    #[default]
    Uniform,
    /// Power-of-choice (\[3\] in the paper): sample `candidates ≥ K`
    /// clients uniformly, then keep the `K` with the highest last-known
    /// inference loss (unseen clients count as highest). Biases
    /// participation toward struggling clients.
    PowerOfChoice {
        /// Candidate pool size `d` (clamped to `[K, N]`).
        candidates: usize,
    },
}

/// Federated orchestration parameters (paper §4.1.2 defaults).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlConfig {
    /// Communication rounds `T`.
    pub rounds: usize,
    /// Participating clients per round `K` (paper default 10).
    pub participants: usize,
    /// Local solver settings.
    pub local: LocalTrainConfig,
    /// Evaluation batch size.
    pub eval_batch: usize,
    /// Master seed; everything else derives from it.
    pub seed: u64,
    /// Print progress to stderr every `log_every` rounds (0 = silent).
    pub log_every: usize,
    /// Client-selection policy (the paper uses uniform sampling).
    #[serde(default)]
    pub selection: Selection,
    /// Round-execution model: ideal synchronous (default) or
    /// deadline-bounded over a heterogeneous device fleet.
    #[serde(default)]
    pub executor: ExecutorConfig,
}

impl Default for FlConfig {
    fn default() -> Self {
        Self {
            rounds: 100,
            participants: 10,
            local: LocalTrainConfig::default(),
            eval_batch: 256,
            seed: 0xFEDD,
            log_every: 0,
            selection: Selection::Uniform,
            executor: ExecutorConfig::Ideal,
        }
    }
}

/// Run one complete federated training with the given strategy.
///
/// # Panics
/// Panics if `participants` exceeds the partition's client count or is
/// zero, mirroring the typed errors the partitioners raise at their layer.
pub fn run_federated(
    spec: &ModelSpec,
    train: &Dataset,
    test: &Dataset,
    partition: &Partition,
    strategy: &mut dyn Strategy,
    cfg: &FlConfig,
) -> RunHistory {
    let n_clients = partition.n_clients();
    assert!(cfg.participants > 0, "participants must be positive");
    assert!(
        cfg.participants <= n_clients,
        "K = {} exceeds N = {n_clients}",
        cfg.participants
    );
    assert!(cfg.rounds > 0, "rounds must be positive");

    let mut master = Rng64::new(cfg.seed);
    let mut global = spec.build(master.next_u64());
    let mut local_cfg = cfg.local.clone();
    local_cfg.proximal_mu = strategy.proximal_mu();
    let mut executor =
        cfg.executor
            .build(n_clients, global.param_count(), cfg.participants, cfg.seed);

    // Last-known per-client inference loss, for power-of-choice.
    let mut known_loss: Vec<Option<f32>> = vec![None; n_clients];
    let mut records = Vec::with_capacity(cfg.rounds);
    for round in 0..cfg.rounds {
        // --- Client selection (Algorithm 2; uniform by default).
        let mut select_rng = master.derive(round as u64);
        let selected = match cfg.selection {
            Selection::Uniform => select_rng.sample_indices(n_clients, cfg.participants),
            Selection::PowerOfChoice { candidates } => {
                let d = candidates.clamp(cfg.participants, n_clients);
                let mut pool = select_rng.sample_indices(n_clients, d);
                // Highest last-known loss first; never-seen clients first
                // of all so everyone is eventually profiled.
                pool.sort_by(|&a, &b| {
                    let la = known_loss[a].unwrap_or(f32::INFINITY);
                    let lb = known_loss[b].unwrap_or(f32::INFINITY);
                    lb.partial_cmp(&la).unwrap_or(std::cmp::Ordering::Equal)
                });
                pool.truncate(cfg.participants);
                pool
            }
        };

        // --- Round execution: the executor trains the (non-dropped)
        // clients in parallel — one crossbeam task each — and returns the
        // updates that made it back in time.
        let global_flat = global.flat_params();
        let train_subset = |ids: &[usize]| -> Vec<ClientUpdate> {
            par_map(ids, |_, &client_id| {
                // The clone already carries the broadcast params exactly
                // (`global` does not change mid-round).
                let model = global.clone();
                let mut rng = Rng64::new(cfg.seed ^ 0xC11E)
                    .derive(round as u64)
                    .derive(client_id as u64);
                run_local_round(
                    model,
                    train,
                    partition.client(client_id),
                    client_id,
                    &local_cfg,
                    &mut rng,
                )
            })
        };
        let outcome = executor.execute(round, &selected, &train_subset);
        let updates = outcome.updates;

        // --- Impact factors (the strategy's decision; DRL inference for
        // FedDRL) — timed separately for Figure 9. A round where nothing
        // arrived (everyone dropped or missed the deadline) leaves the
        // global model untouched and the strategy un-consulted.
        let (alphas, strategy_micros, aggregate_micros) = if updates.is_empty() {
            (Vec::new(), 0, 0)
        } else {
            let t0 = Instant::now();
            let raw = strategy.impact_factors_ctx(&RoundContext {
                round,
                global_weights: &global_flat,
                updates: &updates,
            });
            let strategy_micros = t0.elapsed().as_micros() as u64;
            assert_eq!(
                raw.len(),
                updates.len(),
                "strategy returned {} factors for {} clients",
                raw.len(),
                updates.len()
            );
            let alphas = normalize_factors(&raw);

            // --- Weighted aggregation (Eq. 4).
            let t1 = Instant::now();
            let weight_refs: Vec<&[f32]> =
                updates.iter().map(|u| u.weights.as_slice()).collect();
            let new_global = weighted_average(&weight_refs, &alphas);
            let aggregate_micros = t1.elapsed().as_micros() as u64;
            global.set_flat_params(&new_global);
            (alphas, strategy_micros, aggregate_micros)
        };

        for u in &updates {
            known_loss[u.client_id] = Some(u.loss_before);
        }

        // --- Evaluation.
        let (test_accuracy, test_loss) = evaluate(&mut global, test, cfg.eval_batch);
        let record = RoundRecord {
            round,
            test_accuracy,
            test_loss,
            selected: selected.clone(),
            impact_factors: alphas,
            client_losses_before: updates.iter().map(|u| u.loss_before).collect(),
            strategy_micros,
            aggregate_micros,
            hetero: outcome.hetero,
        };
        if cfg.log_every > 0 && round % cfg.log_every == 0 {
            eprintln!(
                "[{}] round {round:>4}: acc {:.4} loss {:.4}",
                strategy.name(),
                test_accuracy,
                test_loss
            );
        }
        records.push(record);
    }

    RunHistory {
        method: strategy.name().to_string(),
        dataset: String::new(),
        partition: partition.method().code().to_string(),
        n_clients,
        participants: cfg.participants,
        seed: cfg.seed,
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{FedAvg, FedProx, Uniform};
    use feddrl_data::partition::PartitionMethod;
    use feddrl_data::synth::SynthSpec;

    fn quick_setup() -> (ModelSpec, Dataset, Dataset, Partition) {
        let spec_ds = SynthSpec {
            train_size: 1200,
            test_size: 300,
            ..SynthSpec::mnist_like()
        };
        let (train, test) = spec_ds.generate(5);
        let partition = PartitionMethod::Iid
            .partition(&train, 6, &mut Rng64::new(9))
            .unwrap();
        let spec = ModelSpec::Mlp {
            in_dim: train.feature_dim(),
            hidden: vec![32],
            out_dim: train.num_classes(),
        };
        (spec, train, test, partition)
    }

    fn quick_cfg(rounds: usize) -> FlConfig {
        FlConfig {
            rounds,
            participants: 6,
            local: LocalTrainConfig {
                epochs: 2,
                batch_size: 16,
                lr: 0.05,
                ..Default::default()
            },
            eval_batch: 128,
            seed: 77,
            log_every: 0,
            selection: Selection::Uniform,
            executor: ExecutorConfig::Ideal,
        }
    }

    #[test]
    fn fedavg_learns_on_iid_data() {
        let (spec, train, test, partition) = quick_setup();
        let mut strategy = FedAvg;
        let history =
            run_federated(&spec, &train, &test, &partition, &mut strategy, &quick_cfg(12));
        assert_eq!(history.records.len(), 12);
        let best = history.best();
        assert!(
            best.best_accuracy > 0.7,
            "FedAvg failed to learn: best acc {}",
            best.best_accuracy
        );
        // Accuracy should improve over the run.
        let first = history.records[0].test_accuracy;
        assert!(best.best_accuracy > first + 0.2);
    }

    #[test]
    fn runs_are_deterministic() {
        let (spec, train, test, partition) = quick_setup();
        let h1 = run_federated(&spec, &train, &test, &partition, &mut FedAvg, &quick_cfg(4));
        let h2 = run_federated(&spec, &train, &test, &partition, &mut FedAvg, &quick_cfg(4));
        assert_eq!(h1.accuracies(), h2.accuracies());
        let mut other_cfg = quick_cfg(4);
        other_cfg.seed = 78;
        let h3 = run_federated(&spec, &train, &test, &partition, &mut FedAvg, &other_cfg);
        assert_ne!(h1.accuracies(), h3.accuracies());
    }

    #[test]
    fn fedprox_propagates_proximal_mu() {
        let (spec, train, test, partition) = quick_setup();
        let mut prox = FedProx::new(0.1);
        let h = run_federated(&spec, &train, &test, &partition, &mut prox, &quick_cfg(3));
        assert_eq!(h.method, "FedProx");
        // Sanity: still learns.
        assert!(h.best().best_accuracy > 0.4);
    }

    #[test]
    fn impact_factors_are_recorded_and_normalized() {
        let (spec, train, test, partition) = quick_setup();
        let h = run_federated(&spec, &train, &test, &partition, &mut Uniform, &quick_cfg(2));
        for r in &h.records {
            let sum: f32 = r.impact_factors.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert_eq!(r.impact_factors.len(), r.selected.len());
            assert_eq!(r.client_losses_before.len(), r.selected.len());
        }
    }

    #[test]
    fn partial_participation_selects_k_clients() {
        let (spec, train, test, partition) = quick_setup();
        let mut cfg = quick_cfg(3);
        cfg.participants = 3;
        let h = run_federated(&spec, &train, &test, &partition, &mut FedAvg, &cfg);
        for r in &h.records {
            assert_eq!(r.selected.len(), 3);
            let mut s = r.selected.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 3, "duplicate client selected");
        }
    }

    #[test]
    fn power_of_choice_prefers_lossy_clients() {
        let (spec, train, test, partition) = quick_setup();
        let mut cfg = quick_cfg(8);
        cfg.participants = 2;
        cfg.selection = Selection::PowerOfChoice { candidates: 6 };
        let h = run_federated(&spec, &train, &test, &partition, &mut FedAvg, &cfg);
        // All clients must eventually be profiled (unseen-first rule).
        let mut seen = std::collections::HashSet::new();
        for r in &h.records {
            for &c in &r.selected {
                seen.insert(c);
            }
            assert_eq!(r.selected.len(), 2);
        }
        assert_eq!(seen.len(), 6, "power-of-choice starved some clients");
        // Still learns.
        assert!(h.best().best_accuracy > 0.5);
    }

    #[test]
    #[should_panic(expected = "exceeds N")]
    fn rejects_k_larger_than_n() {
        let (spec, train, test, partition) = quick_setup();
        let mut cfg = quick_cfg(1);
        cfg.participants = 7;
        let _ = run_federated(&spec, &train, &test, &partition, &mut FedAvg, &cfg);
    }
}
