//! The federated-learning server configuration and the paper-faithful
//! entry point.
//!
//! The round loop itself lives in [`crate::session`] (the Algorithm 2
//! orchestration as a driveable [`Session`]); this module keeps the
//! serializable [`FlConfig`] knob bundle and [`run_federated`] — the
//! original free-function API, retained as a thin compatibility wrapper
//! over [`SessionBuilder`]. The wrapper is the *paper-faithful* entry
//! point: with default components its histories are byte-identical to the
//! pre-session loop (enforced by the committed golden fixture
//! `tests/golden/ideal_history.json`).

use crate::executor::ExecutorConfig;
use crate::history::RunHistory;
use crate::server_opt::ServerOptConfig;
use crate::session::{Session, SessionBuilder};
use crate::strategy::Strategy;
use feddrl_data::dataset::Dataset;
use feddrl_data::partition::Partition;
use feddrl_nn::zoo::ModelSpec;
use serde::{Deserialize, Serialize};

pub use crate::selection::Selection;

use crate::client::LocalTrainConfig;

/// Federated orchestration parameters (paper §4.1.2 defaults).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlConfig {
    /// Communication rounds `T`.
    pub rounds: usize,
    /// Participating clients per round `K` (paper default 10).
    pub participants: usize,
    /// Local solver settings.
    pub local: LocalTrainConfig,
    /// Evaluation batch size.
    pub eval_batch: usize,
    /// Master seed; everything else derives from it.
    pub seed: u64,
    /// Print progress to stderr every `log_every` rounds (0 = silent);
    /// implemented as an auto-installed
    /// [`ProgressLogger`](crate::session::ProgressLogger) observer.
    pub log_every: usize,
    /// Client-selection policy (the paper uses uniform sampling).
    #[serde(default)]
    pub selection: Selection,
    /// Round-execution model: ideal synchronous (default),
    /// deadline-bounded over a heterogeneous device fleet, or buffered
    /// asynchronous aggregation with staleness discounting.
    #[serde(default)]
    pub executor: ExecutorConfig,
    /// Server-side optimizer applied to the aggregated model each round:
    /// plain Eq. 4 replacement (default, byte-identical to the historical
    /// path) or an adaptive step (FedAdam/FedYogi/FedAMSGrad) on the
    /// pseudo-gradient `Δ = aggregate − global`. Skipped in JSON while
    /// `Plain` so existing config/history files keep their exact shape.
    #[serde(default, skip_serializing_if = "ServerOptConfig::is_plain")]
    pub server_opt: ServerOptConfig,
}

impl Default for FlConfig {
    fn default() -> Self {
        Self {
            rounds: 100,
            participants: 10,
            local: LocalTrainConfig::default(),
            eval_batch: 256,
            seed: 0xFEDD,
            log_every: 0,
            selection: Selection::Uniform,
            executor: ExecutorConfig::Ideal,
            server_opt: ServerOptConfig::Plain,
        }
    }
}

impl FlConfig {
    /// Check this configuration against a federation of `n_clients` —
    /// exactly the validation [`SessionBuilder::build`] performs, exposed
    /// separately so callers can reject a degenerate config *before*
    /// constructing models, fleets, or pre-training pipelines.
    ///
    /// # Errors
    /// The same [`FlError`](crate::error::FlError) variants
    /// [`SessionBuilder::build`] reports.
    pub fn validate(&self, n_clients: usize) -> Result<(), crate::error::FlError> {
        use crate::error::FlError;
        if self.participants == 0 {
            return Err(FlError::ZeroParticipants);
        }
        if self.participants > n_clients {
            return Err(FlError::ParticipantsExceedClients {
                participants: self.participants,
                n_clients,
            });
        }
        if self.rounds == 0 {
            return Err(FlError::ZeroRounds);
        }
        match &self.executor {
            ExecutorConfig::Ideal => {}
            ExecutorConfig::Deadline(h) => h.validate()?,
            ExecutorConfig::Buffered(b) => b.validate(self.participants)?,
        }
        self.server_opt.validate()?;
        Ok(())
    }
}

/// Run one complete federated training with the given strategy.
///
/// Compatibility wrapper over [`SessionBuilder`]: builds a session with
/// default components and drives it to completion. New code should use the
/// builder directly — it returns typed [`FlError`](crate::error::FlError)s,
/// supports custom selection policies and observers, records a dataset
/// name, and can be driven one round at a time via
/// [`Session::step`].
///
/// # Panics
/// Panics on the configuration errors the builder reports (`K = 0`,
/// `K > N`, zero rounds, degenerate deadline/fleet), with the historical
/// messages, and on strategy-contract violations mid-run.
pub fn run_federated(
    spec: &ModelSpec,
    train: &Dataset,
    test: &Dataset,
    partition: &Partition,
    strategy: &mut dyn Strategy,
    cfg: &FlConfig,
) -> RunHistory {
    let session: Session<'_> = SessionBuilder::new(spec, train, test, partition, strategy)
        .config(cfg)
        .build()
        .unwrap_or_else(|e| panic!("{e}"));
    session.run().unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::LocalTrainConfig;
    use crate::strategy::{FedAvg, FedProx, Uniform};
    use feddrl_data::partition::PartitionMethod;
    use feddrl_data::synth::SynthSpec;
    use feddrl_nn::rng::Rng64;

    fn quick_setup() -> (ModelSpec, Dataset, Dataset, Partition) {
        let spec_ds = SynthSpec {
            train_size: 1200,
            test_size: 300,
            ..SynthSpec::mnist_like()
        };
        let (train, test) = spec_ds.generate(5);
        let partition = PartitionMethod::Iid
            .partition(&train, 6, &mut Rng64::new(9))
            .unwrap();
        let spec = ModelSpec::Mlp {
            in_dim: train.feature_dim(),
            hidden: vec![32],
            out_dim: train.num_classes(),
        };
        (spec, train, test, partition)
    }

    fn quick_cfg(rounds: usize) -> FlConfig {
        FlConfig {
            rounds,
            participants: 6,
            local: LocalTrainConfig {
                epochs: 2,
                batch_size: 16,
                lr: 0.05,
                ..Default::default()
            },
            eval_batch: 128,
            seed: 77,
            log_every: 0,
            selection: Selection::Uniform,
            executor: ExecutorConfig::Ideal,
            server_opt: ServerOptConfig::Plain,
        }
    }

    #[test]
    fn fedavg_learns_on_iid_data() {
        let (spec, train, test, partition) = quick_setup();
        let mut strategy = FedAvg;
        let history = run_federated(
            &spec,
            &train,
            &test,
            &partition,
            &mut strategy,
            &quick_cfg(12),
        );
        assert_eq!(history.records.len(), 12);
        let best = history.best();
        assert!(
            best.best_accuracy > 0.7,
            "FedAvg failed to learn: best acc {}",
            best.best_accuracy
        );
        // Accuracy should improve over the run.
        let first = history.records[0].test_accuracy;
        assert!(best.best_accuracy > first + 0.2);
    }

    #[test]
    fn runs_are_deterministic() {
        let (spec, train, test, partition) = quick_setup();
        let h1 = run_federated(&spec, &train, &test, &partition, &mut FedAvg, &quick_cfg(4));
        let h2 = run_federated(&spec, &train, &test, &partition, &mut FedAvg, &quick_cfg(4));
        assert_eq!(h1.accuracies(), h2.accuracies());
        let mut other_cfg = quick_cfg(4);
        other_cfg.seed = 78;
        let h3 = run_federated(&spec, &train, &test, &partition, &mut FedAvg, &other_cfg);
        assert_ne!(h1.accuracies(), h3.accuracies());
    }

    #[test]
    fn fedprox_propagates_proximal_mu() {
        let (spec, train, test, partition) = quick_setup();
        let mut prox = FedProx::new(0.1);
        let h = run_federated(&spec, &train, &test, &partition, &mut prox, &quick_cfg(3));
        assert_eq!(h.method, "FedProx");
        // Sanity: still learns.
        assert!(h.best().best_accuracy > 0.4);
    }

    #[test]
    fn impact_factors_are_recorded_and_normalized() {
        let (spec, train, test, partition) = quick_setup();
        let h = run_federated(
            &spec,
            &train,
            &test,
            &partition,
            &mut Uniform,
            &quick_cfg(2),
        );
        for r in &h.records {
            let sum: f32 = r.impact_factors.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert_eq!(r.impact_factors.len(), r.selected.len());
            assert_eq!(r.client_losses_before.len(), r.selected.len());
        }
    }

    #[test]
    fn partial_participation_selects_k_clients() {
        let (spec, train, test, partition) = quick_setup();
        let mut cfg = quick_cfg(3);
        cfg.participants = 3;
        let h = run_federated(&spec, &train, &test, &partition, &mut FedAvg, &cfg);
        for r in &h.records {
            assert_eq!(r.selected.len(), 3);
            let mut s = r.selected.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 3, "duplicate client selected");
        }
    }

    #[test]
    fn power_of_choice_prefers_lossy_clients() {
        let (spec, train, test, partition) = quick_setup();
        let mut cfg = quick_cfg(8);
        cfg.participants = 2;
        cfg.selection = Selection::PowerOfChoice { candidates: 6 };
        let h = run_federated(&spec, &train, &test, &partition, &mut FedAvg, &cfg);
        // All clients must eventually be profiled (unseen-first rule).
        let mut seen = std::collections::HashSet::new();
        for r in &h.records {
            for &c in &r.selected {
                seen.insert(c);
            }
            assert_eq!(r.selected.len(), 2);
        }
        assert_eq!(seen.len(), 6, "power-of-choice starved some clients");
        // Still learns.
        assert!(h.best().best_accuracy > 0.5);
    }

    #[test]
    fn bandwidth_aware_runs_through_the_config_layer() {
        let (spec, train, test, partition) = quick_setup();
        let mut cfg = quick_cfg(4);
        cfg.participants = 3;
        cfg.selection = Selection::BandwidthAware { candidates: 5 };
        let h = run_federated(&spec, &train, &test, &partition, &mut FedAvg, &cfg);
        for r in &h.records {
            assert_eq!(r.selected.len(), 3);
        }
        // Serializable like every other config knob.
        let json = serde_json::to_string(&cfg).unwrap();
        let back: FlConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.selection, cfg.selection);
    }

    #[test]
    #[should_panic(expected = "exceeds N")]
    fn rejects_k_larger_than_n() {
        let (spec, train, test, partition) = quick_setup();
        let mut cfg = quick_cfg(1);
        cfg.participants = 7;
        let _ = run_federated(&spec, &train, &test, &partition, &mut FedAvg, &cfg);
    }
}
