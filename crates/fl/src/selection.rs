//! Pluggable client-selection policies.
//!
//! The paper samples `K` of `N` clients uniformly every round (Algorithm
//! 2, line 3). That choice is a *policy*, and policies beyond uniform —
//! power-of-choice biased sampling (\[3\] in the paper), bandwidth-aware
//! selection that avoids clients a deadline would cut anyway — need
//! per-client state the server accumulates across rounds. This module
//! promotes selection to a first-class abstraction mirroring
//! [`ExecutorConfig`](crate::executor::ExecutorConfig): the serializable
//! [`Selection`] enum stays in the config layer and [`Selection::build`]s
//! a boxed [`SelectionPolicy`]; the policy is consulted once per round
//! with a [`SelectionContext`] carrying everything the server knows —
//! round number, last-known per-client losses, participation counts, and
//! (under the deadline executor) the device fleet's completion-time
//! estimates.
//!
//! Determinism: a policy receives a per-round RNG derived from
//! `(master seed, round)` — the same stream the inline selection match
//! historically used — so built-in policies reproduce old histories
//! bit-for-bit and every policy is deterministic under a fixed seed.

use crate::executor::ReliabilityTable;
use feddrl_nn::rng::Rng64;
use feddrl_sim::device::FleetView;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::HashSet;

/// Client-selection policy for each round (config-layer representation;
/// [`Selection::build`] produces the executable [`SelectionPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Selection {
    /// Uniform sampling without replacement (the paper's setting).
    #[default]
    Uniform,
    /// Power-of-choice (\[3\] in the paper): sample `candidates ≥ K`
    /// clients uniformly, then keep the `K` with the highest last-known
    /// inference loss (unseen clients count as highest). Biases
    /// participation toward struggling clients.
    PowerOfChoice {
        /// Candidate pool size `d` (clamped to `[K, N]`).
        candidates: usize,
    },
    /// Bandwidth-aware power-of-choice: sample `candidates ≥ K` clients
    /// uniformly, then keep the `K` with the highest loss *per predicted
    /// second* — last-known inference loss divided by the device's
    /// estimated upload-completion time, with clients predicted to miss
    /// the round deadline ranked last. Stops the server from sampling
    /// clients it would only cut at the deadline (see
    /// [`BandwidthAwareSelection`]).
    BandwidthAware {
        /// Candidate pool size `d` (clamped to `[K, N]`).
        candidates: usize,
    },
    /// Reliability-aware power-of-choice: candidates are ranked by
    /// *expected* utility — last-known loss times the observed probability
    /// of actually reporting back — so a slot is never knowingly wasted on
    /// a chronically flaky device unless it is informative enough to be
    /// worth the gamble (see [`ReliabilityAwareSelection`]).
    ReliabilityAware {
        /// Candidate pool size `d` (clamped to `[K, N]`).
        candidates: usize,
    },
    /// Staleness-balancing selection for asynchronous executors: idle slow
    /// devices — whose updates arrive chronically stale and would
    /// otherwise be crowded out by the fast-client skew — are oversampled,
    /// and clients with an update already in flight are ranked last (the
    /// executor would skip them as busy, wasting the slot; see
    /// [`StalenessBalancedSelection`]).
    StalenessBalanced {
        /// Candidate pool size `d` (clamped to `[K, N]`).
        candidates: usize,
    },
}

impl Selection {
    /// Build the executable policy for this config (mirrors
    /// [`ExecutorConfig::build`](crate::executor::ExecutorConfig::build)).
    pub fn build(&self) -> Box<dyn SelectionPolicy> {
        match *self {
            Selection::Uniform => Box::new(UniformSelection),
            Selection::PowerOfChoice { candidates } => {
                Box::new(PowerOfChoiceSelection { candidates })
            }
            Selection::BandwidthAware { candidates } => {
                Box::new(BandwidthAwareSelection { candidates })
            }
            Selection::ReliabilityAware { candidates } => {
                Box::new(ReliabilityAwareSelection { candidates })
            }
            Selection::StalenessBalanced { candidates } => {
                Box::new(StalenessBalancedSelection { candidates })
            }
        }
    }
}

/// Everything the server knows when it asks a policy for this round's
/// participants.
pub struct SelectionContext<'a> {
    /// Communication round (0-based).
    pub round: usize,
    /// Total clients `N` in the federation.
    pub n_clients: usize,
    /// Clients to select `K` (the policy must return exactly this many
    /// distinct ids in `[0, N)`).
    pub participants: usize,
    /// Last-known inference loss per client (`None` until a client's first
    /// report arrives), indexed by client id.
    pub known_loss: &'a [Option<f32>],
    /// How many rounds each client has been *selected* for so far,
    /// indexed by client id (fairness-aware policies can rebalance on it).
    pub participation: &'a [usize],
    /// Lazy device-profile view when the run uses a heterogeneity-aware
    /// executor; `None` under the ideal executor. Profiles are derived on
    /// demand, so consulting only the candidate pool costs O(candidates)
    /// regardless of fleet size.
    pub fleet: Option<&'a FleetView>,
    /// Per-client upload payload in bytes (0 under the ideal executor);
    /// feed it to [`DeviceProfile::completion_time_s`](feddrl_sim::device::DeviceProfile::completion_time_s).
    pub upload_bytes: u64,
    /// The executor's round deadline in simulated seconds, if bounded.
    pub deadline_s: Option<f64>,
    /// Clients whose dispatched update is still on its way to the server
    /// (training, uploading, or parked in an unconsumed aggregation
    /// buffer) — sampling them again wastes the slot, because the
    /// executor skips busy devices at dispatch. Empty under round-barrier
    /// executors, which end every round with nothing in flight.
    pub in_flight: &'a [usize],
    /// Per-client *observed* reliability telemetry — dropout counts and
    /// staleness history the executor accumulated so far, keyed by client
    /// id and holding entries only for clients actually dispatched. `None`
    /// for executors without a device model. Policies see only what the
    /// server has witnessed, never the fleet's true failure probabilities.
    pub reliability: Option<&'a ReliabilityTable>,
    /// Clients that have *departed* the fleet under churn (ascending ids).
    /// Dispatching one is guaranteed to be wasted — the executor counts it
    /// as a dropout — so ranking policies demote departed candidates below
    /// every live one. Their telemetry stays in [`Self::reliability`]
    /// (it simply goes stale), and uniform sampling deliberately ignores
    /// this field: the paper's baseline stays oblivious to churn, which is
    /// exactly the behavior the churn-aware policies are measured against.
    /// Empty when the run has no churn process.
    pub departed: &'a [usize],
}

impl SelectionContext<'_> {
    /// Predicted virtual time until `client_id`'s update would arrive at
    /// the server (local compute + upload); `None` when the run has no
    /// device fleet (ideal executor).
    pub fn predicted_completion_s(&self, client_id: usize) -> Option<f64> {
        self.fleet
            .map(|f| f.profile(client_id).completion_time_s(self.upload_bytes))
    }

    /// Whether `client_id` has an update in flight (the executor would
    /// skip it as busy this round).
    pub fn is_in_flight(&self, client_id: usize) -> bool {
        self.in_flight.contains(&client_id)
    }

    /// Observed dropout frequency of `client_id` (0 while the client has
    /// never been tried, or when the executor records no telemetry).
    pub fn observed_dropout_rate(&self, client_id: usize) -> f64 {
        self.reliability
            .map_or(0.0, |stats| stats.get(client_id).dropout_rate())
    }

    /// Mean observed staleness of `client_id`'s aggregated updates (0
    /// while none arrived, or without telemetry).
    pub fn observed_staleness(&self, client_id: usize) -> f64 {
        self.reliability
            .map_or(0.0, |stats| stats.get(client_id).mean_staleness())
    }

    /// Whether `client_id` has departed the fleet under churn (a dispatch
    /// would be wasted as a guaranteed dropout). `departed` is sorted
    /// ascending, so membership is a binary search.
    pub fn is_departed(&self, client_id: usize) -> bool {
        self.departed.binary_search(&client_id).is_ok()
    }
}

/// A pluggable per-round client-selection policy.
///
/// `select` must return exactly `ctx.participants` *distinct* client ids in
/// `[0, ctx.n_clients)`; the session validates the sample and surfaces a
/// violation as [`FlError::InvalidSelection`](crate::error::FlError::InvalidSelection).
/// All randomness must come from the provided `rng` (derived from the
/// master seed and the round number) so runs stay reproducible.
pub trait SelectionPolicy: Send {
    /// Display name for logs and diagnostics.
    fn name(&self) -> &'static str;

    /// Choose this round's participants.
    fn select(&mut self, ctx: &SelectionContext<'_>, rng: &mut Rng64) -> Vec<usize>;
}

/// Uniform sampling without replacement (the paper's setting).
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformSelection;

impl SelectionPolicy for UniformSelection {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, rng: &mut Rng64) -> Vec<usize> {
        rng.sample_indices(ctx.n_clients, ctx.participants)
    }
}

/// Power-of-choice biased sampling (\[3\] in the paper): an oversampled
/// candidate pool is thinned to the `K` highest-loss clients.
#[derive(Debug, Clone, Copy)]
pub struct PowerOfChoiceSelection {
    /// Candidate pool size `d` (clamped to `[K, N]`).
    pub candidates: usize,
}

impl SelectionPolicy for PowerOfChoiceSelection {
    fn name(&self) -> &'static str {
        "power-of-choice"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, rng: &mut Rng64) -> Vec<usize> {
        let d = self.candidates.clamp(ctx.participants, ctx.n_clients);
        let mut pool = rng.sample_indices(ctx.n_clients, d);
        // Highest last-known loss first; never-seen clients first of all so
        // everyone is eventually profiled.
        pool.sort_by(|&a, &b| {
            let la = ctx.known_loss[a].unwrap_or(f32::INFINITY);
            let lb = ctx.known_loss[b].unwrap_or(f32::INFINITY);
            lb.partial_cmp(&la).unwrap_or(Ordering::Equal)
        });
        pool.truncate(ctx.participants);
        pool
    }
}

/// Bandwidth-aware power-of-choice (the ROADMAP's straggler-avoiding
/// policy): candidates are ranked by *loss per predicted second* —
/// `known_loss / completion_time` — so a struggling client on a fast link
/// outranks an equally struggling client the round deadline would cut
/// anyway. Clients whose predicted completion exceeds the deadline score
/// zero and are kept only when the pool has nothing better, which is what
/// turns sampled-then-cut stragglers into useful participants.
///
/// Unseen clients are scored with an optimistic loss prior (the highest
/// loss observed so far, or 1.0 before any report) so fast unseen devices
/// are profiled early; slow unseen devices stay down-ranked by their
/// predicted completion time. Without a device fleet (ideal executor) the
/// policy degrades gracefully to pure loss-biased power-of-choice.
#[derive(Debug, Clone, Copy)]
pub struct BandwidthAwareSelection {
    /// Candidate pool size `d` (clamped to `[K, N]`).
    pub candidates: usize,
}

impl SelectionPolicy for BandwidthAwareSelection {
    fn name(&self) -> &'static str {
        "bandwidth-aware"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, rng: &mut Rng64) -> Vec<usize> {
        let d = self.candidates.clamp(ctx.participants, ctx.n_clients);
        let pool = rng.sample_indices(ctx.n_clients, d);
        let prior = ctx
            .known_loss
            .iter()
            .filter_map(|l| *l)
            .fold(f32::NEG_INFINITY, f32::max);
        let prior = if prior.is_finite() { prior } else { 1.0 };
        let score = |c: usize| -> f64 {
            let loss = f64::from(ctx.known_loss[c].unwrap_or(prior));
            match ctx.predicted_completion_s(c) {
                // No fleet: pure loss-biased power-of-choice.
                None => loss,
                Some(t) => {
                    if ctx.deadline_s.is_some_and(|dl| t > dl) {
                        0.0 // predicted straggler: sampled only as a last resort
                    } else {
                        loss / t.max(1e-9)
                    }
                }
            }
        };
        let mut scored: Vec<(usize, f64)> = pool.into_iter().map(|c| (c, score(c))).collect();
        // Stable sort: ties keep the uniformly-sampled pool order, so the
        // policy stays deterministic under a fixed seed.
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(Ordering::Equal));
        scored.truncate(ctx.participants);
        scored.into_iter().map(|(c, _)| c).collect()
    }
}

/// Reliability-aware power-of-choice (the ROADMAP's dropout-avoiding
/// policy): candidates are ranked by *expected utility* — last-known loss
/// times the observed probability of reporting back — so the policy
/// debiases toward flaky-but-informative clients instead of either
/// wasting slots on chronic dropouts or starving them entirely.
///
/// The report probability is estimated from the executor's telemetry with
/// an optimistic add-one prior, `1 - dropouts / (tried + 1)`: an
/// untried client scores at full loss (so everyone is profiled), and a
/// single observed failure cannot blacklist a device. Clients with an
/// update already in flight are ranked behind every idle candidate — the
/// executor would skip them as busy, wasting the slot. Without telemetry
/// (ideal executor) the policy degrades to pure loss-biased
/// power-of-choice.
#[derive(Debug, Clone, Copy)]
pub struct ReliabilityAwareSelection {
    /// Candidate pool size `d` (clamped to `[K, N]`).
    pub candidates: usize,
}

/// Observed report probability with the add-one prior (see
/// [`ReliabilityAwareSelection`]).
fn report_probability(ctx: &SelectionContext<'_>, client_id: usize) -> f64 {
    match ctx.reliability {
        None => 1.0,
        Some(stats) => {
            let s = stats.get(client_id);
            1.0 - s.dropouts as f64 / (s.dropouts + s.dispatches + 1) as f64
        }
    }
}

/// Sort `pool` viable-before-unviable-before-departed, then by `score`
/// descending; stable, so ties keep the uniformly-sampled pool order and
/// the result is deterministic under a fixed seed. Returns the first `k`.
///
/// Unviable — kept only when the pool has nothing better — means busy
/// (an update in flight: the executor would skip the dispatch) or a
/// predicted straggler under a bounded deadline (the same last-resort
/// rule [`BandwidthAwareSelection`] applies). The straggler tier matters
/// doubly for telemetry-driven policies: under [`LatePolicy::Drop`] a
/// predicted straggler is skipped *before* dispatch, so it never enters
/// the observed dropout counts or loss table — without this tier it
/// would keep its optimistic unobserved score and win a wasted slot
/// every single round.
///
/// Departed clients ([`SelectionContext::departed`]) rank behind even the
/// unviable tier: a busy or doomed device might still contribute, but a
/// departed one is a guaranteed dropout. They are picked only when the
/// pool cannot otherwise fill `k` slots — the contract still requires
/// exactly `k` distinct ids, and the executor charges the waste as a
/// dropout either way.
///
/// [`LatePolicy::Drop`]: crate::executor::LatePolicy::Drop
fn rank_and_take(
    pool: Vec<usize>,
    ctx: &SelectionContext<'_>,
    k: usize,
    score: impl Fn(usize) -> f64,
) -> Vec<usize> {
    // Index the in-flight set once: a per-candidate `is_in_flight` scan
    // is quadratic over wide pools with many updates in the air. A hash
    // set (not a dense `vec![false; n_clients]`) keeps the cost
    // proportional to the in-flight count, not the fleet size — at
    // million-client scale the dense mask would dominate selection.
    let busy: HashSet<usize> = ctx.in_flight.iter().copied().collect();
    let doomed = |c: usize| -> bool {
        match (ctx.deadline_s, ctx.predicted_completion_s(c)) {
            (Some(dl), Some(t)) => t > dl,
            _ => false,
        }
    };
    let tier = |c: usize| -> u8 {
        if ctx.is_departed(c) {
            2
        } else if busy.contains(&c) || doomed(c) {
            1
        } else {
            0
        }
    };
    let mut scored: Vec<(usize, u8, f64)> =
        pool.into_iter().map(|c| (c, tier(c), score(c))).collect();
    scored.sort_by(|a, b| {
        a.1.cmp(&b.1)
            .then_with(|| b.2.partial_cmp(&a.2).unwrap_or(Ordering::Equal))
    });
    scored.truncate(k);
    scored.into_iter().map(|(c, _, _)| c).collect()
}

impl SelectionPolicy for ReliabilityAwareSelection {
    fn name(&self) -> &'static str {
        "reliability-aware"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, rng: &mut Rng64) -> Vec<usize> {
        let d = self.candidates.clamp(ctx.participants, ctx.n_clients);
        let pool = rng.sample_indices(ctx.n_clients, d);
        let prior = ctx
            .known_loss
            .iter()
            .filter_map(|l| *l)
            .fold(f32::NEG_INFINITY, f32::max);
        let prior = if prior.is_finite() { prior } else { 1.0 };
        rank_and_take(pool, ctx, ctx.participants, |c| {
            let loss = f64::from(ctx.known_loss[c].unwrap_or(prior));
            loss * report_probability(ctx, c)
        })
    }
}

/// Staleness-balancing selection (the ROADMAP's async-aware policy): the
/// buffered executor's fast-client skew means slow devices contribute
/// rarely and, when they do, chronically stale — on non-IID data their
/// distributions are then underrepresented in the global model. This
/// policy oversamples *idle slow* devices, scoring each idle candidate by
/// `(1 + mean observed staleness) · predicted completion time` — a slow
/// device is dispatched the moment it goes idle (keeping it continuously
/// training, which is the only way to raise its update frequency), while
/// fast devices can catch up in any later round. Clients with an update
/// in flight rank behind every idle candidate: the executor would skip
/// them as busy, wasting the slot.
///
/// Without a fleet or telemetry every score ties and the stable ranking
/// preserves the uniformly-sampled pool order — a graceful degradation to
/// uniform sampling.
#[derive(Debug, Clone, Copy)]
pub struct StalenessBalancedSelection {
    /// Candidate pool size `d` (clamped to `[K, N]`).
    pub candidates: usize,
}

impl SelectionPolicy for StalenessBalancedSelection {
    fn name(&self) -> &'static str {
        "staleness-balanced"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, rng: &mut Rng64) -> Vec<usize> {
        let d = self.candidates.clamp(ctx.participants, ctx.n_clients);
        let pool = rng.sample_indices(ctx.n_clients, d);
        rank_and_take(pool, ctx, ctx.participants, |c| {
            (1.0 + ctx.observed_staleness(c)) * ctx.predicted_completion_s(c).unwrap_or(1.0)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::ClientReliability;
    use feddrl_sim::device::FleetConfig;

    fn ctx_parts(n: usize) -> (Vec<Option<f32>>, Vec<usize>) {
        ((0..n).map(|i| Some(1.0 + i as f32)).collect(), vec![0; n])
    }

    fn base_ctx<'a>(
        n: usize,
        k: usize,
        known_loss: &'a [Option<f32>],
        participation: &'a [usize],
    ) -> SelectionContext<'a> {
        SelectionContext {
            round: 0,
            n_clients: n,
            participants: k,
            known_loss,
            participation,
            fleet: None,
            upload_bytes: 0,
            deadline_s: None,
            in_flight: &[],
            reliability: None,
            departed: &[],
        }
    }

    fn assert_valid_sample(sample: &[usize], n: usize, k: usize) {
        assert_eq!(sample.len(), k);
        let mut sorted = sample.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), k, "duplicate client selected");
        assert!(sorted.iter().all(|&c| c < n));
    }

    #[test]
    fn config_builds_matching_policy() {
        assert_eq!(Selection::Uniform.build().name(), "uniform");
        assert_eq!(
            Selection::PowerOfChoice { candidates: 8 }.build().name(),
            "power-of-choice"
        );
        assert_eq!(
            Selection::BandwidthAware { candidates: 8 }.build().name(),
            "bandwidth-aware"
        );
        assert_eq!(
            Selection::ReliabilityAware { candidates: 8 }.build().name(),
            "reliability-aware"
        );
        assert_eq!(
            Selection::StalenessBalanced { candidates: 8 }
                .build()
                .name(),
            "staleness-balanced"
        );
    }

    #[test]
    fn uniform_matches_raw_sample_indices() {
        let (loss, part) = ctx_parts(10);
        let ctx = base_ctx(10, 4, &loss, &part);
        let picked = UniformSelection.select(&ctx, &mut Rng64::new(3).derive(0));
        let expected = Rng64::new(3).derive(0).sample_indices(10, 4);
        assert_eq!(picked, expected);
        assert_valid_sample(&picked, 10, 4);
    }

    #[test]
    fn power_of_choice_prefers_unseen_then_lossy() {
        let mut loss: Vec<Option<f32>> = (0..6).map(|i| Some(i as f32)).collect();
        loss[2] = None; // unseen outranks every known loss
        let part = vec![0; 6];
        let ctx = base_ctx(6, 2, &loss, &part);
        // Full pool: the choice is purely loss-ranked.
        let mut policy = PowerOfChoiceSelection { candidates: 6 };
        let picked = policy.select(&ctx, &mut Rng64::new(1));
        assert_valid_sample(&picked, 6, 2);
        assert!(picked.contains(&2), "unseen client not profiled first");
        assert!(picked.contains(&5), "highest-loss client not kept");
    }

    #[test]
    fn bandwidth_aware_downranks_slow_and_doomed_clients() {
        let (loss, part) = ctx_parts(8);
        let fleet = FleetView::new(
            8,
            &FleetConfig {
                compute_skew: 6.0,
                seed: 11,
                ..Default::default()
            },
        );
        let upload = 1_000_000;
        let deadline = fleet.completion_percentile_s(upload, 0.5);
        let ctx = SelectionContext {
            fleet: Some(&fleet),
            upload_bytes: upload,
            deadline_s: Some(deadline),
            ..base_ctx(8, 3, &loss, &part)
        };
        let mut policy = BandwidthAwareSelection { candidates: 8 };
        let picked = policy.select(&ctx, &mut Rng64::new(5));
        assert_valid_sample(&picked, 8, 3);
        for &c in &picked {
            let t = ctx.predicted_completion_s(c).unwrap();
            assert!(
                t <= deadline,
                "policy kept a predicted straggler ({t:.1}s > {deadline:.1}s) \
                 with in-time candidates available"
            );
        }
    }

    #[test]
    fn bandwidth_aware_without_fleet_is_loss_biased() {
        let (loss, part) = ctx_parts(10);
        let ctx = base_ctx(10, 3, &loss, &part);
        let mut policy = BandwidthAwareSelection { candidates: 10 };
        let picked = policy.select(&ctx, &mut Rng64::new(2));
        // Losses rise with the id, the pool is the whole fleet: the three
        // highest ids must win.
        assert_eq!(
            {
                let mut p = picked;
                p.sort_unstable();
                p
            },
            vec![7, 8, 9]
        );
    }

    /// Telemetry where client `i` has dropped `drops[i]` of 10 tries.
    fn stats_from_drops(drops: &[usize]) -> ReliabilityTable {
        drops
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                (
                    i,
                    ClientReliability {
                        dropouts: d,
                        dispatches: 10 - d,
                        aggregated: 10 - d,
                        staleness_sum: 0,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn reliability_aware_discounts_flaky_clients_by_expected_utility() {
        // Equal losses; client 2 dropped 9 of 10 tries, client 5 none.
        let loss = vec![Some(1.0f32); 6];
        let part = vec![0; 6];
        let stats = stats_from_drops(&[0, 0, 9, 0, 0, 0]);
        let ctx = SelectionContext {
            reliability: Some(&stats),
            ..base_ctx(6, 5, &loss, &part)
        };
        let picked = ReliabilityAwareSelection { candidates: 6 }.select(&ctx, &mut Rng64::new(4));
        assert_valid_sample(&picked, 6, 5);
        assert!(
            !picked.contains(&2),
            "chronic dropout kept over reliable peers"
        );
    }

    #[test]
    fn reliability_aware_keeps_flaky_but_informative_clients() {
        // Client 0 drops half its rounds but its loss towers over the
        // rest: expected utility 1.0 * (1 - 5/11) ≈ 0.55 still beats the
        // reliable clients' 0.1 — flaky-but-informative wins the slot.
        let mut loss = vec![Some(0.1f32); 6];
        loss[0] = Some(1.0);
        let part = vec![0; 6];
        let stats = stats_from_drops(&[5, 0, 0, 0, 0, 0]);
        let ctx = SelectionContext {
            reliability: Some(&stats),
            ..base_ctx(6, 2, &loss, &part)
        };
        let picked = ReliabilityAwareSelection { candidates: 6 }.select(&ctx, &mut Rng64::new(4));
        assert!(picked.contains(&0), "informative flaky client starved");
    }

    /// Regression: under `LatePolicy::Drop` a predicted straggler is
    /// skipped *before* dispatch, so it never enters telemetry or the
    /// loss table — without the last-resort tier its forever-unobserved
    /// optimistic score would win a wasted slot every round.
    #[test]
    fn reliability_and_staleness_policies_downrank_predicted_stragglers() {
        let loss = vec![None; 8]; // nothing observed: everyone at the prior
        let part = vec![0; 8];
        let fleet = FleetView::new(
            8,
            &FleetConfig {
                compute_skew: 6.0,
                seed: 11,
                ..Default::default()
            },
        );
        let upload = 1_000_000;
        let deadline = fleet.completion_percentile_s(upload, 0.5);
        let ctx = SelectionContext {
            fleet: Some(&fleet),
            upload_bytes: upload,
            deadline_s: Some(deadline),
            ..base_ctx(8, 3, &loss, &part)
        };
        for mut policy in [
            Box::new(ReliabilityAwareSelection { candidates: 8 }) as Box<dyn SelectionPolicy>,
            Box::new(StalenessBalancedSelection { candidates: 8 }),
        ] {
            let picked = policy.select(&ctx, &mut Rng64::new(5));
            assert_valid_sample(&picked, 8, 3);
            for &c in &picked {
                let t = ctx.predicted_completion_s(c).unwrap();
                assert!(
                    t <= deadline,
                    "{} kept a predicted straggler ({t:.1}s > {deadline:.1}s) \
                     with in-time candidates available",
                    policy.name()
                );
            }
        }
    }

    #[test]
    fn reliability_aware_without_telemetry_is_loss_biased() {
        let (loss, part) = ctx_parts(10);
        let ctx = base_ctx(10, 3, &loss, &part);
        let picked = ReliabilityAwareSelection { candidates: 10 }.select(&ctx, &mut Rng64::new(2));
        assert_eq!(
            {
                let mut p = picked;
                p.sort_unstable();
                p
            },
            vec![7, 8, 9]
        );
    }

    #[test]
    fn staleness_balanced_oversamples_idle_slow_devices() {
        let (loss, part) = ctx_parts(8);
        let fleet = FleetView::new(
            8,
            &FleetConfig {
                compute_skew: 6.0,
                seed: 11,
                ..Default::default()
            },
        );
        let upload = 1_000_000;
        let ctx = SelectionContext {
            fleet: Some(&fleet),
            upload_bytes: upload,
            ..base_ctx(8, 3, &loss, &part)
        };
        let picked = StalenessBalancedSelection { candidates: 8 }.select(&ctx, &mut Rng64::new(5));
        assert_valid_sample(&picked, 8, 3);
        // Full pool, no history, everyone idle: exactly the three slowest
        // devices must be chosen.
        let mut by_slowness: Vec<usize> = (0..8).collect();
        by_slowness.sort_by(|&a, &b| {
            fleet
                .profile(b)
                .completion_time_s(upload)
                .total_cmp(&fleet.profile(a).completion_time_s(upload))
        });
        let mut expected = by_slowness[..3].to_vec();
        expected.sort_unstable();
        assert_eq!(
            {
                let mut p = picked;
                p.sort_unstable();
                p
            },
            expected
        );
    }

    #[test]
    fn in_flight_clients_rank_behind_every_idle_candidate() {
        let (loss, part) = ctx_parts(6);
        let in_flight = [0usize, 1, 2];
        let ctx = SelectionContext {
            in_flight: &in_flight,
            ..base_ctx(6, 3, &loss, &part)
        };
        for mut policy in [
            Box::new(ReliabilityAwareSelection { candidates: 6 }) as Box<dyn SelectionPolicy>,
            Box::new(StalenessBalancedSelection { candidates: 6 }),
        ] {
            let picked = policy.select(&ctx, &mut Rng64::new(9));
            assert_valid_sample(&picked, 6, 3);
            assert_eq!(
                {
                    let mut p = picked;
                    p.sort_unstable();
                    p
                },
                vec![3, 4, 5],
                "{} sampled a busy client with idle candidates available",
                policy.name()
            );
        }
    }

    #[test]
    fn departed_clients_rank_behind_even_busy_ones() {
        // Clients 0-1 departed under churn, client 2 busy: the ranking
        // policies must fill from the three live idle candidates, and the
        // busy client must still outrank the departed ones if forced.
        let (loss, part) = ctx_parts(6);
        let in_flight = [2usize];
        let departed = [0usize, 1];
        let ctx = SelectionContext {
            in_flight: &in_flight,
            departed: &departed,
            ..base_ctx(6, 3, &loss, &part)
        };
        assert!(ctx.is_departed(0) && ctx.is_departed(1) && !ctx.is_departed(2));
        for mut policy in [
            Box::new(ReliabilityAwareSelection { candidates: 6 }) as Box<dyn SelectionPolicy>,
            Box::new(StalenessBalancedSelection { candidates: 6 }),
        ] {
            let picked = policy.select(&ctx, &mut Rng64::new(9));
            assert_valid_sample(&picked, 6, 3);
            assert!(
                !picked.contains(&0) && !picked.contains(&1),
                "{} dispatched a departed client with live candidates available",
                policy.name()
            );
        }
        // Forced: four slots, only three live idle candidates — the busy
        // client must be taken before any departed one.
        let ctx = SelectionContext {
            in_flight: &in_flight,
            departed: &departed,
            ..base_ctx(6, 4, &loss, &part)
        };
        let picked = ReliabilityAwareSelection { candidates: 6 }.select(&ctx, &mut Rng64::new(9));
        assert_valid_sample(&picked, 6, 4);
        assert!(
            picked.contains(&2),
            "busy client must be preferred over departed ones"
        );
        assert!(!(picked.contains(&0) && picked.contains(&1)));
    }

    #[test]
    fn staleness_balanced_without_context_degrades_to_pool_order() {
        let loss = vec![None; 10];
        let part = vec![0; 10];
        let ctx = base_ctx(10, 4, &loss, &part);
        let picked = StalenessBalancedSelection { candidates: 10 }.select(&ctx, &mut Rng64::new(3));
        // All scores tie; the stable ranking must preserve the sampled
        // pool order exactly (here: the full-pool sample order).
        let expected: Vec<usize> = Rng64::new(3).sample_indices(10, 10)[..4].to_vec();
        assert_eq!(picked, expected);
    }
}
