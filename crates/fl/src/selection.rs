//! Pluggable client-selection policies.
//!
//! The paper samples `K` of `N` clients uniformly every round (Algorithm
//! 2, line 3). That choice is a *policy*, and policies beyond uniform —
//! power-of-choice biased sampling (\[3\] in the paper), bandwidth-aware
//! selection that avoids clients a deadline would cut anyway — need
//! per-client state the server accumulates across rounds. This module
//! promotes selection to a first-class abstraction mirroring
//! [`ExecutorConfig`](crate::executor::ExecutorConfig): the serializable
//! [`Selection`] enum stays in the config layer and [`Selection::build`]s
//! a boxed [`SelectionPolicy`]; the policy is consulted once per round
//! with a [`SelectionContext`] carrying everything the server knows —
//! round number, last-known per-client losses, participation counts, and
//! (under the deadline executor) the device fleet's completion-time
//! estimates.
//!
//! Determinism: a policy receives a per-round RNG derived from
//! `(master seed, round)` — the same stream the inline selection match
//! historically used — so built-in policies reproduce old histories
//! bit-for-bit and every policy is deterministic under a fixed seed.

use feddrl_nn::rng::Rng64;
use feddrl_sim::device::Fleet;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// Client-selection policy for each round (config-layer representation;
/// [`Selection::build`] produces the executable [`SelectionPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Selection {
    /// Uniform sampling without replacement (the paper's setting).
    #[default]
    Uniform,
    /// Power-of-choice (\[3\] in the paper): sample `candidates ≥ K`
    /// clients uniformly, then keep the `K` with the highest last-known
    /// inference loss (unseen clients count as highest). Biases
    /// participation toward struggling clients.
    PowerOfChoice {
        /// Candidate pool size `d` (clamped to `[K, N]`).
        candidates: usize,
    },
    /// Bandwidth-aware power-of-choice: sample `candidates ≥ K` clients
    /// uniformly, then keep the `K` with the highest loss *per predicted
    /// second* — last-known inference loss divided by the device's
    /// estimated upload-completion time, with clients predicted to miss
    /// the round deadline ranked last. Stops the server from sampling
    /// clients it would only cut at the deadline (see
    /// [`BandwidthAwareSelection`]).
    BandwidthAware {
        /// Candidate pool size `d` (clamped to `[K, N]`).
        candidates: usize,
    },
}

impl Selection {
    /// Build the executable policy for this config (mirrors
    /// [`ExecutorConfig::build`](crate::executor::ExecutorConfig::build)).
    pub fn build(&self) -> Box<dyn SelectionPolicy> {
        match *self {
            Selection::Uniform => Box::new(UniformSelection),
            Selection::PowerOfChoice { candidates } => {
                Box::new(PowerOfChoiceSelection { candidates })
            }
            Selection::BandwidthAware { candidates } => {
                Box::new(BandwidthAwareSelection { candidates })
            }
        }
    }
}

/// Everything the server knows when it asks a policy for this round's
/// participants.
pub struct SelectionContext<'a> {
    /// Communication round (0-based).
    pub round: usize,
    /// Total clients `N` in the federation.
    pub n_clients: usize,
    /// Clients to select `K` (the policy must return exactly this many
    /// distinct ids in `[0, N)`).
    pub participants: usize,
    /// Last-known inference loss per client (`None` until a client's first
    /// report arrives), indexed by client id.
    pub known_loss: &'a [Option<f32>],
    /// How many rounds each client has been *selected* for so far,
    /// indexed by client id (fairness-aware policies can rebalance on it).
    pub participation: &'a [usize],
    /// Device profiles when the run uses a heterogeneity-aware executor;
    /// `None` under the ideal executor.
    pub fleet: Option<&'a Fleet>,
    /// Per-client upload payload in bytes (0 under the ideal executor);
    /// feed it to [`DeviceProfile::completion_time_s`](feddrl_sim::device::DeviceProfile::completion_time_s).
    pub upload_bytes: u64,
    /// The executor's round deadline in simulated seconds, if bounded.
    pub deadline_s: Option<f64>,
}

impl SelectionContext<'_> {
    /// Predicted virtual time until `client_id`'s update would arrive at
    /// the server (local compute + upload); `None` when the run has no
    /// device fleet (ideal executor).
    pub fn predicted_completion_s(&self, client_id: usize) -> Option<f64> {
        self.fleet
            .map(|f| f.profile(client_id).completion_time_s(self.upload_bytes))
    }
}

/// A pluggable per-round client-selection policy.
///
/// `select` must return exactly `ctx.participants` *distinct* client ids in
/// `[0, ctx.n_clients)`; the session validates the sample and surfaces a
/// violation as [`FlError::InvalidSelection`](crate::error::FlError::InvalidSelection).
/// All randomness must come from the provided `rng` (derived from the
/// master seed and the round number) so runs stay reproducible.
pub trait SelectionPolicy: Send {
    /// Display name for logs and diagnostics.
    fn name(&self) -> &'static str;

    /// Choose this round's participants.
    fn select(&mut self, ctx: &SelectionContext<'_>, rng: &mut Rng64) -> Vec<usize>;
}

/// Uniform sampling without replacement (the paper's setting).
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformSelection;

impl SelectionPolicy for UniformSelection {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, rng: &mut Rng64) -> Vec<usize> {
        rng.sample_indices(ctx.n_clients, ctx.participants)
    }
}

/// Power-of-choice biased sampling (\[3\] in the paper): an oversampled
/// candidate pool is thinned to the `K` highest-loss clients.
#[derive(Debug, Clone, Copy)]
pub struct PowerOfChoiceSelection {
    /// Candidate pool size `d` (clamped to `[K, N]`).
    pub candidates: usize,
}

impl SelectionPolicy for PowerOfChoiceSelection {
    fn name(&self) -> &'static str {
        "power-of-choice"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, rng: &mut Rng64) -> Vec<usize> {
        let d = self.candidates.clamp(ctx.participants, ctx.n_clients);
        let mut pool = rng.sample_indices(ctx.n_clients, d);
        // Highest last-known loss first; never-seen clients first of all so
        // everyone is eventually profiled.
        pool.sort_by(|&a, &b| {
            let la = ctx.known_loss[a].unwrap_or(f32::INFINITY);
            let lb = ctx.known_loss[b].unwrap_or(f32::INFINITY);
            lb.partial_cmp(&la).unwrap_or(Ordering::Equal)
        });
        pool.truncate(ctx.participants);
        pool
    }
}

/// Bandwidth-aware power-of-choice (the ROADMAP's straggler-avoiding
/// policy): candidates are ranked by *loss per predicted second* —
/// `known_loss / completion_time` — so a struggling client on a fast link
/// outranks an equally struggling client the round deadline would cut
/// anyway. Clients whose predicted completion exceeds the deadline score
/// zero and are kept only when the pool has nothing better, which is what
/// turns sampled-then-cut stragglers into useful participants.
///
/// Unseen clients are scored with an optimistic loss prior (the highest
/// loss observed so far, or 1.0 before any report) so fast unseen devices
/// are profiled early; slow unseen devices stay down-ranked by their
/// predicted completion time. Without a device fleet (ideal executor) the
/// policy degrades gracefully to pure loss-biased power-of-choice.
#[derive(Debug, Clone, Copy)]
pub struct BandwidthAwareSelection {
    /// Candidate pool size `d` (clamped to `[K, N]`).
    pub candidates: usize,
}

impl SelectionPolicy for BandwidthAwareSelection {
    fn name(&self) -> &'static str {
        "bandwidth-aware"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, rng: &mut Rng64) -> Vec<usize> {
        let d = self.candidates.clamp(ctx.participants, ctx.n_clients);
        let pool = rng.sample_indices(ctx.n_clients, d);
        let prior = ctx
            .known_loss
            .iter()
            .filter_map(|l| *l)
            .fold(f32::NEG_INFINITY, f32::max);
        let prior = if prior.is_finite() { prior } else { 1.0 };
        let score = |c: usize| -> f64 {
            let loss = f64::from(ctx.known_loss[c].unwrap_or(prior));
            match ctx.predicted_completion_s(c) {
                // No fleet: pure loss-biased power-of-choice.
                None => loss,
                Some(t) => {
                    if ctx.deadline_s.is_some_and(|dl| t > dl) {
                        0.0 // predicted straggler: sampled only as a last resort
                    } else {
                        loss / t.max(1e-9)
                    }
                }
            }
        };
        let mut scored: Vec<(usize, f64)> = pool.into_iter().map(|c| (c, score(c))).collect();
        // Stable sort: ties keep the uniformly-sampled pool order, so the
        // policy stays deterministic under a fixed seed.
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(Ordering::Equal));
        scored.truncate(ctx.participants);
        scored.into_iter().map(|(c, _)| c).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feddrl_sim::device::FleetConfig;

    fn ctx_parts(n: usize) -> (Vec<Option<f32>>, Vec<usize>) {
        ((0..n).map(|i| Some(1.0 + i as f32)).collect(), vec![0; n])
    }

    fn base_ctx<'a>(
        n: usize,
        k: usize,
        known_loss: &'a [Option<f32>],
        participation: &'a [usize],
    ) -> SelectionContext<'a> {
        SelectionContext {
            round: 0,
            n_clients: n,
            participants: k,
            known_loss,
            participation,
            fleet: None,
            upload_bytes: 0,
            deadline_s: None,
        }
    }

    fn assert_valid_sample(sample: &[usize], n: usize, k: usize) {
        assert_eq!(sample.len(), k);
        let mut sorted = sample.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), k, "duplicate client selected");
        assert!(sorted.iter().all(|&c| c < n));
    }

    #[test]
    fn config_builds_matching_policy() {
        assert_eq!(Selection::Uniform.build().name(), "uniform");
        assert_eq!(
            Selection::PowerOfChoice { candidates: 8 }.build().name(),
            "power-of-choice"
        );
        assert_eq!(
            Selection::BandwidthAware { candidates: 8 }.build().name(),
            "bandwidth-aware"
        );
    }

    #[test]
    fn uniform_matches_raw_sample_indices() {
        let (loss, part) = ctx_parts(10);
        let ctx = base_ctx(10, 4, &loss, &part);
        let picked = UniformSelection.select(&ctx, &mut Rng64::new(3).derive(0));
        let expected = Rng64::new(3).derive(0).sample_indices(10, 4);
        assert_eq!(picked, expected);
        assert_valid_sample(&picked, 10, 4);
    }

    #[test]
    fn power_of_choice_prefers_unseen_then_lossy() {
        let mut loss: Vec<Option<f32>> = (0..6).map(|i| Some(i as f32)).collect();
        loss[2] = None; // unseen outranks every known loss
        let part = vec![0; 6];
        let ctx = base_ctx(6, 2, &loss, &part);
        // Full pool: the choice is purely loss-ranked.
        let mut policy = PowerOfChoiceSelection { candidates: 6 };
        let picked = policy.select(&ctx, &mut Rng64::new(1));
        assert_valid_sample(&picked, 6, 2);
        assert!(picked.contains(&2), "unseen client not profiled first");
        assert!(picked.contains(&5), "highest-loss client not kept");
    }

    #[test]
    fn bandwidth_aware_downranks_slow_and_doomed_clients() {
        let (loss, part) = ctx_parts(8);
        let fleet = Fleet::generate(
            8,
            &FleetConfig {
                compute_skew: 6.0,
                seed: 11,
                ..Default::default()
            },
        );
        let upload = 1_000_000;
        let deadline = fleet.completion_percentile_s(upload, 0.5);
        let ctx = SelectionContext {
            fleet: Some(&fleet),
            upload_bytes: upload,
            deadline_s: Some(deadline),
            ..base_ctx(8, 3, &loss, &part)
        };
        let mut policy = BandwidthAwareSelection { candidates: 8 };
        let picked = policy.select(&ctx, &mut Rng64::new(5));
        assert_valid_sample(&picked, 8, 3);
        for &c in &picked {
            let t = ctx.predicted_completion_s(c).unwrap();
            assert!(
                t <= deadline,
                "policy kept a predicted straggler ({t:.1}s > {deadline:.1}s) \
                 with in-time candidates available"
            );
        }
    }

    #[test]
    fn bandwidth_aware_without_fleet_is_loss_biased() {
        let (loss, part) = ctx_parts(10);
        let ctx = base_ctx(10, 3, &loss, &part);
        let mut policy = BandwidthAwareSelection { candidates: 10 };
        let picked = policy.select(&ctx, &mut Rng64::new(2));
        // Losses rise with the id, the pool is the whole fleet: the three
        // highest ids must win.
        assert_eq!({ let mut p = picked; p.sort_unstable(); p }, vec![7, 8, 9]);
    }
}
