//! Server-side adaptive optimizers over the aggregated pseudo-gradient.
//!
//! The paper's Eq. 4 server step is pure replacement: the weighted
//! average of client updates *becomes* the next global model. Reddi et
//! al.'s adaptive federated optimization ("Adaptive Federated
//! Optimization", and the non-IID treatment in arXiv:2009.06557) instead
//! treats the averaged model as a noisy *target* and folds it in through
//! a server optimizer: with pseudo-gradient `Δ_t = aggregate − global`,
//!
//! ```text
//! m_t = β₁·m_{t−1} + (1 − β₁)·Δ_t
//! v_t = β₂·v_{t−1} + (1 − β₂)·Δ_t²                  (FedAdam / FedAMSGrad)
//! v_t = v_{t−1} − (1 − β₂)·Δ_t²·sign(v_{t−1} − Δ_t²) (FedYogi)
//! v̂_t = max(v̂_{t−1}, v_t)                           (FedAMSGrad only)
//! w_{t+1} = w_t + lr · m_t / (√v_t + τ)
//! ```
//!
//! The pseudo-gradient is computed *after* masked averaging, staleness
//! discounting and server mixing, so every executor (ideal, deadline,
//! buffered, networked) composes with every optimizer unchanged: the
//! optimizer only ever sees "the model the replacement path would have
//! installed" and decides how far to move toward it.
//!
//! [`ServerOptConfig::Plain`] is the default and is *structurally*
//! byte-identical to the historical replacement path — its
//! [`ServerOpt::apply`] returns the aggregate untouched, no arithmetic —
//! so the golden fixture `tests/golden/ideal_history.json` and every
//! existing history stay bit-for-bit (pinned by `tests/adaptive_props.rs`).
//!
//! Moment state lives in `f64`: `f32 → f64` promotion is exact and the
//! difference of two `f32`s is exactly representable in `f64`, so the
//! accumulated state is independent of summation quirks in `f32`.

use serde::{Deserialize, Serialize};

use crate::error::FlError;

/// Hyper-parameters shared by every adaptive server optimizer.
///
/// Defaults follow the grid centers used by Reddi et al. for the
/// cross-device benchmarks: a conservative server learning rate with
/// standard moment decay and an adaptivity floor `τ` that keeps early
/// steps (tiny `v`) bounded by `lr·|Δ|/τ`-ish magnitudes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveParams {
    /// Server learning rate `lr` (must be positive and finite).
    pub lr: f64,
    /// First-moment decay `β₁ ∈ [0, 1)`.
    pub beta1: f64,
    /// Second-moment decay `β₂ ∈ [0, 1)`.
    pub beta2: f64,
    /// Adaptivity floor `τ` added to `√v` (must be positive and finite).
    pub tau: f64,
}

impl Default for AdaptiveParams {
    /// `lr = 0.5`, `β₁ = 0.9`, `β₂ = 0.99`, `τ = 1e-3`.
    fn default() -> Self {
        Self {
            lr: 0.5,
            beta1: 0.9,
            beta2: 0.99,
            tau: 1e-3,
        }
    }
}

impl AdaptiveParams {
    /// Check the hyper-parameters, naming the offending knob.
    ///
    /// # Errors
    /// [`FlError::InvalidServerOpt`] when `lr` or `τ` is non-positive or
    /// non-finite, or a `β` falls outside `[0, 1)`.
    pub fn validate(&self) -> Result<(), FlError> {
        let bad = |reason: String| Err(FlError::InvalidServerOpt { reason });
        if !(self.lr.is_finite() && self.lr > 0.0) {
            return bad(format!("lr must be positive and finite, got {}", self.lr));
        }
        if !(self.tau.is_finite() && self.tau > 0.0) {
            return bad(format!("tau must be positive and finite, got {}", self.tau));
        }
        for (name, beta) in [("beta1", self.beta1), ("beta2", self.beta2)] {
            if !(0.0..1.0).contains(&beta) || !beta.is_finite() {
                return bad(format!("{name} must be in [0, 1), got {beta}"));
            }
        }
        Ok(())
    }
}

/// Which server optimizer a [`Session`](crate::session::Session) applies
/// to the aggregated model each round (an
/// [`FlConfig`](crate::server::FlConfig) knob; `Plain` is the paper's
/// pure replacement and the default).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ServerOptConfig {
    /// Eq. 4 replacement: the aggregate *is* the next global model.
    /// Byte-identical to the pre-optimizer code path.
    #[default]
    Plain,
    /// Adam on the pseudo-gradient (`v` decays exponentially).
    FedAdam(AdaptiveParams),
    /// Yogi on the pseudo-gradient: `v` moves *toward* `Δ²` additively,
    /// so it reacts slower to sudden gradient-scale drops than Adam.
    FedYogi(AdaptiveParams),
    /// AMSGrad on the pseudo-gradient: the step uses the running max
    /// `v̂ = max(v̂, v)`, so the effective learning rate never grows.
    FedAMSGrad(AdaptiveParams),
}

impl ServerOptConfig {
    /// `true` for the default replacement path — used as the
    /// `skip_serializing_if` predicate so legacy config/history JSON
    /// keeps its exact shape.
    pub fn is_plain(&self) -> bool {
        matches!(self, ServerOptConfig::Plain)
    }

    /// The table/CSV label experiment sweeps print for this optimizer.
    pub fn name(&self) -> &'static str {
        match self {
            ServerOptConfig::Plain => "plain",
            ServerOptConfig::FedAdam(_) => "fedadam",
            ServerOptConfig::FedYogi(_) => "fedyogi",
            ServerOptConfig::FedAMSGrad(_) => "fedamsgrad",
        }
    }

    /// Check the configuration (no-op for `Plain`).
    ///
    /// # Errors
    /// [`FlError::InvalidServerOpt`] for non-positive `lr`/`τ` or betas
    /// outside `[0, 1)`.
    pub fn validate(&self) -> Result<(), FlError> {
        match self {
            ServerOptConfig::Plain => Ok(()),
            ServerOptConfig::FedAdam(p)
            | ServerOptConfig::FedYogi(p)
            | ServerOptConfig::FedAMSGrad(p) => p.validate(),
        }
    }

    /// Build the stateful optimizer this config describes. Call
    /// [`ServerOptConfig::validate`] first; `build` assumes a valid
    /// config.
    pub fn build(&self) -> Box<dyn ServerOpt> {
        match *self {
            ServerOptConfig::Plain => Box::new(PlainOpt),
            ServerOptConfig::FedAdam(p) => Box::new(AdaptiveOpt::new(AdaptiveKind::Adam, p)),
            ServerOptConfig::FedYogi(p) => Box::new(AdaptiveOpt::new(AdaptiveKind::Yogi, p)),
            ServerOptConfig::FedAMSGrad(p) => Box::new(AdaptiveOpt::new(AdaptiveKind::AmsGrad, p)),
        }
    }
}

/// A stateful server-side optimizer: folds each round's aggregated model
/// into the next global model, carrying moment state across rounds for
/// the lifetime of one [`Session`](crate::session::Session).
pub trait ServerOpt: Send {
    /// Short optimizer name for logs and tables.
    fn name(&self) -> &'static str;

    /// Produce the next global model from the current one and the round's
    /// aggregation target.
    ///
    /// `aggregate` is the result of masked weighted averaging + staleness
    /// discounting + server mixing — exactly the vector the historical
    /// replacement path would install verbatim. Implementations may
    /// consume and return it unchanged (that's [`PlainOpt`]'s whole
    /// contract) or compute a damped step toward it.
    fn apply(&mut self, global: &[f32], aggregate: Vec<f32>) -> Vec<f32>;
}

/// Eq. 4 replacement: returns the aggregate untouched. Stateless, no
/// arithmetic — byte-identity with the pre-optimizer path is structural,
/// not numerical.
#[derive(Debug, Default, Clone, Copy)]
pub struct PlainOpt;

impl ServerOpt for PlainOpt {
    fn name(&self) -> &'static str {
        "plain"
    }

    fn apply(&mut self, _global: &[f32], aggregate: Vec<f32>) -> Vec<f32> {
        aggregate
    }
}

/// Which second-moment rule an [`AdaptiveOpt`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AdaptiveKind {
    Adam,
    Yogi,
    AmsGrad,
}

/// FedAdam/FedYogi/FedAMSGrad: one implementation, three second-moment
/// rules. Moment state is lazily sized on the first round (the model
/// dimension is fixed for a session's lifetime) and carried across
/// `apply` calls — `step()`-driven and `run()`-driven sessions see the
/// identical state sequence.
struct AdaptiveOpt {
    kind: AdaptiveKind,
    p: AdaptiveParams,
    /// First moment `m`, one slot per parameter.
    m: Vec<f64>,
    /// Second moment `v`, one slot per parameter.
    v: Vec<f64>,
    /// Running max `v̂` (AMSGrad only; empty otherwise).
    vmax: Vec<f64>,
}

impl AdaptiveOpt {
    fn new(kind: AdaptiveKind, p: AdaptiveParams) -> Self {
        Self {
            kind,
            p,
            m: Vec::new(),
            v: Vec::new(),
            vmax: Vec::new(),
        }
    }
}

impl ServerOpt for AdaptiveOpt {
    fn name(&self) -> &'static str {
        match self.kind {
            AdaptiveKind::Adam => "fedadam",
            AdaptiveKind::Yogi => "fedyogi",
            AdaptiveKind::AmsGrad => "fedamsgrad",
        }
    }

    fn apply(&mut self, global: &[f32], aggregate: Vec<f32>) -> Vec<f32> {
        let dim = global.len();
        assert_eq!(
            aggregate.len(),
            dim,
            "aggregate dimension {} does not match the global model's {}",
            aggregate.len(),
            dim
        );
        if self.m.is_empty() {
            self.m = vec![0.0; dim];
            self.v = vec![0.0; dim];
            if self.kind == AdaptiveKind::AmsGrad {
                self.vmax = vec![0.0; dim];
            }
        }
        assert_eq!(
            self.m.len(),
            dim,
            "model dimension changed mid-session ({} -> {dim})",
            self.m.len()
        );
        let AdaptiveParams {
            lr,
            beta1,
            beta2,
            tau,
        } = self.p;
        let mut next = aggregate;
        for i in 0..dim {
            let g = global[i] as f64;
            let delta = next[i] as f64 - g; // exact: f32 values, f64 math
            let m = beta1 * self.m[i] + (1.0 - beta1) * delta;
            let d2 = delta * delta;
            let v = match self.kind {
                AdaptiveKind::Adam | AdaptiveKind::AmsGrad => {
                    beta2 * self.v[i] + (1.0 - beta2) * d2
                }
                AdaptiveKind::Yogi => self.v[i] - (1.0 - beta2) * d2 * (self.v[i] - d2).signum(),
            };
            self.m[i] = m;
            self.v[i] = v;
            let denom_v = if self.kind == AdaptiveKind::AmsGrad {
                self.vmax[i] = self.vmax[i].max(v);
                self.vmax[i]
            } else {
                v
            };
            next[i] = (g + lr * m / (denom_v.sqrt() + tau)) as f32;
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> AdaptiveParams {
        AdaptiveParams::default()
    }

    #[test]
    fn plain_returns_the_aggregate_bitwise() {
        let global = vec![1.0f32, -2.5, 0.125];
        let aggregate = vec![0.3f32, f32::MIN_POSITIVE, -0.0];
        let bits: Vec<u32> = aggregate.iter().map(|w| w.to_bits()).collect();
        let out = PlainOpt.apply(&global, aggregate);
        let out_bits: Vec<u32> = out.iter().map(|w| w.to_bits()).collect();
        assert_eq!(out_bits, bits, "plain must not touch a single bit");
    }

    #[test]
    fn adam_first_step_matches_the_closed_form() {
        // One step from zero state: m = (1−β₁)Δ, v = (1−β₂)Δ², so
        // w' = w + lr·(1−β₁)Δ / (√((1−β₂))·|Δ| + τ).
        let p = params();
        let mut opt = ServerOptConfig::FedAdam(p).build();
        let global = vec![0.5f32, -1.0];
        let aggregate = vec![1.5f32, -1.25];
        let out = opt.apply(&global, aggregate.clone());
        for i in 0..global.len() {
            let delta = aggregate[i] as f64 - global[i] as f64;
            let m = (1.0 - p.beta1) * delta;
            let v = (1.0 - p.beta2) * delta * delta;
            let want = (global[i] as f64 + p.lr * m / (v.sqrt() + p.tau)) as f32;
            assert_eq!(out[i].to_bits(), want.to_bits(), "coordinate {i}");
        }
    }

    #[test]
    fn moment_state_carries_across_rounds() {
        // Two identical pseudo-gradients: with state carried, the second
        // step's m is strictly larger than the first's, so the second
        // step moves farther. A stateless (re-built) optimizer repeats
        // the first step exactly.
        let p = params();
        let global = vec![0.0f32; 4];
        let aggregate = vec![1.0f32; 4];
        let mut stateful = ServerOptConfig::FedAdam(p).build();
        let s1 = stateful.apply(&global, aggregate.clone());
        let s2 = stateful.apply(&global, aggregate.clone());
        let mut fresh = ServerOptConfig::FedAdam(p).build();
        let f1 = fresh.apply(&global, aggregate.clone());
        assert_eq!(s1, f1, "first steps must agree");
        assert!(
            s2[0] > s1[0],
            "carried first moment must accelerate the second step \
             ({} vs {})",
            s2[0],
            s1[0]
        );
    }

    #[test]
    fn yogi_second_moment_moves_additively() {
        // After a large Δ then a tiny Δ, Yogi's v stays close to the
        // large Δ² (additive decrease), while Adam's collapses by β₂ —
        // so Yogi's follow-up step is the smaller of the two.
        let p = AdaptiveParams {
            beta2: 0.5,
            ..params()
        };
        let global = vec![0.0f32];
        let run = |cfg: ServerOptConfig| {
            let mut opt = cfg.build();
            opt.apply(&global, vec![10.0]);
            opt.apply(&global, vec![0.01])[0]
        };
        let adam = run(ServerOptConfig::FedAdam(p));
        let yogi = run(ServerOptConfig::FedYogi(p));
        assert!(
            yogi < adam,
            "yogi's slow-decaying v must damp the step more (yogi {yogi}, adam {adam})"
        );
    }

    #[test]
    fn amsgrad_denominator_never_shrinks() {
        // A huge Δ then a tiny one: AMSGrad keeps the huge v̂ in the
        // denominator, so its second step is smaller than Adam's.
        let p = AdaptiveParams {
            beta2: 0.5,
            ..params()
        };
        let global = vec![0.0f32];
        let run = |cfg: ServerOptConfig| {
            let mut opt = cfg.build();
            opt.apply(&global, vec![100.0]);
            opt.apply(&global, vec![0.5])[0]
        };
        let adam = run(ServerOptConfig::FedAdam(p));
        let ams = run(ServerOptConfig::FedAMSGrad(p));
        assert!(
            ams < adam,
            "amsgrad's max-v̂ must damp the step more (ams {ams}, adam {adam})"
        );
    }

    #[test]
    fn validation_names_the_offending_knob() {
        let cases: &[(AdaptiveParams, &str)] = &[
            (
                AdaptiveParams {
                    lr: 0.0,
                    ..params()
                },
                "lr",
            ),
            (
                AdaptiveParams {
                    lr: f64::NAN,
                    ..params()
                },
                "lr",
            ),
            (
                AdaptiveParams {
                    tau: -1e-3,
                    ..params()
                },
                "tau",
            ),
            (
                AdaptiveParams {
                    beta1: 1.0,
                    ..params()
                },
                "beta1",
            ),
            (
                AdaptiveParams {
                    beta2: -0.1,
                    ..params()
                },
                "beta2",
            ),
        ];
        for (p, knob) in cases {
            let err = ServerOptConfig::FedAdam(*p).validate().unwrap_err();
            match &err {
                FlError::InvalidServerOpt { reason } => assert!(
                    reason.contains(knob),
                    "expected {knob} in {reason:?} for {p:?}"
                ),
                other => panic!("wrong error {other:?}"),
            }
        }
        ServerOptConfig::Plain.validate().unwrap();
        ServerOptConfig::FedYogi(params()).validate().unwrap();
        // β = 0 is legal: momentum off, pure sign-scaled steps.
        ServerOptConfig::FedAMSGrad(AdaptiveParams {
            beta1: 0.0,
            beta2: 0.0,
            ..params()
        })
        .validate()
        .unwrap();
    }

    #[test]
    fn config_names_match_built_optimizers() {
        for cfg in [
            ServerOptConfig::Plain,
            ServerOptConfig::FedAdam(params()),
            ServerOptConfig::FedYogi(params()),
            ServerOptConfig::FedAMSGrad(params()),
        ] {
            assert_eq!(cfg.build().name(), cfg.name());
        }
        assert!(ServerOptConfig::Plain.is_plain());
        assert!(!ServerOptConfig::FedAdam(params()).is_plain());
    }
}
