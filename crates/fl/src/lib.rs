//! # feddrl-fl — synchronous federated-learning simulator
//!
//! The orchestration substrate of the FedDRL (ICPP'22) reproduction,
//! implementing the paper's Algorithm 2 skeleton:
//!
//! * [`client`] — local training rounds producing the
//!   `(l_before, l_after, n_k, w_k)` report tuple;
//! * [`strategy`] — the pluggable impact-factor abstraction with
//!   [`strategy::FedAvg`], [`strategy::FedProx`] and a uniform ablation
//!   baseline (FedDRL plugs in from the `feddrl` crate);
//! * [`executor`] — the round-execution abstraction: the paper's ideal
//!   synchronous setting, or deadline-bounded rounds over a heterogeneous
//!   device fleet (stragglers, dropouts) driven by `feddrl_sim`'s
//!   discrete-event engine;
//! * [`server`] — the deterministic, crossbeam-parallel round loop with
//!   per-stage server timing (Figure 9);
//! * [`singleset`] — the centralized reference;
//! * [`metrics`] / [`history`] — evaluation and per-round records feeding
//!   every figure of the paper.
//!
//! ## Example
//!
//! ```
//! use feddrl_fl::prelude::*;
//! use feddrl_data::prelude::*;
//! use feddrl_nn::prelude::*;
//!
//! let (train, test) = SynthSpec { train_size: 600, test_size: 200,
//!     ..SynthSpec::mnist_like() }.generate(1);
//! let partition = PartitionMethod::Iid
//!     .partition(&train, 4, &mut Rng64::new(2)).unwrap();
//! let spec = ModelSpec::Mlp { in_dim: train.feature_dim(),
//!     hidden: vec![16], out_dim: train.num_classes() };
//! let cfg = FlConfig { rounds: 2, participants: 4, ..Default::default() };
//! let history = run_federated(&spec, &train, &test, &partition,
//!     &mut FedAvg, &cfg);
//! assert_eq!(history.records.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod baselines;
pub mod client;
pub mod executor;
pub mod history;
pub mod metrics;
pub mod server;
pub mod singleset;
pub mod strategy;

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::client::{ClientSummary, ClientUpdate, LocalTrainConfig};
    pub use crate::executor::{
        DeadlineExecutor, ExecutorConfig, HeteroConfig, IdealExecutor, LatePolicy, RoundExecutor,
        RoundOutcome,
    };
    pub use crate::history::{HeteroRoundRecord, RoundRecord, RunHistory};
    pub use crate::metrics::{
        best_accuracy, evaluate, inference_loss, mean_var, rounds_to_target, ConvergenceStats,
    };
    pub use crate::server::{run_federated, FlConfig, Selection};
    pub use crate::singleset::{run_singleset, SingleSetConfig};
    pub use crate::baselines::{FedAdp, LossProportional};
    pub use crate::strategy::{
        normalize_factors, weighted_average, FedAvg, FedProx, RoundContext, Strategy, Uniform,
    };
}
