//! # feddrl-fl — synchronous federated-learning simulator
//!
//! The orchestration substrate of the FedDRL (ICPP'22) reproduction,
//! implementing the paper's Algorithm 2 skeleton:
//!
//! * [`client`] — local training rounds producing the
//!   `(l_before, l_after, n_k, w_k)` report tuple;
//! * [`strategy`] — the pluggable impact-factor abstraction with
//!   [`strategy::FedAvg`], [`strategy::FedProx`] and a uniform ablation
//!   baseline (FedDRL plugs in from the `feddrl` crate);
//! * [`selection`] — the pluggable client-selection abstraction (uniform,
//!   power-of-choice, bandwidth-aware, reliability-aware,
//!   staleness-balanced, or bring-your-own policy observing per-client
//!   losses, participation counts, device profiles, the executor's live
//!   in-flight set, and observed dropout/staleness telemetry);
//! * [`executor`] — the round-execution abstraction: the paper's ideal
//!   synchronous setting, deadline-bounded rounds over a heterogeneous
//!   device fleet (stragglers, dropouts), or buffered asynchronous
//!   aggregation with staleness-discounted impact factors
//!   (FedAsync/FedBuff-style), all driven by `feddrl_sim`'s
//!   discrete-event engine;
//! * [`session`] — the deterministic, crossbeam-parallel round loop as a
//!   driveable object: [`session::SessionBuilder`] validates the assembled
//!   components into a [`session::Session`] run whole ([`session::Session::run`])
//!   or one round at a time ([`session::Session::step`]), with
//!   [`session::RoundObserver`] hooks per round;
//! * [`server`] — the serializable [`server::FlConfig`] plus the
//!   paper-faithful [`server::run_federated`] compatibility wrapper;
//! * [`error`] — the typed [`error::FlError`] every orchestration entry
//!   point reports instead of panicking;
//! * [`singleset`] — the centralized reference;
//! * [`metrics`] / [`history`] — evaluation and per-round records feeding
//!   every figure of the paper.
//!
//! ## Example
//!
//! ```
//! use feddrl_fl::prelude::*;
//! use feddrl_data::prelude::*;
//! use feddrl_nn::prelude::*;
//!
//! let (train, test) = SynthSpec { train_size: 600, test_size: 200,
//!     ..SynthSpec::mnist_like() }.generate(1);
//! let partition = PartitionMethod::Iid
//!     .partition(&train, 4, &mut Rng64::new(2)).unwrap();
//! let spec = ModelSpec::Mlp { in_dim: train.feature_dim(),
//!     hidden: vec![16], out_dim: train.num_classes() };
//! let mut strategy = FedAvg;
//! let history = SessionBuilder::new(&spec, &train, &test, &partition,
//!         &mut strategy)
//!     .rounds(2)
//!     .participants(4)
//!     .dataset_name("mnist-like")
//!     .build()
//!     .expect("valid config")
//!     .run()
//!     .expect("federated run");
//! assert_eq!(history.records.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod baselines;
pub mod client;
pub mod error;
pub mod executor;
pub mod history;
pub mod metrics;
pub mod selection;
pub mod server;
pub mod server_opt;
pub mod session;
pub mod singleset;
pub mod strategy;

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::baselines::{FedAdp, LossProportional};
    pub use crate::client::{
        dispatch_mask, run_local_round, run_local_round_masked, ClientSummary, ClientUpdate,
        LocalTrainConfig, MASK_SALT,
    };
    pub use crate::error::FlError;
    pub use crate::executor::{
        BufferedConfig, BufferedExecutor, ClientReliability, DeadlineExecutor, Dispatch,
        ExecutorConfig, HeteroConfig, IdealExecutor, LatePolicy, ReliabilityTable, RoundExecutor,
        RoundOutcome, StalenessDiscount, StructuredDropoutConfig, TrainFn,
    };
    pub use crate::history::{HeteroRoundRecord, RoundRecord, RunHistory};
    pub use crate::metrics::{
        best_accuracy, evaluate, inference_loss, mean_var, rounds_to_target, ConvergenceStats,
    };
    pub use crate::selection::{
        BandwidthAwareSelection, PowerOfChoiceSelection, ReliabilityAwareSelection, Selection,
        SelectionContext, SelectionPolicy, StalenessBalancedSelection, UniformSelection,
    };
    pub use crate::server::{run_federated, FlConfig};
    pub use crate::server_opt::{AdaptiveParams, ServerOpt, ServerOptConfig};
    pub use crate::session::{
        EarlyStop, ProgressLogger, RoundControl, RoundObserver, RoundSignals, Session,
        SessionBuilder, SessionTrainFn, TrainContext,
    };
    pub use crate::singleset::{run_singleset, SingleSetConfig};
    pub use crate::strategy::{
        masked_weighted_average, normalize_factors, weighted_average, FedAvg, FedProx,
        RoundContext, Strategy, Uniform,
    };
}
