//! Round executors: *which* sampled clients report back, and *when*.
//!
//! The paper's Algorithm 2 assumes the idealized synchronous setting —
//! every sampled client trains and its update arrives instantly. Real
//! federated deployments are dominated by device heterogeneity:
//! stragglers, dropouts, and deadline-bounded rounds. [`RoundExecutor`]
//! factors that concern out of the server loop:
//!
//! * [`IdealExecutor`] reproduces the paper's setting bit-for-bit (the
//!   default; histories are byte-identical to the pre-abstraction loop);
//! * [`DeadlineExecutor`] runs each round through the discrete-event
//!   heterogeneity engine (`feddrl_sim::{device, event}`): every sampled
//!   client gets a seeded [`DeviceProfile`](feddrl_sim::device::DeviceProfile),
//!   may drop out, and its upload-completion time — local compute plus
//!   model upload over its link — is scheduled on an [`EventQueue`]. Only
//!   updates arriving before the round deadline are aggregated; late ones
//!   are dropped or carried into the next round ([`LatePolicy`]).
//!
//! Determinism: dropout draws derive from `(seed, round, client id)` and
//! device profiles from the fleet seed, so heterogeneity scenarios
//! reproduce exactly, independent of thread scheduling.

use crate::client::ClientUpdate;
use crate::history::HeteroRoundRecord;
use feddrl_sim::comm::CommModel;
use feddrl_sim::device::{Fleet, FleetConfig};
use feddrl_sim::event::{EventKind, EventQueue, VirtualClock};
use feddrl_nn::rng::Rng64;
use serde::{Deserialize, Serialize};

/// What happens to an update that misses the round deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum LatePolicy {
    /// Late updates are discarded (the client's round was wasted).
    #[default]
    Drop,
    /// Late updates are buffered and aggregated in a later round with
    /// spare capacity (stale but not wasted — the FedAsync-style
    /// compromise). At most `participants` updates are aggregated per
    /// round, so a stale update waits until dropouts/stragglers leave
    /// room; it is discarded if its client reports fresh first, or if the
    /// queue outgrows `participants` (oldest evicted — unbounded staleness
    /// would poison the aggregate).
    CarryOver,
}

/// Deadline-bounded execution knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct HeteroConfig {
    /// Device-fleet generation parameters (one profile per client).
    pub fleet: FleetConfig,
    /// Round deadline in simulated seconds; `None` waits for every
    /// non-dropped client (unbounded round).
    #[serde(default)]
    pub deadline_s: Option<f64>,
    /// Fate of updates that miss the deadline.
    #[serde(default)]
    pub late_policy: LatePolicy,
}

impl HeteroConfig {
    /// Check every invariant the deadline executor enforces — the single
    /// source of truth shared by [`DeadlineExecutor::new`] (which panics
    /// on violation) and
    /// [`FlConfig::validate`](crate::server::FlConfig::validate) (which
    /// surfaces it as a typed error before any compute is spent).
    ///
    /// # Errors
    /// [`FlError::InvalidDeadline`](crate::error::FlError::InvalidDeadline)
    /// or [`FlError::InvalidFleet`](crate::error::FlError::InvalidFleet).
    pub fn validate(&self) -> Result<(), crate::error::FlError> {
        use crate::error::FlError;
        if let Some(d) = self.deadline_s {
            if !(d.is_finite() && d > 0.0) {
                return Err(FlError::InvalidDeadline { deadline_s: d });
            }
        }
        self.fleet
            .validate()
            .map_err(|reason| FlError::InvalidFleet { reason })
    }
}

/// Which execution model a federated run uses (a [`crate::server::FlConfig`]
/// knob; `Ideal` is the paper's synchronous setting and the default).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum ExecutorConfig {
    /// Every sampled client trains and reports instantly (Algorithm 2).
    #[default]
    Ideal,
    /// Deadline-bounded rounds over a heterogeneous device fleet.
    Deadline(HeteroConfig),
}

impl ExecutorConfig {
    /// Build the executor for a run of `n_clients` total clients exchanging
    /// a `param_count`-parameter model with `participants` clients per
    /// round. `seed` salts the per-round dropout draws.
    pub fn build(
        &self,
        n_clients: usize,
        param_count: usize,
        participants: usize,
        seed: u64,
    ) -> Box<dyn RoundExecutor> {
        match self {
            ExecutorConfig::Ideal => Box::new(IdealExecutor),
            ExecutorConfig::Deadline(cfg) => Box::new(DeadlineExecutor::new(
                cfg.clone(),
                n_clients,
                param_count,
                participants,
                seed,
            )),
        }
    }
}

/// What a round executor hands back to the server loop.
pub struct RoundOutcome {
    /// Updates to aggregate this round, in deterministic order: carried-in
    /// stale updates first (oldest information), then this round's
    /// arrivals in sampling order. May be empty (everyone dropped or
    /// missed the deadline) — the server then skips aggregation.
    pub updates: Vec<ClientUpdate>,
    /// Heterogeneity telemetry; `None` for the ideal executor.
    pub hetero: Option<HeteroRoundRecord>,
}

/// The round-execution abstraction the server loop runs against.
///
/// `train` runs local training for a *subset* of the sampled clients and
/// returns their updates in the given order; the executor decides which
/// clients actually train (dropouts are decided before training, saving
/// their wasted CPU) and which reports make it back in time.
pub trait RoundExecutor: Send {
    /// Execute round `round` for the sampled `selected` clients.
    fn execute(
        &mut self,
        round: usize,
        selected: &[usize],
        train: &dyn Fn(&[usize]) -> Vec<ClientUpdate>,
    ) -> RoundOutcome;

    /// The device fleet this executor simulates, if any — what
    /// heterogeneity-aware [`SelectionPolicy`](crate::selection::SelectionPolicy)s
    /// base their completion-time estimates on. `None` for executors
    /// without a device model (the ideal one).
    fn fleet(&self) -> Option<&Fleet> {
        None
    }

    /// Per-client upload payload in bytes (0 when there is no
    /// communication model); combined with
    /// [`RoundExecutor::fleet`] it prices a client's predicted arrival.
    fn upload_bytes(&self) -> u64 {
        0
    }

    /// The round deadline in simulated seconds, if this executor bounds
    /// rounds — lets selection policies avoid clients that would be cut.
    fn deadline_s(&self) -> Option<f64> {
        None
    }
}

/// The paper's idealized synchronous round: everyone trains, everyone
/// reports, no virtual time passes.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdealExecutor;

impl RoundExecutor for IdealExecutor {
    fn execute(
        &mut self,
        _round: usize,
        selected: &[usize],
        train: &dyn Fn(&[usize]) -> Vec<ClientUpdate>,
    ) -> RoundOutcome {
        RoundOutcome {
            updates: train(selected),
            hetero: None,
        }
    }
}

/// Salt for the per-round dropout RNG stream (distinct from client
/// training `0xC11E` and selection streams).
const DROPOUT_SALT: u64 = 0xD20_0FF;

/// Deadline-bounded rounds over a seeded heterogeneous device fleet.
pub struct DeadlineExecutor {
    fleet: Fleet,
    cfg: HeteroConfig,
    upload_bytes: u64,
    participants: usize,
    seed: u64,
    /// Late updates awaiting a later round (only under
    /// [`LatePolicy::CarryOver`]).
    carried: Vec<ClientUpdate>,
}

impl DeadlineExecutor {
    /// Build the executor: generates the device fleet and derives the
    /// per-client upload payload from the §3.5 communication model
    /// (FedDRL traffic — model weights plus the two scalar losses).
    ///
    /// # Panics
    /// Panics on a non-positive deadline or a degenerate fleet config.
    pub fn new(
        cfg: HeteroConfig,
        n_clients: usize,
        param_count: usize,
        participants: usize,
        seed: u64,
    ) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("{e}");
        }
        assert!(participants > 0, "participants must be positive");
        let fleet = Fleet::generate(n_clients, &cfg.fleet);
        let k = participants as u64;
        let traffic = CommModel::new(param_count.max(1) as u64, k).feddrl_round();
        let upload_bytes = (traffic.uplink_models + traffic.uplink_metadata) / k;
        Self {
            fleet,
            cfg,
            upload_bytes,
            participants,
            seed,
            carried: Vec::new(),
        }
    }

    /// Per-client upload payload in bytes (model weights + metadata).
    pub fn upload_bytes(&self) -> u64 {
        self.upload_bytes
    }

    /// The generated device fleet.
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }
}

impl RoundExecutor for DeadlineExecutor {
    fn fleet(&self) -> Option<&Fleet> {
        Some(&self.fleet)
    }

    fn upload_bytes(&self) -> u64 {
        self.upload_bytes
    }

    fn deadline_s(&self) -> Option<f64> {
        self.cfg.deadline_s
    }

    fn execute(
        &mut self,
        round: usize,
        selected: &[usize],
        train: &dyn Fn(&[usize]) -> Vec<ClientUpdate>,
    ) -> RoundOutcome {
        let deadline = self.cfg.deadline_s.unwrap_or(f64::INFINITY);

        // --- Dropouts, decided up front: a dropped client never trains
        // (its device failed the round), so its CPU is not simulated.
        // Likewise, a client whose deterministic completion time already
        // exceeds the deadline is a foregone straggler: under `Drop` its
        // update would be trained only to be discarded, so skip the
        // training too (under `CarryOver` the update is still needed).
        let dropout_rng = Rng64::new(self.seed ^ DROPOUT_SALT).derive(round as u64);
        let mut alive = Vec::with_capacity(selected.len());
        let mut dropouts = 0usize;
        let mut foregone_stragglers = 0usize;
        for &cid in selected {
            let profile = self.fleet.profile(cid);
            if profile.dropout > 0.0 && dropout_rng.derive(cid as u64).chance(profile.dropout) {
                dropouts += 1;
            } else if self.cfg.late_policy == LatePolicy::Drop
                && profile.completion_time_s(self.upload_bytes) > deadline
            {
                foregone_stragglers += 1;
            } else {
                alive.push(cid);
            }
        }

        let updates = train(&alive);

        // --- Discrete-event round: schedule every surviving upload, then
        // replay the timeline against the deadline.
        let mut queue = EventQueue::new();
        for u in &updates {
            queue.schedule(
                self.fleet.profile(u.client_id).completion_time_s(self.upload_bytes),
                EventKind::UploadComplete {
                    client_id: u.client_id,
                },
            );
        }
        if deadline.is_finite() {
            // Scheduled *after* the uploads: the FIFO tie-break then counts
            // an arrival at exactly the deadline as in time.
            queue.schedule(deadline, EventKind::Deadline);
        }
        let mut clock = VirtualClock::new();
        let mut arrived_ids = Vec::new();
        let mut last_arrival_s = 0.0f64;
        let mut deadline_fired = false;
        while let Some(event) = queue.pop() {
            clock.advance_to(event.time_s);
            match event.kind {
                EventKind::UploadComplete { client_id } if !deadline_fired => {
                    arrived_ids.push(client_id);
                    last_arrival_s = clock.now_s();
                }
                EventKind::UploadComplete { .. } => {} // straggler: drained below
                EventKind::Deadline => deadline_fired = true,
            }
        }
        let stragglers = foregone_stragglers + (updates.len() - arrived_ids.len());

        // The server waits until the deadline whenever a sampled report is
        // missing (it cannot know the client dropped); otherwise the round
        // ends when the last expected upload lands. With an unbounded
        // deadline, dropouts are assumed to notify failure, so the round
        // still ends at the last arrival.
        let sim_time_s = if deadline.is_finite() && (stragglers > 0 || dropouts > 0) {
            deadline
        } else {
            last_arrival_s
        };

        // --- Split arrivals from stragglers, keeping sampling order (so an
        // unbounded no-dropout round reduces exactly to the ideal one).
        let mut arrived = Vec::with_capacity(arrived_ids.len());
        let mut late = Vec::new();
        for u in updates {
            if arrived_ids.contains(&u.client_id) {
                arrived.push(u);
            } else {
                late.push(u);
            }
        }

        // --- Carry-in: stale updates fill the round's spare capacity,
        // oldest first. A fresh arrival discards its client's stale copy;
        // stale updates that find no capacity stay queued for a later,
        // shorter round.
        let mut aggregated = Vec::new();
        let mut carried_in = 0usize;
        let mut still_queued = Vec::new();
        for stale in std::mem::take(&mut self.carried) {
            if arrived.iter().any(|u| u.client_id == stale.client_id) {
                continue; // superseded by this round's fresh report
            }
            if aggregated.len() + arrived.len() < self.participants {
                aggregated.push(stale);
                carried_in += 1;
            } else {
                still_queued.push(stale);
            }
        }
        aggregated.extend(arrived);
        self.carried = still_queued; // always empty under LatePolicy::Drop
        if self.cfg.late_policy == LatePolicy::CarryOver {
            // A newer late report supersedes its client's queued copy.
            for u in late {
                self.carried.retain(|s| s.client_id != u.client_id);
                self.carried.push(u);
            }
            // Bound staleness: keep only the K most recent queued updates —
            // an unboundedly stale update would poison the aggregate.
            if self.carried.len() > self.participants {
                let excess = self.carried.len() - self.participants;
                self.carried.drain(..excess);
            }
        }

        let hetero = HeteroRoundRecord {
            sim_time_s,
            dropouts,
            stragglers,
            carried_in,
            aggregated_ids: aggregated.iter().map(|u| u.client_id).collect(),
        };
        RoundOutcome {
            updates: aggregated,
            hetero: Some(hetero),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A weightless update for client `cid` (executor logic never touches
    /// the payload).
    fn stub_update(cid: usize) -> ClientUpdate {
        ClientUpdate {
            client_id: cid,
            weights: vec![0.0; 4],
            n_samples: 10 + cid,
            loss_before: 1.0,
            loss_after: 0.5,
        }
    }

    fn stub_train(ids: &[usize]) -> Vec<ClientUpdate> {
        ids.iter().map(|&c| stub_update(c)).collect()
    }

    fn skewed_cfg(deadline_s: Option<f64>, dropout: f64) -> HeteroConfig {
        HeteroConfig {
            fleet: FleetConfig {
                compute_skew: 4.0,
                bandwidth_skew: 2.0,
                dropout,
                ..Default::default()
            },
            deadline_s,
            late_policy: LatePolicy::Drop,
        }
    }

    #[test]
    fn ideal_executor_is_a_passthrough() {
        let selected = [3usize, 1, 4];
        let out = IdealExecutor.execute(0, &selected, &stub_train);
        assert!(out.hetero.is_none());
        let ids: Vec<usize> = out.updates.iter().map(|u| u.client_id).collect();
        assert_eq!(ids, vec![3, 1, 4]);
    }

    #[test]
    fn unbounded_round_time_is_max_of_completions() {
        let mut ex = DeadlineExecutor::new(skewed_cfg(None, 0.0), 8, 1000, 8, 7);
        let selected: Vec<usize> = (0..8).collect();
        let out = ex.execute(0, &selected, &stub_train);
        let h = out.hetero.unwrap();
        let expected = (0..8)
            .map(|c| ex.fleet().profile(c).completion_time_s(ex.upload_bytes()))
            .fold(0.0f64, f64::max);
        assert!((h.sim_time_s - expected).abs() < 1e-12);
        assert_eq!(h.stragglers, 0);
        assert_eq!(h.dropouts, 0);
        assert_eq!(h.aggregated(), 8);
        assert_eq!(out.updates.len(), 8);
    }

    #[test]
    fn tight_deadline_cuts_stragglers_and_caps_round_time() {
        let cfg = skewed_cfg(None, 0.0);
        let probe = DeadlineExecutor::new(cfg.clone(), 16, 1000, 16, 7);
        // Deadline at the fleet median: roughly half the devices miss it.
        let deadline = probe
            .fleet()
            .completion_percentile_s(probe.upload_bytes(), 0.5);
        let mut ex = DeadlineExecutor::new(
            HeteroConfig {
                deadline_s: Some(deadline),
                ..cfg
            },
            16,
            1000,
            16,
            7,
        );
        let selected: Vec<usize> = (0..16).collect();
        let out = ex.execute(0, &selected, &stub_train);
        let h = out.hetero.unwrap();
        assert!(h.stragglers > 0, "median deadline produced no stragglers");
        assert!(h.aggregated() < 16);
        assert_eq!(h.aggregated() + h.stragglers, 16);
        assert_eq!(h.sim_time_s, deadline);
        // Exactly the in-time devices arrived.
        for u in &out.updates {
            let t = ex.fleet().profile(u.client_id).completion_time_s(ex.upload_bytes());
            assert!(t <= deadline, "straggler {t} leaked past deadline {deadline}");
        }
    }

    #[test]
    fn dropouts_are_deterministic_and_reduce_participation() {
        let mk = || DeadlineExecutor::new(skewed_cfg(None, 0.5), 10, 500, 10, 21);
        let selected: Vec<usize> = (0..10).collect();
        let (mut a, mut b) = (mk(), mk());
        let (oa, ob) = (
            a.execute(3, &selected, &stub_train),
            b.execute(3, &selected, &stub_train),
        );
        let (ha, hb) = (oa.hetero.unwrap(), ob.hetero.unwrap());
        assert_eq!(ha, hb, "same seed must reproduce the same dropouts");
        assert!(ha.dropouts > 0, "p=0.5 over 10 clients drew no dropout");
        assert_eq!(ha.aggregated() + ha.dropouts, 10);
        // A different round draws a different pattern eventually.
        let oc = a.execute(4, &selected, &stub_train);
        assert!(oc.hetero.unwrap().aggregated() <= 10);
    }

    #[test]
    fn carry_over_reinjects_late_updates_next_round() {
        let cfg = skewed_cfg(None, 0.0);
        let probe = DeadlineExecutor::new(cfg.clone(), 12, 1000, 6, 7);
        let deadline = probe
            .fleet()
            .completion_percentile_s(probe.upload_bytes(), 0.4);
        let mut ex = DeadlineExecutor::new(
            HeteroConfig {
                deadline_s: Some(deadline),
                late_policy: LatePolicy::CarryOver,
                ..cfg
            },
            12,
            1000,
            6,
            7,
        );
        // Round 0: slowest 6 clients — some miss the deadline.
        let first: Vec<usize> = (0..6).collect();
        let o0 = ex.execute(0, &first, &stub_train);
        let h0 = o0.hetero.unwrap();
        assert!(h0.stragglers > 0, "deadline cut nobody");
        // Round 1: disjoint clients; the stale updates ride along.
        let second: Vec<usize> = (6..12).collect();
        let o1 = ex.execute(1, &second, &stub_train);
        let h1 = o1.hetero.unwrap();
        assert_eq!(h1.carried_in.min(1), 1, "no stale update carried in");
        assert!(h1.aggregated() <= 6, "carry-over exceeded participant cap");
        let carried_ids: Vec<usize> = o1
            .updates
            .iter()
            .map(|u| u.client_id)
            .filter(|c| *c < 6)
            .collect();
        assert_eq!(carried_ids.len(), h1.carried_in);
    }

    #[test]
    fn queued_stale_update_waits_for_a_round_with_capacity() {
        // Homogeneous fleet, deadline below everyone's completion time:
        // every sampled client straggles and is queued under CarryOver.
        let cfg = HeteroConfig {
            fleet: FleetConfig::default(), // identical devices, ~10 s rounds
            deadline_s: Some(1.0),
            late_policy: LatePolicy::CarryOver,
        };
        let mut ex = DeadlineExecutor::new(cfg, 8, 1000, 2, 7);
        // Round 0: clients 0, 1 straggle and are queued.
        let o0 = ex.execute(0, &[0, 1], &stub_train);
        assert_eq!(o0.hetero.unwrap().stragglers, 2);
        assert!(o0.updates.is_empty());
        // Round 1: clients 2, 3 also straggle — zero fresh arrivals, so
        // the two queued updates finally fill the round's capacity.
        let o1 = ex.execute(1, &[2, 3], &stub_train);
        let h1 = o1.hetero.unwrap();
        assert_eq!(h1.carried_in, 2);
        assert_eq!(h1.aggregated_ids, vec![0, 1]);
        // Round 2: the newer stale updates (2, 3) ride in next — nothing
        // was silently discarded while capacity was available.
        let o2 = ex.execute(2, &[4, 5], &stub_train);
        assert_eq!(o2.hetero.unwrap().aggregated_ids, vec![2, 3]);
    }

    #[test]
    fn all_dropped_round_yields_no_updates() {
        let mut cfg = skewed_cfg(Some(1e6), 0.0);
        cfg.fleet.dropout = 0.999_999;
        let mut ex = DeadlineExecutor::new(cfg, 5, 100, 5, 3);
        let out = ex.execute(0, &[0, 1, 2, 3, 4], &stub_train);
        let h = out.hetero.unwrap();
        assert_eq!(h.dropouts, 5);
        assert_eq!(h.aggregated(), 0);
        assert!(out.updates.is_empty());
        assert_eq!(h.sim_time_s, 1e6, "server waits out the deadline");
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn rejects_non_positive_deadline() {
        let _ = DeadlineExecutor::new(skewed_cfg(Some(0.0), 0.0), 4, 10, 4, 1);
    }
}
